// Pipeline stage 4: pluggable re-ranking of the surviving candidates. The
// staged matchers this pipeline mirrors (Schemora, Matchmaker, LLMATCH) end
// with an expensive model re-scoring a short candidate list; here the
// interface is native so such a model — an external LLM included — can slot
// in later without touching the kernel. The reference implementations are
// deterministic, which is what keeps the whole staged pipeline
// bitwise-reproducible end to end: Rerank is called once per matrix row
// with that row's candidates, so as long as an implementation is a pure
// function of (candidates, evidence) the result is independent of thread
// count and grain.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/enricher.h"
#include "core/preprocess.h"
#include "schema/schema.h"

namespace harmony::core {

/// \brief One stage-3 survivor: an element pair plus the merged voter
/// ensemble score the ranking stage computed for it.
struct RerankCandidate {
  schema::ElementId source = schema::kInvalidElementId;
  schema::ElementId target = schema::kInvalidElementId;
  double ensemble_score = 0.0;
};

/// \brief Read-only evidence handed to every Rerank call: the preprocessed
/// profiles and (when the pipeline enriched) the stage-2 overlays. Overlay
/// pointers are null when enrichment is off.
struct RerankEvidence {
  const ProfilePair* profiles = nullptr;
  const EnrichedProfileView* source_enrichment = nullptr;
  const EnrichedProfileView* target_enrichment = nullptr;
};

/// \brief Stage-4 strategy interface: Rerank(candidates, evidence) ->
/// scores. Implementations MUST be deterministic pure functions of their
/// arguments (candidates arrive row-scoped, so this makes staged matrices
/// identical across thread counts and grains) and thread-compatible: Rerank
/// is called concurrently from row shards.
class Reranker {
 public:
  virtual ~Reranker() = default;

  /// Stable identifier for stats and traces.
  virtual const char* name() const = 0;

  /// Scores every candidate into `out` (`out.size() == candidates.size()`).
  /// Scores live in (−1, +1) like the ensemble's.
  virtual void Rerank(std::span<const RerankCandidate> candidates,
                      const RerankEvidence& evidence,
                      std::span<double> out) const = 0;
};

/// \brief Pass-through: out[i] = ensemble_score. Composes the staged
/// pipeline into "retrieval + ensemble" with no stage-4 opinion — and is
/// the implicit reranker of single-stage mode.
class IdentityReranker : public Reranker {
 public:
  const char* name() const override { return "identity"; }
  void Rerank(std::span<const RerankCandidate> candidates,
              const RerankEvidence& evidence,
              std::span<double> out) const override;
};

/// \brief The deterministic reference heuristic: blends the ensemble score
/// with enrichment-overlay agreement — Jaccard overlap of the expanded
/// token sets and of the doc-term summaries, on the raw [0, 1] scale (so
/// any overlap corroborates and only disjoint overlays demote). blend = 0
/// degrades to IdentityReranker; the default 0.25 lets enrichment adjust
/// borderline candidates without overruling the ensemble.
class HeuristicReranker : public Reranker {
 public:
  explicit HeuristicReranker(double blend = 0.25) : blend_(blend) {}
  const char* name() const override { return "heuristic"; }
  void Rerank(std::span<const RerankCandidate> candidates,
              const RerankEvidence& evidence,
              std::span<double> out) const override;

 private:
  double blend_;
};

}  // namespace harmony::core
