#include "xml/xsd_exporter.h"

#include "common/string_util.h"

namespace harmony::xml {

using schema::DataType;
using schema::ElementId;
using schema::ElementKind;
using schema::Schema;

const char* DataTypeToXsdType(DataType type) {
  switch (type) {
    case DataType::kString:
      return "string";
    case DataType::kInteger:
      return "int";
    case DataType::kDecimal:
      return "decimal";
    case DataType::kFloat:
      return "double";
    case DataType::kBoolean:
      return "boolean";
    case DataType::kDate:
      return "date";
    case DataType::kTime:
      return "time";
    case DataType::kDateTime:
      return "dateTime";
    case DataType::kBinary:
      return "base64Binary";
    case DataType::kUnknown:
    case DataType::kComposite:
      return "string";
  }
  return "string";
}

namespace {

std::string XmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

class XsdWriter {
 public:
  XsdWriter(const Schema& schema, const XsdExportOptions& options)
      : schema_(schema), options_(options), xs_(options.xs_prefix) {}

  std::string Render() {
    out_ = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
    out_ += "<" + xs_ + ":schema xmlns:" + xs_ +
            "=\"http://www.w3.org/2001/XMLSchema\"";
    if (!options_.target_namespace.empty()) {
      out_ += " targetNamespace=\"" + XmlEscape(options_.target_namespace) + "\"";
    }
    out_ += ">\n";
    for (ElementId id : schema_.IdsAtDepth(1)) {
      const schema::SchemaElement& e = schema_.element(id);
      if (e.is_leaf()) {
        EmitLeafElement(e, 1);
      } else {
        EmitNamedComplexType(e, 1);
      }
    }
    out_ += "</" + xs_ + ":schema>\n";
    return out_;
  }

 private:
  void Indent(size_t depth) { out_.append(depth * 2, ' '); }

  void EmitAnnotation(const schema::SchemaElement& e, size_t depth) {
    if (e.documentation.empty()) return;
    Indent(depth);
    out_ += "<" + xs_ + ":annotation><" + xs_ + ":documentation>" +
            XmlEscape(e.documentation) + "</" + xs_ + ":documentation></" + xs_ +
            ":annotation>\n";
  }

  void EmitLeafElement(const schema::SchemaElement& e, size_t depth) {
    bool is_attr = (e.kind == ElementKind::kAttribute);
    const char* tag = is_attr ? "attribute" : "element";
    Indent(depth);
    out_ += "<" + xs_ + ":" + tag + " name=\"" + XmlEscape(e.name) + "\" type=\"" +
            xs_ + ":" + DataTypeToXsdType(e.type) + "\"";
    if (is_attr) {
      if (!e.nullable) out_ += " use=\"required\"";
    } else if (e.nullable) {
      out_ += " minOccurs=\"0\"";
    }
    if (e.documentation.empty()) {
      out_ += "/>\n";
      return;
    }
    out_ += ">\n";
    EmitAnnotation(e, depth + 1);
    Indent(depth);
    out_ += "</" + xs_ + ":" + tag + ">\n";
  }

  void EmitContent(const schema::SchemaElement& container, size_t depth) {
    if (depth > options_.max_depth) return;
    // Elements first inside a sequence, then attributes (XSD ordering).
    Indent(depth);
    out_ += "<" + xs_ + ":sequence>\n";
    for (ElementId child : container.children) {
      const schema::SchemaElement& e = schema_.element(child);
      if (e.kind == ElementKind::kAttribute) continue;
      if (e.is_leaf()) {
        EmitLeafElement(e, depth + 1);
      } else {
        Indent(depth + 1);
        out_ += "<" + xs_ + ":element name=\"" + XmlEscape(e.name) + "\"";
        if (e.nullable) out_ += " minOccurs=\"0\"";
        out_ += ">\n";
        EmitAnnotation(e, depth + 2);
        Indent(depth + 2);
        out_ += "<" + xs_ + ":complexType>\n";
        EmitContent(e, depth + 3);
        Indent(depth + 2);
        out_ += "</" + xs_ + ":complexType>\n";
        Indent(depth + 1);
        out_ += "</" + xs_ + ":element>\n";
      }
    }
    Indent(depth);
    out_ += "</" + xs_ + ":sequence>\n";
    for (ElementId child : container.children) {
      const schema::SchemaElement& e = schema_.element(child);
      if (e.kind == ElementKind::kAttribute) EmitLeafElement(e, depth);
    }
  }

  void EmitNamedComplexType(const schema::SchemaElement& e, size_t depth) {
    Indent(depth);
    out_ += "<" + xs_ + ":complexType name=\"" + XmlEscape(e.name) + "\">\n";
    EmitAnnotation(e, depth + 1);
    EmitContent(e, depth + 1);
    Indent(depth);
    out_ += "</" + xs_ + ":complexType>\n";
  }

  const Schema& schema_;
  XsdExportOptions options_;
  std::string xs_;
  std::string out_;
};

}  // namespace

std::string ExportXsd(const Schema& schema, const XsdExportOptions& options) {
  return XsdWriter(schema, options).Render();
}

}  // namespace harmony::xml
