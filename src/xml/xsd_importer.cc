#include "xml/xsd_importer.h"

#include <unordered_map>

#include "common/string_util.h"
#include "xml/xml_parser.h"

namespace harmony::xml {

using schema::DataType;
using schema::ElementId;
using schema::ElementKind;
using schema::Schema;

schema::DataType XsdTypeToDataType(std::string_view xsd_type) {
  std::string local = ToLower(StripPrefix(xsd_type));
  if (local == "string" || local == "normalizedstring" || local == "token" ||
      local == "name" || local == "ncname" || local == "anyuri" || local == "id" ||
      local == "idref" || local == "language" || local == "qname") {
    return DataType::kString;
  }
  if (local == "int" || local == "integer" || local == "long" || local == "short" ||
      local == "byte" || local == "nonnegativeinteger" || local == "positiveinteger" ||
      local == "negativeinteger" || local == "nonpositiveinteger" ||
      local == "unsignedint" || local == "unsignedlong" || local == "unsignedshort" ||
      local == "unsignedbyte") {
    return DataType::kInteger;
  }
  if (local == "decimal") return DataType::kDecimal;
  if (local == "float" || local == "double") return DataType::kFloat;
  if (local == "boolean") return DataType::kBoolean;
  if (local == "date" || local == "gyear" || local == "gyearmonth") {
    return DataType::kDate;
  }
  if (local == "time") return DataType::kTime;
  if (local == "datetime" || local == "duration") return DataType::kDateTime;
  if (local == "base64binary" || local == "hexbinary") return DataType::kBinary;
  return DataType::kUnknown;
}

namespace {

/// Collects the xs:documentation text inside an element's xs:annotation.
std::string ExtractDocumentation(const XmlNode& node) {
  const XmlNode* ann = node.FirstChild("annotation");
  if (ann == nullptr) return "";
  std::string out;
  for (const XmlNode* doc : ann->Children("documentation")) {
    std::string piece = Trim(doc->text);
    if (piece.empty()) continue;
    if (!out.empty()) out += ' ';
    out += piece;
  }
  return out;
}

class XsdImporter {
 public:
  XsdImporter(const XmlNode& root, Schema* schema, const XsdImportOptions& options)
      : root_(root), schema_(schema), options_(options) {}

  Status Run() {
    // Pass 1: register named complex and simple types.
    for (const auto& child : root_.children) {
      std::string local = child->LocalName();
      if (local == "complexType" && child->HasAttr("name")) {
        named_complex_[child->Attr("name")] = child.get();
      } else if (local == "simpleType" && child->HasAttr("name")) {
        named_simple_[child->Attr("name")] = child.get();
      }
    }
    // Pass 2: emit top-level nodes.
    for (const auto& child : root_.children) {
      std::string local = child->LocalName();
      if (local == "element") {
        HARMONY_RETURN_NOT_OK(ImportElement(*child, Schema::kRootId, 0));
      } else if (local == "complexType" && child->HasAttr("name")) {
        ElementId id = schema_->AddElement(Schema::kRootId, child->Attr("name"),
                                           ElementKind::kComplexType,
                                           DataType::kComposite);
        schema_->mutable_element(id).documentation = ExtractDocumentation(*child);
        HARMONY_RETURN_NOT_OK(ImportComplexTypeContent(*child, id, 0));
      }
      // Named simple types are resolved at use sites, not emitted as nodes.
    }
    return Status::OK();
  }

 private:
  // Resolves a named simple type to its base data type by following
  // xs:restriction chains.
  DataType ResolveSimpleType(const std::string& name, uint32_t guard = 0) {
    if (guard > 8) return DataType::kUnknown;
    DataType builtin = XsdTypeToDataType(name);
    if (builtin != DataType::kUnknown) return builtin;
    auto it = named_simple_.find(StripPrefix(name));
    if (it == named_simple_.end()) return DataType::kUnknown;
    const XmlNode* restriction = it->second->FirstChild("restriction");
    if (restriction == nullptr || !restriction->HasAttr("base")) {
      return DataType::kString;
    }
    return ResolveSimpleType(restriction->Attr("base"), guard + 1);
  }

  Status ImportElement(const XmlNode& node, ElementId parent, uint32_t expansion) {
    std::string name = node.Attr("name");
    if (name.empty()) {
      // An element reference: <xs:element ref="Foo"/>. Model as a node named
      // after the referenced element, without expansion.
      name = StripPrefix(node.Attr("ref"));
      if (name.empty()) {
        return Status::ParseError("xs:element without name or ref");
      }
    }
    ElementId id =
        schema_->AddElement(parent, name, ElementKind::kElement, DataType::kUnknown);
    schema::SchemaElement& e = schema_->mutable_element(id);
    e.documentation = ExtractDocumentation(node);
    e.nullable = (node.Attr("minOccurs") == "0");

    std::string type_attr = node.Attr("type");
    if (!type_attr.empty()) {
      e.declared_type = type_attr;
      DataType dt = XsdTypeToDataType(type_attr);
      if (dt != DataType::kUnknown) {
        e.type = dt;
        return Status::OK();
      }
      dt = ResolveSimpleType(type_attr);
      if (dt != DataType::kUnknown && !named_complex_.count(StripPrefix(type_attr))) {
        e.type = dt;
        return Status::OK();
      }
      // Named complex type reference: expand beneath this element.
      auto it = named_complex_.find(StripPrefix(type_attr));
      if (it != named_complex_.end()) {
        schema_->mutable_element(id).type = DataType::kComposite;
        if (options_.expand_top_level_refs &&
            expansion < options_.max_expansion_depth) {
          return ImportComplexTypeContent(*it->second, id, expansion + 1);
        }
        return Status::OK();
      }
      // Unknown external type: leave as unknown leaf.
      return Status::OK();
    }

    const XmlNode* inline_complex = node.FirstChild("complexType");
    if (inline_complex != nullptr) {
      schema_->mutable_element(id).type = DataType::kComposite;
      return ImportComplexTypeContent(*inline_complex, id, expansion);
    }
    const XmlNode* inline_simple = node.FirstChild("simpleType");
    if (inline_simple != nullptr) {
      const XmlNode* restriction = inline_simple->FirstChild("restriction");
      if (restriction != nullptr && restriction->HasAttr("base")) {
        schema_->mutable_element(id).type =
            ResolveSimpleType(restriction->Attr("base"));
        schema_->mutable_element(id).declared_type = restriction->Attr("base");
      } else {
        schema_->mutable_element(id).type = DataType::kString;
      }
    }
    return Status::OK();
  }

  Status ImportAttribute(const XmlNode& node, ElementId parent) {
    std::string name = node.Attr("name");
    if (name.empty()) name = StripPrefix(node.Attr("ref"));
    if (name.empty()) return Status::ParseError("xs:attribute without name or ref");
    DataType dt = DataType::kString;
    std::string type_attr = node.Attr("type");
    if (!type_attr.empty()) {
      dt = ResolveSimpleType(type_attr);
      if (dt == DataType::kUnknown) dt = DataType::kString;
    }
    ElementId id = schema_->AddElement(parent, name, ElementKind::kAttribute, dt);
    schema::SchemaElement& e = schema_->mutable_element(id);
    e.declared_type = type_attr;
    e.documentation = ExtractDocumentation(node);
    e.nullable = (node.Attr("use") != "required");
    return Status::OK();
  }

  // Imports the content model (sequence/choice/all/attributes) of a
  // complexType node under `parent`.
  Status ImportComplexTypeContent(const XmlNode& type_node, ElementId parent,
                                  uint32_t expansion) {
    if (expansion > options_.max_expansion_depth) return Status::OK();
    for (const auto& child : type_node.children) {
      std::string local = child->LocalName();
      if (local == "sequence" || local == "choice" || local == "all") {
        HARMONY_RETURN_NOT_OK(ImportParticle(*child, parent, expansion));
      } else if (local == "attribute") {
        HARMONY_RETURN_NOT_OK(ImportAttribute(*child, parent));
      } else if (local == "complexContent" || local == "simpleContent") {
        // <extension base="..."> adds to a base type; import the base's
        // content first, then the extension's own particles.
        for (const auto& ext : child->children) {
          std::string ext_local = ext->LocalName();
          if (ext_local != "extension" && ext_local != "restriction") continue;
          std::string base = StripPrefix(ext->Attr("base"));
          auto it = named_complex_.find(base);
          if (it != named_complex_.end() &&
              expansion < options_.max_expansion_depth) {
            HARMONY_RETURN_NOT_OK(
                ImportComplexTypeContent(*it->second, parent, expansion + 1));
          }
          HARMONY_RETURN_NOT_OK(ImportComplexTypeContent(*ext, parent, expansion));
        }
      }
      // xs:annotation handled by the caller via ExtractDocumentation.
    }
    return Status::OK();
  }

  // Imports an xs:sequence / xs:choice / xs:all particle.
  Status ImportParticle(const XmlNode& particle, ElementId parent,
                        uint32_t expansion) {
    for (const auto& child : particle.children) {
      std::string local = child->LocalName();
      if (local == "element") {
        HARMONY_RETURN_NOT_OK(ImportElement(*child, parent, expansion));
      } else if (local == "sequence" || local == "choice" || local == "all") {
        HARMONY_RETURN_NOT_OK(ImportParticle(*child, parent, expansion));
      }
      // xs:any contributes no matchable structure.
    }
    return Status::OK();
  }

  const XmlNode& root_;
  Schema* schema_;
  XsdImportOptions options_;
  std::unordered_map<std::string, const XmlNode*> named_complex_;
  std::unordered_map<std::string, const XmlNode*> named_simple_;
};

}  // namespace

Result<Schema> ImportXsd(std::string_view xsd_text, const std::string& schema_name,
                         const XsdImportOptions& options) {
  HARMONY_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xsd_text));
  if (doc.root->LocalName() != "schema") {
    return Status::ParseError("document element is <" + doc.root->name +
                              ">, expected an XSD <schema>");
  }
  std::string name = schema_name;
  if (name.empty()) name = doc.root->Attr("targetNamespace");
  if (name.empty()) name = "xsd";
  Schema schema(name, schema::SchemaFlavor::kXml);
  XsdImporter importer(*doc.root, &schema, options);
  HARMONY_RETURN_NOT_OK(importer.Run());
  return schema;
}

}  // namespace harmony::xml
