#include "xml/xml_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace harmony::xml {

std::string XmlNode::Attr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return "";
}

bool XmlNode::HasAttr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

const XmlNode* XmlNode::FirstChild(std::string_view local) const {
  for (const auto& c : children) {
    if (c->LocalName() == local) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(std::string_view local) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->LocalName() == local) out.push_back(c.get());
  }
  return out;
}

std::string XmlNode::LocalName() const { return StripPrefix(name); }

std::string StripPrefix(std::string_view qname) {
  size_t colon = qname.rfind(':');
  return std::string(colon == std::string_view::npos ? qname
                                                     : qname.substr(colon + 1));
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<XmlDocument> Parse() {
    SkipProlog();
    HARMONY_ASSIGN_OR_RETURN(auto root, ParseElement());
    SkipMisc();
    if (pos_ != text_.size()) {
      return Error("trailing content after document element");
    }
    XmlDocument doc;
    doc.root = std::move(root);
    return doc;
  }

 private:
  Status Error(const std::string& msg) const {
    int line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::ParseError(StringFormat("line %d: %s", line, msg.c_str()));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool LookingAt(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  // Skips comments, PIs, whitespace, the XML declaration, and DOCTYPE.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<!--")) {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
      } else if (LookingAt("<?")) {
        size_t end = text_.find("?>", pos_ + 2);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 2;
      } else if (LookingAt("<!DOCTYPE")) {
        size_t end = text_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 1;
      } else {
        break;
      }
    }
  }

  void SkipProlog() { SkipMisc(); }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    size_t start = pos_;
    ++pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos || semi - i > 10) {
        out += raw[i];
        continue;
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") out += '<';
      else if (ent == "gt") out += '>';
      else if (ent == "amp") out += '&';
      else if (ent == "apos") out += '\'';
      else if (ent == "quot") out += '"';
      else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        if (code > 0 && code < 128) out += static_cast<char>(code);
        // Non-ASCII references are dropped; schema files in scope are ASCII.
      } else {
        out += raw.substr(i, semi - i + 1);  // Unknown entity: keep literally.
      }
      i = semi;
    }
    return out;
  }

  Result<std::pair<std::string, std::string>> ParseAttribute() {
    HARMONY_ASSIGN_OR_RETURN(std::string name, ParseName());
    SkipWhitespace();
    if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute name");
    ++pos_;
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Error("unterminated attribute value");
    std::string value = DecodeEntities(text_.substr(start, pos_ - start));
    ++pos_;
    return std::make_pair(std::move(name), std::move(value));
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (AtEnd() || Peek() != '<') return Error("expected '<'");
    ++pos_;
    auto node = std::make_unique<XmlNode>();
    HARMONY_ASSIGN_OR_RETURN(node->name, ParseName());

    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + node->name);
      if (Peek() == '/') {
        if (!LookingAt("/>")) return Error("expected '/>'");
        pos_ += 2;
        return node;
      }
      if (Peek() == '>') {
        ++pos_;
        break;
      }
      HARMONY_ASSIGN_OR_RETURN(auto attr, ParseAttribute());
      node->attributes.push_back(std::move(attr));
    }

    // Content until matching end tag.
    while (true) {
      if (AtEnd()) return Error("missing end tag </" + node->name + ">");
      if (LookingAt("<!--")) {
        size_t end = text_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Error("unterminated comment");
        pos_ = end + 3;
      } else if (LookingAt("<![CDATA[")) {
        size_t end = text_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        node->text.append(text_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
      } else if (LookingAt("<?")) {
        size_t end = text_.find("?>", pos_ + 2);
        if (end == std::string_view::npos) return Error("unterminated PI");
        pos_ = end + 2;
      } else if (LookingAt("</")) {
        pos_ += 2;
        HARMONY_ASSIGN_OR_RETURN(std::string end_name, ParseName());
        if (end_name != node->name) {
          return Error("mismatched end tag </" + end_name + ">, expected </" +
                       node->name + ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') return Error("malformed end tag");
        ++pos_;
        return node;
      } else if (Peek() == '<') {
        HARMONY_ASSIGN_OR_RETURN(auto child, ParseElement());
        node->children.push_back(std::move(child));
      } else {
        size_t start = pos_;
        while (!AtEnd() && Peek() != '<') ++pos_;
        node->text += DecodeEntities(text_.substr(start, pos_ - start));
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace harmony::xml
