// A small, non-validating XML parser producing an in-memory DOM. It exists
// to read XML Schema documents (the paper's SB is an XML Schema with 784
// elements), so it supports exactly the XML subset XSD files use: elements,
// attributes, character data, entity references, comments, CDATA, the XML
// declaration, and processing instructions. It does not resolve external
// entities or DTDs.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace harmony::xml {

/// \brief One element node of the parsed document.
///
/// Text content is accumulated into `text` (concatenation of all character
/// data directly inside the element, entity-decoded, whitespace preserved).
struct XmlNode {
  std::string name;  ///< Tag name including any namespace prefix ("xs:element").
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;

  /// Value of attribute `key`, or "" if absent.
  std::string Attr(std::string_view key) const;

  /// True iff attribute `key` is present.
  bool HasAttr(std::string_view key) const;

  /// First child whose local name (prefix stripped) equals `local`, or
  /// nullptr.
  const XmlNode* FirstChild(std::string_view local) const;

  /// All children whose local name equals `local`.
  std::vector<const XmlNode*> Children(std::string_view local) const;

  /// This node's local name (prefix stripped).
  std::string LocalName() const;
};

/// \brief A parsed document: exactly one root element.
struct XmlDocument {
  std::unique_ptr<XmlNode> root;
};

/// Strips a namespace prefix: "xs:element" → "element".
std::string StripPrefix(std::string_view qname);

/// \brief Parses XML text. Returns ParseError with a line number on
/// malformed input (unbalanced tags, bad attribute syntax, stray '<', ...).
Result<XmlDocument> ParseXml(std::string_view text);

}  // namespace harmony::xml
