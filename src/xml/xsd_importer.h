// XSD → Schema importer. Flattens an XML Schema document into the generic
// schema tree: named complex types and top-level elements become depth-1
// nodes; sequences/choices are transparent; named-type references are
// expanded in place (with a recursion guard for recursive types), matching
// how Harmony presented SB's "types and elements" to the engineers.

#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "schema/schema.h"

namespace harmony::xml {

/// \brief Options for XSD import.
struct XsdImportOptions {
  /// Maximum depth to which named-type references are expanded; recursive or
  /// deeply nested types are truncated (the reference node remains, without
  /// children) rather than rejected.
  uint32_t max_expansion_depth = 16;
  /// When a top-level element references a named complex type, expand the
  /// type's content under the element (true) or leave the element as a leaf
  /// typed by the reference (false).
  bool expand_top_level_refs = true;
};

/// \brief Imports an XSD document into a Schema.
///
/// `schema_name` overrides the schema's name; when empty, the value of the
/// xs:schema element's `targetNamespace` (or "xsd" if absent) is used.
/// Returns ParseError for malformed XML or a root element that is not an
/// XSD schema.
Result<schema::Schema> ImportXsd(std::string_view xsd_text,
                                 const std::string& schema_name = "",
                                 const XsdImportOptions& options = {});

/// Maps an XSD built-in type name (with or without the "xs:" prefix) to the
/// normalized DataType; non-built-in names map to kUnknown.
schema::DataType XsdTypeToDataType(std::string_view xsd_type);

}  // namespace harmony::xml
