// XSD export: renders a schema as an XML Schema document with
// xs:annotation/xs:documentation carrying element documentation. Together
// with the importer this round-trips XML-flavoured schemata, and gives
// mediated/exchange schemata a concrete XSD artifact — what a COI would
// actually publish.

#pragma once

#include <string>

#include "schema/schema.h"

namespace harmony::xml {

/// \brief Export options.
struct XsdExportOptions {
  /// Namespace prefix for the XSD vocabulary itself.
  std::string xs_prefix = "xs";
  /// Value of the schema's targetNamespace attribute; empty omits it.
  std::string target_namespace;
  /// Two-space indentation depth limit guard (defensive; schemata this deep
  /// indicate a bug upstream).
  size_t max_depth = 64;
};

/// \brief Renders `schema` as an XSD document. Depth-1 containers become
/// named complex types; nested containers become inline complex types;
/// leaves become xs:element (or xs:attribute if imported as one) with
/// mapped built-in types; documentation becomes xs:annotation.
std::string ExportXsd(const schema::Schema& schema,
                      const XsdExportOptions& options = {});

/// Maps a normalized DataType to the XSD built-in type name (without
/// prefix).
const char* DataTypeToXsdType(schema::DataType type);

}  // namespace harmony::xml
