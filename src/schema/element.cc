#include "schema/element.h"

namespace harmony::schema {

const char* ElementKindToString(ElementKind kind) {
  switch (kind) {
    case ElementKind::kRoot:
      return "root";
    case ElementKind::kTable:
      return "table";
    case ElementKind::kView:
      return "view";
    case ElementKind::kColumn:
      return "column";
    case ElementKind::kComplexType:
      return "complexType";
    case ElementKind::kElement:
      return "element";
    case ElementKind::kAttribute:
      return "attribute";
    case ElementKind::kGroup:
      return "group";
  }
  return "group";
}

ElementKind ElementKindFromString(const std::string& s) {
  if (s == "root") return ElementKind::kRoot;
  if (s == "table") return ElementKind::kTable;
  if (s == "view") return ElementKind::kView;
  if (s == "column") return ElementKind::kColumn;
  if (s == "complexType") return ElementKind::kComplexType;
  if (s == "element") return ElementKind::kElement;
  if (s == "attribute") return ElementKind::kAttribute;
  return ElementKind::kGroup;
}

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kUnknown:
      return "unknown";
    case DataType::kString:
      return "string";
    case DataType::kInteger:
      return "integer";
    case DataType::kDecimal:
      return "decimal";
    case DataType::kFloat:
      return "float";
    case DataType::kBoolean:
      return "boolean";
    case DataType::kDate:
      return "date";
    case DataType::kTime:
      return "time";
    case DataType::kDateTime:
      return "dateTime";
    case DataType::kBinary:
      return "binary";
    case DataType::kComposite:
      return "composite";
  }
  return "unknown";
}

DataType DataTypeFromString(const std::string& s) {
  if (s == "string") return DataType::kString;
  if (s == "integer") return DataType::kInteger;
  if (s == "decimal") return DataType::kDecimal;
  if (s == "float") return DataType::kFloat;
  if (s == "boolean") return DataType::kBoolean;
  if (s == "date") return DataType::kDate;
  if (s == "time") return DataType::kTime;
  if (s == "dateTime") return DataType::kDateTime;
  if (s == "binary") return DataType::kBinary;
  if (s == "composite") return DataType::kComposite;
  return DataType::kUnknown;
}

double DataTypeCompatibility(DataType a, DataType b) {
  if (a == DataType::kUnknown || b == DataType::kUnknown) return 0.5;
  if (a == b) return 1.0;
  auto numeric = [](DataType t) {
    return t == DataType::kInteger || t == DataType::kDecimal || t == DataType::kFloat;
  };
  auto temporal = [](DataType t) {
    return t == DataType::kDate || t == DataType::kTime || t == DataType::kDateTime;
  };
  if (numeric(a) && numeric(b)) return 0.8;
  if (temporal(a) && temporal(b)) return 0.8;
  // Strings can encode nearly anything, so string-vs-other is weakly
  // compatible rather than contradictory.
  if (a == DataType::kString || b == DataType::kString) return 0.4;
  return 0.0;
}

}  // namespace harmony::schema
