// Schema serialization. The metadata repository persists schemata to disk in
// a CSV-backed format ("HSC1"); this header defines the round-trip.

#pragma once

#include <string>

#include "common/result.h"
#include "schema/schema.h"

namespace harmony::schema {

/// \brief Serializes a schema to the HSC1 text format.
///
/// Layout: a header row `["HSC1", name, flavor, documentation]`, then one row
/// per non-root element:
/// `[id, parent, kind, type, name, declared_type, nullable, documentation,
///   annotations]` where annotations is `k=v;k=v;...` with ';'/'=' escaped.
/// Rows appear in id order, so parents always precede children.
std::string SerializeSchema(const Schema& schema);

/// \brief Parses text produced by SerializeSchema. Returns ParseError on
/// malformed input and validates structural integrity before returning.
Result<Schema> DeserializeSchema(const std::string& text);

/// \brief Writes SerializeSchema output to `path`.
Status WriteSchemaFile(const Schema& schema, const std::string& path);

/// \brief Reads and parses a schema file.
Result<Schema> ReadSchemaFile(const std::string& path);

}  // namespace harmony::schema
