// Schema: an arena-backed labeled tree of SchemaElements with the traversal
// and lookup operations the matcher, summarizer, and filters need.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "schema/element.h"

namespace harmony::schema {

/// \brief Source data-model family of a schema.
enum class SchemaFlavor : uint8_t { kGeneric = 0, kRelational, kXml };

const char* SchemaFlavorToString(SchemaFlavor flavor);
SchemaFlavor SchemaFlavorFromString(const std::string& s);

/// \brief An entire schema: a named tree of elements.
///
/// Construction creates an implicit root node (id 0, kind kRoot) carrying
/// the schema name; the root is *not* counted by element_count(), matching
/// the paper's element counts (SA has 1378 elements, none of which is the
/// schema itself).
///
/// Elements are stored in an arena indexed by ElementId; ids are dense and
/// stable for the lifetime of the schema. Adding elements never invalidates
/// ids (but may invalidate SchemaElement references, so hold ids, not
/// pointers, across mutations).
class Schema {
 public:
  /// Creates an empty schema whose root carries `name`.
  explicit Schema(std::string name, SchemaFlavor flavor = SchemaFlavor::kGeneric);

  const std::string& name() const { return elements_[kRootId].name; }
  SchemaFlavor flavor() const { return flavor_; }
  void set_flavor(SchemaFlavor flavor) { flavor_ = flavor; }

  /// Schema-level documentation (shown in repository listings).
  const std::string& documentation() const { return elements_[kRootId].documentation; }
  void set_documentation(std::string doc) {
    elements_[kRootId].documentation = std::move(doc);
  }

  /// Id of the implicit root.
  static constexpr ElementId kRootId = 0;

  /// Adds a child of `parent` and returns its id. `parent` must be a valid
  /// id in this schema (checked; passing a stale id is a programmer error).
  ElementId AddElement(ElementId parent, std::string name, ElementKind kind,
                       DataType type = DataType::kUnknown);

  /// Total nodes excluding the root — the paper's notion of schema size.
  size_t element_count() const { return elements_.size() - 1; }

  /// Total nodes including the root.
  size_t node_count() const { return elements_.size(); }

  /// True iff `id` names a node in this schema (root included).
  bool Contains(ElementId id) const { return id < elements_.size(); }

  /// Element access (checked).
  const SchemaElement& element(ElementId id) const;
  SchemaElement& mutable_element(ElementId id);

  const SchemaElement& root() const { return elements_[kRootId]; }

  /// All ids in pre-order (root first). Stable across calls.
  std::vector<ElementId> PreOrder() const;

  /// All non-root ids in pre-order.
  std::vector<ElementId> AllElementIds() const;

  /// Ids of the subtree rooted at `id` (inclusive), pre-order.
  std::vector<ElementId> SubtreeIds(ElementId id) const;

  /// Number of descendants of `id` (excluding `id`).
  size_t DescendantCount(ElementId id) const;

  /// Leaf ids only (non-root).
  std::vector<ElementId> LeafIds() const;

  /// Dotted path from the root to `id`, excluding the root name, e.g.
  /// "All_Event_Vitals.DATE_BEGIN_156". The root itself yields "".
  std::string Path(ElementId id) const;

  /// Resolves a dotted path produced by Path(); NotFound if absent.
  Result<ElementId> FindByPath(const std::string& path) const;

  /// All non-root elements whose name equals `name` (case-insensitive).
  std::vector<ElementId> FindByName(const std::string& name) const;

  /// Ids at exactly `depth` (root is depth 0).
  std::vector<ElementId> IdsAtDepth(uint32_t depth) const;

  /// Maximum depth of any node.
  uint32_t MaxDepth() const;

  /// Visits each id (root included) in pre-order.
  void Visit(const std::function<void(const SchemaElement&)>& fn) const;

  /// True iff `ancestor` is `id` itself or a proper ancestor of `id`.
  bool IsAncestorOrSelf(ElementId ancestor, ElementId id) const;

  /// Structural integrity check (parent/child agreement, depth correctness).
  /// Always OK for schemata built through AddElement; used to validate
  /// deserialized schemata.
  Status Validate() const;

 private:
  SchemaFlavor flavor_;
  std::vector<SchemaElement> elements_;
};

}  // namespace harmony::schema
