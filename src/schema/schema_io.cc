#include "schema/schema_io.h"

#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/string_util.h"

namespace harmony::schema {

namespace {

std::string EscapeAnnotationPiece(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\' || c == ';' || c == '=') out += '\\';
    out += c;
  }
  return out;
}

std::string EncodeAnnotations(const std::map<std::string, std::string>& ann) {
  std::string out;
  for (const auto& [k, v] : ann) {
    if (!out.empty()) out += ';';
    out += EscapeAnnotationPiece(k);
    out += '=';
    out += EscapeAnnotationPiece(v);
  }
  return out;
}

std::map<std::string, std::string> DecodeAnnotations(const std::string& text) {
  std::map<std::string, std::string> out;
  std::string key, cur;
  bool in_key = true;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      cur += text[++i];
    } else if (c == '=' && in_key) {
      key = cur;
      cur.clear();
      in_key = false;
    } else if (c == ';' && !in_key) {
      out[key] = cur;
      cur.clear();
      in_key = true;
    } else {
      cur += c;
    }
  }
  if (!in_key) out[key] = cur;
  return out;
}

}  // namespace

std::string SerializeSchema(const Schema& schema) {
  CsvWriter w;
  w.AppendRow({"HSC1", schema.name(), SchemaFlavorToString(schema.flavor()),
               schema.documentation()});
  for (ElementId id : schema.AllElementIds()) {
    const SchemaElement& e = schema.element(id);
    w.AppendRow({std::to_string(e.id), std::to_string(e.parent),
                 ElementKindToString(e.kind), DataTypeToString(e.type), e.name,
                 e.declared_type, e.nullable ? "1" : "0", e.documentation,
                 EncodeAnnotations(e.annotations)});
  }
  return w.ToString();
}

Result<Schema> DeserializeSchema(const std::string& text) {
  HARMONY_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty() || rows[0].size() < 4 || rows[0][0] != "HSC1") {
    return Status::ParseError("missing HSC1 header row");
  }
  Schema schema(rows[0][1], SchemaFlavorFromString(rows[0][2]));
  schema.set_documentation(rows[0][3]);

  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 9) {
      return Status::ParseError(
          StringFormat("row %zu: expected 9 fields, got %zu", r, row.size()));
    }
    char* endp = nullptr;
    unsigned long id = std::strtoul(row[0].c_str(), &endp, 10);
    if (endp == row[0].c_str() || *endp != '\0') {
      return Status::ParseError(StringFormat("row %zu: bad element id '%s'", r,
                                             row[0].c_str()));
    }
    unsigned long parent = std::strtoul(row[1].c_str(), &endp, 10);
    if (endp == row[1].c_str() || *endp != '\0') {
      return Status::ParseError(StringFormat("row %zu: bad parent id '%s'", r,
                                             row[1].c_str()));
    }
    if (id != schema.node_count()) {
      return Status::ParseError(
          StringFormat("row %zu: ids must be dense and in order (expected %zu, "
                       "got %lu)",
                       r, schema.node_count(), id));
    }
    if (parent >= schema.node_count()) {
      return Status::ParseError(
          StringFormat("row %zu: parent %lu not yet defined", r, parent));
    }
    ElementId new_id =
        schema.AddElement(static_cast<ElementId>(parent), row[4],
                          ElementKindFromString(row[2]), DataTypeFromString(row[3]));
    SchemaElement& e = schema.mutable_element(new_id);
    e.declared_type = row[5];
    e.nullable = (row[6] != "0");
    e.documentation = row[7];
    e.annotations = DecodeAnnotations(row[8]);
  }
  HARMONY_RETURN_NOT_OK(schema.Validate());
  return schema;
}

Status WriteSchemaFile(const Schema& schema, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot open for writing: " + path);
  f << SerializeSchema(schema);
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Schema> ReadSchemaFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return DeserializeSchema(ss.str());
}

}  // namespace harmony::schema
