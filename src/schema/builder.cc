#include "schema/builder.h"

namespace harmony::schema {

RelationalBuilder::RelationalBuilder(std::string name)
    : schema_(std::move(name), SchemaFlavor::kRelational) {}

ElementId RelationalBuilder::Table(std::string name, std::string documentation) {
  ElementId id =
      schema_.AddElement(Schema::kRootId, std::move(name), ElementKind::kTable,
                         DataType::kComposite);
  schema_.mutable_element(id).documentation = std::move(documentation);
  return id;
}

ElementId RelationalBuilder::View(std::string name, std::string documentation) {
  ElementId id = schema_.AddElement(Schema::kRootId, std::move(name),
                                    ElementKind::kView, DataType::kComposite);
  schema_.mutable_element(id).documentation = std::move(documentation);
  return id;
}

ElementId RelationalBuilder::Column(ElementId table, std::string name, DataType type,
                                    std::string documentation) {
  ElementId id = schema_.AddElement(table, std::move(name), ElementKind::kColumn, type);
  schema_.mutable_element(id).documentation = std::move(documentation);
  return id;
}

void RelationalBuilder::SetPrimaryKey(ElementId column) {
  schema_.mutable_element(column).annotations["primary_key"] = "true";
  schema_.mutable_element(column).nullable = false;
}

Schema RelationalBuilder::Build() && { return std::move(schema_); }

XmlBuilder::XmlBuilder(std::string name)
    : schema_(std::move(name), SchemaFlavor::kXml) {}

ElementId XmlBuilder::ComplexType(std::string name, std::string documentation) {
  ElementId id =
      schema_.AddElement(Schema::kRootId, std::move(name), ElementKind::kComplexType,
                         DataType::kComposite);
  schema_.mutable_element(id).documentation = std::move(documentation);
  return id;
}

ElementId XmlBuilder::Element(ElementId parent, std::string name, DataType type,
                              std::string documentation) {
  ElementId id = schema_.AddElement(parent, std::move(name), ElementKind::kElement,
                                    type);
  schema_.mutable_element(id).documentation = std::move(documentation);
  return id;
}

ElementId XmlBuilder::Attribute(ElementId parent, std::string name, DataType type,
                                std::string documentation) {
  ElementId id =
      schema_.AddElement(parent, std::move(name), ElementKind::kAttribute, type);
  schema_.mutable_element(id).documentation = std::move(documentation);
  return id;
}

Schema XmlBuilder::Build() && { return std::move(schema_); }

}  // namespace harmony::schema
