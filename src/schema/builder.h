// Convenience builders for hand-constructing schemata in tests, examples,
// and documentation. The importers (sql/, xml/) construct Schema directly.

#pragma once

#include <string>

#include "schema/schema.h"

namespace harmony::schema {

/// \brief Fluent builder for relational schemata.
///
/// \code
///   RelationalBuilder b("HR");
///   auto person = b.Table("PERSON", "A person employed by the org");
///   b.Column(person, "PERSON_ID", DataType::kInteger, "Primary key");
///   b.Column(person, "LAST_NAME", DataType::kString);
///   Schema s = std::move(b).Build();
/// \endcode
class RelationalBuilder {
 public:
  explicit RelationalBuilder(std::string name);

  /// Adds a table; returns its id for use as a Column parent.
  ElementId Table(std::string name, std::string documentation = "");

  /// Adds a view (matched like a table, tagged as kView).
  ElementId View(std::string name, std::string documentation = "");

  /// Adds a column under `table`.
  ElementId Column(ElementId table, std::string name,
                   DataType type = DataType::kString,
                   std::string documentation = "");

  /// Marks a column as (part of) the primary key.
  void SetPrimaryKey(ElementId column);

  /// Access to the schema under construction (for annotations etc.).
  Schema& schema() { return schema_; }

  /// Finishes construction.
  Schema Build() &&;

 private:
  Schema schema_;
};

/// \brief Fluent builder for XML-flavoured schemata.
class XmlBuilder {
 public:
  explicit XmlBuilder(std::string name);

  /// Adds a complex type at the top level; returns its id.
  ElementId ComplexType(std::string name, std::string documentation = "");

  /// Adds an element under `parent` (a complex type or another element).
  ElementId Element(ElementId parent, std::string name,
                    DataType type = DataType::kUnknown,
                    std::string documentation = "");

  /// Adds an attribute under `parent`.
  ElementId Attribute(ElementId parent, std::string name,
                      DataType type = DataType::kString,
                      std::string documentation = "");

  Schema& schema() { return schema_; }

  Schema Build() &&;

 private:
  Schema schema_;
};

}  // namespace harmony::schema
