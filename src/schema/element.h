// Schema element vocabulary: the node kinds and data types shared by the
// relational and XML views of a schema. The paper's task mixes both — SA is
// relational (tables/columns), SB is an XML Schema (types/elements/
// attributes) — so the model is a generic labeled tree with kind tags.

#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace harmony::schema {

/// Index of an element within its Schema's arena.
using ElementId = uint32_t;

/// Sentinel for "no element" (e.g. the parent of the root).
constexpr ElementId kInvalidElementId = std::numeric_limits<ElementId>::max();

/// \brief Structural role of a schema element.
enum class ElementKind : uint8_t {
  kRoot = 0,         ///< The implicit schema root (not counted as an element).
  kTable,            ///< Relational table.
  kView,             ///< Relational view.
  kColumn,           ///< Relational column.
  kComplexType,      ///< XSD complex type.
  kElement,          ///< XSD element.
  kAttribute,        ///< XSD attribute.
  kGroup,            ///< Generic grouping node (concept, package, sequence).
};

/// Human-readable kind name ("table", "column", ...).
const char* ElementKindToString(ElementKind kind);

/// Parses the output of ElementKindToString; returns kGroup for unknown text.
ElementKind ElementKindFromString(const std::string& s);

/// \brief Normalized logical data type of a leaf element.
///
/// Importers map concrete SQL/XSD types (VARCHAR(30), xs:dateTime) onto this
/// enum; the data-type match voter compares at this level.
enum class DataType : uint8_t {
  kUnknown = 0,
  kString,
  kInteger,
  kDecimal,
  kFloat,
  kBoolean,
  kDate,
  kTime,
  kDateTime,
  kBinary,
  kComposite,  ///< Non-leaf (table, complex type).
};

/// Human-readable type name ("string", "integer", ...).
const char* DataTypeToString(DataType type);

/// Parses the output of DataTypeToString; returns kUnknown for unknown text.
DataType DataTypeFromString(const std::string& s);

/// \brief Compatibility of two data types for the type voter, in [0,1].
///
/// Identical types score 1; related numerics / temporal types score
/// fractionally; unrelated types score 0. kUnknown is neutral (0.5) because
/// absence of type information is not evidence against a match.
double DataTypeCompatibility(DataType a, DataType b);

/// \brief One node of a schema tree.
///
/// Elements live in their Schema's arena and refer to each other by
/// ElementId. Plain data: the Schema class enforces the tree invariants.
struct SchemaElement {
  ElementId id = kInvalidElementId;
  ElementId parent = kInvalidElementId;
  std::vector<ElementId> children;

  std::string name;
  std::string documentation;
  ElementKind kind = ElementKind::kGroup;
  DataType type = DataType::kUnknown;
  /// The raw declared type text, e.g. "VARCHAR(30)" or "xs:dateTime".
  std::string declared_type;
  bool nullable = true;
  /// Depth in the tree; the root is 0, its children 1, etc. In a relational
  /// schema tables sit at depth 1 and columns at depth 2 (paper §3.2).
  uint32_t depth = 0;

  /// Free-form key→value annotations (importers and the workflow layer use
  /// these: primary-key flags, concept labels, validation notes).
  std::map<std::string, std::string> annotations;

  bool is_leaf() const { return children.empty(); }
};

}  // namespace harmony::schema
