#include "schema/schema.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace harmony::schema {

const char* SchemaFlavorToString(SchemaFlavor flavor) {
  switch (flavor) {
    case SchemaFlavor::kGeneric:
      return "generic";
    case SchemaFlavor::kRelational:
      return "relational";
    case SchemaFlavor::kXml:
      return "xml";
  }
  return "generic";
}

SchemaFlavor SchemaFlavorFromString(const std::string& s) {
  if (s == "relational") return SchemaFlavor::kRelational;
  if (s == "xml") return SchemaFlavor::kXml;
  return SchemaFlavor::kGeneric;
}

Schema::Schema(std::string name, SchemaFlavor flavor) : flavor_(flavor) {
  SchemaElement root;
  root.id = kRootId;
  root.parent = kInvalidElementId;
  root.name = std::move(name);
  root.kind = ElementKind::kRoot;
  root.type = DataType::kComposite;
  root.depth = 0;
  elements_.push_back(std::move(root));
}

ElementId Schema::AddElement(ElementId parent, std::string name, ElementKind kind,
                             DataType type) {
  HARMONY_CHECK_LT(parent, elements_.size()) << "invalid parent id";
  ElementId id = static_cast<ElementId>(elements_.size());
  SchemaElement e;
  e.id = id;
  e.parent = parent;
  e.name = std::move(name);
  e.kind = kind;
  e.type = type;
  e.depth = elements_[parent].depth + 1;
  elements_.push_back(std::move(e));
  elements_[parent].children.push_back(id);
  return id;
}

const SchemaElement& Schema::element(ElementId id) const {
  HARMONY_CHECK_LT(id, elements_.size()) << "invalid element id";
  return elements_[id];
}

SchemaElement& Schema::mutable_element(ElementId id) {
  HARMONY_CHECK_LT(id, elements_.size()) << "invalid element id";
  return elements_[id];
}

std::vector<ElementId> Schema::PreOrder() const { return SubtreeIds(kRootId); }

std::vector<ElementId> Schema::AllElementIds() const {
  auto ids = PreOrder();
  ids.erase(ids.begin());  // Drop the root.
  return ids;
}

std::vector<ElementId> Schema::SubtreeIds(ElementId id) const {
  HARMONY_CHECK_LT(id, elements_.size());
  std::vector<ElementId> out;
  std::vector<ElementId> stack{id};
  while (!stack.empty()) {
    ElementId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& children = elements_[cur].children;
    // Push in reverse so pre-order matches insertion order.
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

size_t Schema::DescendantCount(ElementId id) const {
  return SubtreeIds(id).size() - 1;
}

std::vector<ElementId> Schema::LeafIds() const {
  std::vector<ElementId> out;
  for (const auto& e : elements_) {
    if (e.id != kRootId && e.is_leaf()) out.push_back(e.id);
  }
  return out;
}

std::string Schema::Path(ElementId id) const {
  HARMONY_CHECK_LT(id, elements_.size());
  if (id == kRootId) return "";
  std::vector<const std::string*> parts;
  for (ElementId cur = id; cur != kRootId; cur = elements_[cur].parent) {
    parts.push_back(&elements_[cur].name);
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += '.';
    out += **it;
  }
  return out;
}

Result<ElementId> Schema::FindByPath(const std::string& path) const {
  if (path.empty()) return kRootId;
  ElementId cur = kRootId;
  for (const auto& part : Split(path, '.')) {
    bool found = false;
    for (ElementId child : elements_[cur].children) {
      if (elements_[child].name == part) {
        cur = child;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("no element at path '" + path + "' in schema '" +
                              name() + "'");
    }
  }
  return cur;
}

std::vector<ElementId> Schema::FindByName(const std::string& target) const {
  std::vector<ElementId> out;
  for (const auto& e : elements_) {
    if (e.id != kRootId && EqualsIgnoreCase(e.name, target)) out.push_back(e.id);
  }
  return out;
}

std::vector<ElementId> Schema::IdsAtDepth(uint32_t depth) const {
  std::vector<ElementId> out;
  for (const auto& e : elements_) {
    if (e.depth == depth && e.id != kRootId) out.push_back(e.id);
  }
  if (depth == 0) out.push_back(kRootId);
  return out;
}

uint32_t Schema::MaxDepth() const {
  uint32_t max_depth = 0;
  for (const auto& e : elements_) max_depth = std::max(max_depth, e.depth);
  return max_depth;
}

void Schema::Visit(const std::function<void(const SchemaElement&)>& fn) const {
  for (ElementId id : PreOrder()) fn(elements_[id]);
}

bool Schema::IsAncestorOrSelf(ElementId ancestor, ElementId id) const {
  HARMONY_CHECK_LT(ancestor, elements_.size());
  HARMONY_CHECK_LT(id, elements_.size());
  ElementId cur = id;
  while (true) {
    if (cur == ancestor) return true;
    if (cur == kRootId) return false;
    cur = elements_[cur].parent;
  }
}

Status Schema::Validate() const {
  if (elements_.empty() || elements_[kRootId].kind != ElementKind::kRoot) {
    return Status::Internal("schema has no root");
  }
  for (const auto& e : elements_) {
    if (e.id == kRootId) {
      if (e.parent != kInvalidElementId || e.depth != 0) {
        return Status::Internal("malformed root node");
      }
      continue;
    }
    if (e.parent >= elements_.size()) {
      return Status::Internal(StringFormat("element %u has invalid parent", e.id));
    }
    const auto& p = elements_[e.parent];
    if (e.depth != p.depth + 1) {
      return Status::Internal(StringFormat("element %u has wrong depth", e.id));
    }
    if (std::find(p.children.begin(), p.children.end(), e.id) == p.children.end()) {
      return Status::Internal(
          StringFormat("element %u missing from parent's child list", e.id));
    }
  }
  for (const auto& e : elements_) {
    for (ElementId c : e.children) {
      if (c >= elements_.size() || elements_[c].parent != e.id) {
        return Status::Internal(StringFormat("bad child link %u -> %u", e.id, c));
      }
    }
  }
  return Status::OK();
}

}  // namespace harmony::schema
