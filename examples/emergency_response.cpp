// The emergency-response scenario (paper §2 "Generating an exchange
// schema"): "many new data sharing partners (e.g., state and federal
// agencies, non-profits, corporations) may suddenly be thrust together to
// respond to a crisis ... to throw their data models into a giant beaker
// and to distill out a minimal mediated schema that will serve as the basis
// for their collaboration."
//
//   $ ./emergency_response

#include <cstdio>

#include "nway/mediated_schema.h"
#include "nway/vocabulary_builder.h"
#include "sql/ddl_exporter.h"
#include "synth/generator.h"
#include "xml/xsd_exporter.h"

int main() {
  using namespace harmony;

  // Six agencies thrust together: overlapping but independently developed
  // data models drawn from a common crisis-domain universe.
  synth::NWaySpec spec;
  spec.seed = 2009;
  spec.schema_count = 6;
  spec.universe_concepts = 20;
  spec.concepts_per_schema = 10;
  spec.names = {"FEMA_OPS", "STATE_EOC", "RED_CROSS", "NATL_GUARD", "COUNTY_EMS",
                "PORT_AUTH"};
  auto agencies = synth::GenerateNWay(spec);

  std::vector<const schema::Schema*> schemas;
  for (const auto& s : agencies.schemas) {
    std::printf("%-12s brings %3zu elements\n", s.name().c_str(),
                s.element_count());
    schemas.push_back(&s);
  }

  // Into the beaker: match every pair, build the comprehensive vocabulary.
  std::printf("\nMatching all %zu agency pairs...\n",
              schemas.size() * (schemas.size() - 1) / 2);
  auto matches = nway::MatchAllPairs(schemas, /*threshold=*/0.45);
  nway::ComprehensiveVocabulary vocabulary(schemas, matches);
  std::printf("Comprehensive vocabulary: %zu terms across %zu populated regions\n",
              vocabulary.terms().size(), vocabulary.RegionHistogram().size());

  // Distill the minimal mediated schema: concepts at least 3 agencies share.
  nway::MediatedSchemaOptions options;
  options.name = "CRISIS_EXCHANGE";
  options.min_sources = 3;
  options.min_fields_per_container = 2;
  auto mediated = nway::BuildMediatedSchema(vocabulary, options);
  std::printf("\nDistilled %s: %zu shared concepts, %zu exchange fields\n",
              mediated.schema.name().c_str(), mediated.containers_emitted,
              mediated.leaves_emitted);
  for (schema::ElementId id : mediated.schema.IdsAtDepth(1)) {
    const auto& e = mediated.schema.element(id);
    std::printf("  %-28s %2zu fields   sources %s\n", e.name.c_str(),
                e.children.size(),
                e.annotations.count("sources") ? e.annotations.at("sources").c_str()
                                               : "-");
  }

  std::printf("\nHow well does the exchange schema serve each agency?\n");
  for (size_t i = 0; i < schemas.size(); ++i) {
    std::printf("  %-12s coverage %.0f%%\n", schemas[i]->name().c_str(),
                100.0 * nway::MediatedCoverage(vocabulary, mediated, i));
  }

  // Publish the exchange schema in both formats the partners consume.
  std::string xsd = xml::ExportXsd(mediated.schema);
  std::string ddl = sql::ExportDdl(mediated.schema);
  std::printf("\nPublishable artifacts generated: %zu bytes of XSD, "
              "%zu bytes of DDL.\n",
              xsd.size(), ddl.size());
  std::printf("First lines of the XSD:\n");
  size_t shown = 0;
  for (size_t pos = 0; pos < xsd.size() && shown < 6; ++shown) {
    size_t end = xsd.find('\n', pos);
    if (end == std::string::npos) end = xsd.size();
    std::printf("  %s\n", xsd.substr(pos, end - pos).c_str());
    pos = end + 1;
  }
  return 0;
}
