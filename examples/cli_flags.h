// Shared command-line parsing for the example binaries. harmony_match and
// harmonyd accept the same engine and daemon flags; this header is the one
// place they are spelled out, so a new engine flag (like --pipeline) lands
// in both binaries — and in every harmony_match subcommand — by being added
// here once.
//
// All helpers are deliberately tiny: flags are --name=value tokens, first
// occurrence wins, unknown tokens are ignored (subcommands own their
// positional arguments). Parse failures print a diagnostic to stderr and
// return false; callers exit 2 (usage error).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/match_engine.h"
#include "service/daemon.h"
#include "text/simd.h"

namespace harmony::cli {

inline bool FlagSet(const std::vector<std::string>& args, const char* flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

inline std::string FlagValue(const std::vector<std::string>& args,
                             const char* prefix, const std::string& fallback) {
  for (const auto& a : args) {
    if (StartsWith(a, prefix)) return a.substr(std::strlen(prefix));
  }
  return fallback;
}

/// --blocking= values. "exact" prunes with the provable score bound
/// (selected matches identical to the dense kernel), "approx" generates
/// candidates from the inverted indexes only (sub-quadratic, may miss
/// soft-only matches), "off" scores every cell.
inline bool ParseBlockingMode(const std::string& value,
                              core::BlockingMode* mode) {
  if (value == "off") {
    *mode = core::BlockingMode::kOff;
  } else if (value == "exact") {
    *mode = core::BlockingMode::kExact;
  } else if (value == "approx" || value == "approximate") {
    *mode = core::BlockingMode::kApproximate;
  } else {
    std::fprintf(stderr, "--blocking=%s: expected off, exact, or approx\n",
                 value.c_str());
    return false;
  }
  return true;
}

/// --pipeline= values. "single" runs the classic one-pass kernel (the
/// default; bitwise-identical to the pre-pipeline engine), "staged" runs
/// the four-stage retrieve -> enrich -> rank -> rerank pipeline
/// (core/pipeline.h).
inline bool ParsePipelineMode(const std::string& value,
                              core::PipelineMode* mode) {
  if (value == "single") {
    *mode = core::PipelineMode::kSingleStage;
  } else if (value == "staged") {
    *mode = core::PipelineMode::kStaged;
  } else {
    std::fprintf(stderr, "--pipeline=%s: expected single or staged\n",
                 value.c_str());
    return false;
  }
  return true;
}

/// The engine flags every matching entry point shares: --threads=N
/// --grain=N --adaptive-grain --blocking=off|exact|approx
/// --pipeline=single|staged --retrieve-budget=K --rerank-blend=A
/// --simd=scalar|bitparallel|avx2|auto. Leaves unmentioned fields of
/// `options` untouched. --simd sets the process-wide kernel level
/// (text/simd.h) — scores are bitwise-identical at every level, so the flag
/// is a perf/debug knob, not a behavior switch.
inline bool ParseEngineFlags(const std::vector<std::string>& args,
                             core::MatchOptions* options) {
  options->num_threads = static_cast<size_t>(
      std::atoi(FlagValue(args, "--threads=", "0").c_str()));
  options->grain = static_cast<size_t>(
      std::atoi(FlagValue(args, "--grain=", "0").c_str()));
  options->adaptive_grain = FlagSet(args, "--adaptive-grain");
  std::string simd = FlagValue(args, "--simd=", "");
  if (!simd.empty()) {
    text::simd::Level level;
    if (!text::simd::ParseLevel(simd, &level)) {
      std::fprintf(stderr,
                   "--simd=%s: expected scalar, bitparallel, avx2, or auto\n",
                   simd.c_str());
      return false;
    }
    text::simd::SetActiveLevel(level);
  }
  if (!ParseBlockingMode(FlagValue(args, "--blocking=", "off"),
                         &options->blocking.mode)) {
    return false;
  }
  if (!ParsePipelineMode(FlagValue(args, "--pipeline=", "single"),
                         &options->pipeline.mode)) {
    return false;
  }
  options->pipeline.retrieve_budget = static_cast<size_t>(
      std::atol(FlagValue(args, "--retrieve-budget=", "0").c_str()));
  options->pipeline.rerank_blend =
      std::atof(FlagValue(args, "--rerank-blend=", "0.25").c_str());
  return true;
}

/// The daemon flags shared verbatim by `harmony_match serve` and the
/// harmonyd binary. Engine flags flow into state.match_options (and from
/// there into every resident engine the daemon builds).
inline bool ParseServeFlags(const std::vector<std::string>& args,
                            service::ServeOptions* options) {
  options->server.host = FlagValue(args, "--host=", "127.0.0.1");
  options->server.port = static_cast<uint16_t>(
      std::atoi(FlagValue(args, "--port=", "0").c_str()));
  options->server.num_workers = static_cast<size_t>(
      std::atoi(FlagValue(args, "--threads=", "0").c_str()));
  options->server.queue_depth = static_cast<size_t>(
      std::atoi(FlagValue(args, "--queue-depth=", "64").c_str()));
  options->state.vocab_threshold =
      std::atof(FlagValue(args, "--threshold=", "0.35").c_str());
  if (!ParseEngineFlags(args, &options->state.match_options)) return false;
  options->state.engine_cache_max = static_cast<size_t>(
      std::atol(FlagValue(args, "--engine-cache-max=", "0").c_str()));
  options->repo_dir = FlagValue(args, "--repo=", "");
  options->synth_schemas = static_cast<size_t>(
      std::atoi(FlagValue(args, "--synth-schemas=", "4").c_str()));
  options->stats = FlagSet(args, "--stats");
  options->metrics_text = FlagSet(args, "--metrics-text");
  options->stats_interval_ms =
      std::atol(FlagValue(args, "--stats-interval=", "0").c_str());
  options->trace_path = FlagValue(args, "--trace=", "");
  long slow_ms = std::atol(FlagValue(args, "--slow-ms=", "-1").c_str());
  options->server.slow_request_ns =
      slow_ms < 0 ? -1 : static_cast<int64_t>(slow_ms) * 1'000'000;
  return true;
}

}  // namespace harmony::cli
