// Schema search over an enterprise metadata repository (paper §2 "Finding
// relevant and related schemata"): register schemata, persist them, then
// search the registry with keywords ("blood test" — the CIO's question) and
// with an entire schema as the query term, storing the resulting match as a
// provenance-tagged knowledge artifact.
//
//   $ ./schema_search [repository_dir]

#include <cstdio>
#include <string>

#include "core/match_engine.h"
#include "core/selection.h"
#include "repository/metadata_repository.h"
#include "synth/generator.h"

int main(int argc, char** argv) {
  using namespace harmony;
  std::string repo_dir = (argc > 1) ? argv[1] : "mdr_demo";

  // Populate a registry (the paper's analogue is the DoD Metadata Registry).
  repository::MetadataRepository repo;
  synth::RepositorySpec spec;
  spec.families = 5;
  spec.schemas_per_family = 6;
  auto population = synth::GenerateRepository(spec);
  for (auto& rs : population) {
    auto id = repo.RegisterSchema(std::move(rs.schema));
    if (!id.ok()) {
      std::fprintf(stderr, "register failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("Registered %zu schemata in the repository\n", repo.schema_count());

  auto index = repo.BuildSearchIndex();

  // Keyword search: "which data sources contain the concept of blood test?"
  std::printf("\nKeyword query: \"blood test\"\n");
  for (const auto& hit : index.SearchKeywords("blood test", 5)) {
    std::printf("  %-12s score %.3f\n", repo.schema(hit.schema_index).name().c_str(),
                hit.score);
  }
  std::printf("Top matching elements:\n");
  for (const auto& hit : index.SearchFragments("blood test result", 3)) {
    const schema::Schema& s = index.schema(hit.schema_index);
    std::printf("  %s : %s  (%.3f)\n", s.name().c_str(),
                s.Path(hit.element).c_str(), hit.score);
  }

  // Schema-as-query: a new system shops for its closest relatives.
  synth::SchemaSpec query_spec;
  query_spec.seed = 4242;
  query_spec.name = "NEW_SYSTEM";
  query_spec.concepts = 12;
  schema::Schema query = synth::GenerateSchema(query_spec);
  std::printf("\nSchema-as-query: %s (%zu elements)\n", query.name().c_str(),
              query.element_count());
  auto hits = index.Search(query, 5);
  for (const auto& hit : hits) {
    std::printf("  %-12s score %.3f\n", repo.schema(hit.schema_index).name().c_str(),
                hit.score);
  }

  // Deep-match the best candidate and store the result with provenance so
  // future integrators can reuse it.
  if (!hits.empty()) {
    const schema::Schema& best = repo.schema(hits[0].schema_index);
    core::MatchEngine engine(query, best);
    auto links = core::SelectGreedyOneToOne(engine.ComputeMatrix(), 0.45);
    std::printf("\nDeep match vs %s: %zu correspondences above 0.45\n",
                best.name().c_str(), links.size());

    auto query_id = repo.RegisterSchema(std::move(query));
    if (query_id.ok()) {
      repository::Provenance prov;
      prov.author = "integration-engineer";
      prov.tool = "harmony/1.0";
      prov.created_at = "2009-01-04T09:00:00Z";
      prov.context = "search";
      prov.threshold = 0.45;
      auto match_id = repo.StoreMatch(*query_id, hits[0].schema_index,
                                      std::move(links), prov);
      if (match_id.ok()) {
        std::printf("Stored as match artifact #%u (context: search)\n", *match_id);
      }
    }
  }

  Status st = repo.SaveTo(repo_dir);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Repository persisted to %s/ (%zu schemata, %zu match artifacts)\n",
              repo_dir.c_str(), repo.schema_count(), repo.match_count());
  return 0;
}
