// The paper's §3 scenario, end to end: a military customer owns a relational
// system SA (v3, being redesigned) and a disliked legacy XML system SB, and
// must decide whether to subsume Sys(SB) into Sys(SA).v4 or keep it behind
// an ETL bridge. Schema matching answers the question — without generating
// a single line of transformation code.
//
//   $ ./project_planning [output_dir]

#include <cstdio>
#include <string>

#include "analysis/effort.h"
#include "analysis/overlap.h"
#include "core/match_engine.h"
#include "summarize/auto_summarizer.h"
#include "synth/generator.h"
#include "workflow/concept_workflow.h"
#include "workflow/match_view.h"
#include "workflow/spreadsheet_export.h"
#include "workflow/team.h"

int main(int argc, char** argv) {
  using namespace harmony;
  std::string out_dir = (argc > 1) ? argv[1] : "planning_deliverable";

  // The real SA/SB are not public; generate analogues at the paper's scale
  // (SA: 140 concepts, relational; SB: 51 concepts, XML; 24 shared).
  synth::PairSpec spec;
  auto pair = synth::GeneratePair(spec);
  std::printf("SA: %zu elements (relational), SB: %zu elements (XML)\n",
              pair.source.element_count(), pair.target.element_count());

  core::MatchEngine engine(pair.source, pair.target);

  // Step 1 — SUMMARIZE(SA), SUMMARIZE(SB): the engineers labeled 140
  // concepts in SA and 51 in SB; we summarize automatically.
  summarize::AutoSummarizeOptions sum_opts;
  sum_opts.max_concepts = 140;
  auto sum_a = summarize::AutoSummarize(pair.source, sum_opts);
  sum_opts.max_concepts = 51;
  auto sum_b = summarize::AutoSummarize(pair.target, sum_opts);
  std::printf("Summarized: %zu concepts in SA, %zu in SB\n", sum_a.concept_count(),
              sum_b.concept_count());

  // Divide the work across the two integration engineers of §3.3.
  std::vector<workflow::TeamMember> team{{"engineer-1", "person event medical"},
                                         {"engineer-2", "vehicle supply weapon"}};
  auto plan = workflow::PlanTeamTasks(sum_a, pair.target, team);
  std::printf("Task queues: %zu tasks for %s, %zu for %s (imbalance %.2f)\n",
              plan.QueueFor("engineer-1").size(), "engineer-1",
              plan.QueueFor("engineer-2").size(), "engineer-2",
              plan.LoadImbalance(team));

  // Step 2 — concept-at-a-time matching with interactive refinement.
  workflow::MatchWorkspace workspace(pair.source, pair.target);
  auto report = workflow::RunConceptWorkflow(engine, sum_a, sum_b,
                                             workflow::ConceptWorkflowOptions{},
                                             &workspace);
  size_t min_inc = SIZE_MAX, max_inc = 0;
  for (const auto& inc : report.increments) {
    if (inc.pairs_considered == 0) continue;
    min_inc = std::min(min_inc, inc.pairs_considered);
    max_inc = std::max(max_inc, inc.pairs_considered);
  }
  std::printf("Workflow: %zu increments, %zu candidate pairs total "
              "(%zu..%zu per increment)\n",
              report.increments.size(), report.total_pairs_considered, min_inc,
              max_inc);
  std::printf("Validated: %zu accepted, %zu deferred; %zu concept-level matches\n",
              report.total_accepted, report.total_deferred,
              report.concept_matches.size());
  std::printf("Review state: %s\n",
              workflow::RenderStatusSummary(workspace).c_str());

  // Lesson #2's match-centric view: the strongest accepted matches.
  workflow::MatchViewOptions view;
  view.filter.status = workflow::ValidationStatus::kAccepted;
  view.max_rows = 8;
  std::printf("\nTop accepted matches (match-centric view):\n%s\n",
              workflow::RenderMatchView(workspace, view).c_str());

  // Step 3 — post-matching analysis: the {SA−SB, SA∩SB, SB−SA} partition
  // drives the subsume-vs-bridge decision.
  auto partition =
      analysis::ComputeOverlap(pair.source, pair.target, workspace.AcceptedLinks());
  std::printf("\n%s\n",
              analysis::RenderDecisionMemo(pair.source, pair.target, partition)
                  .c_str());

  // Step 3b — the planning number the paper's customer ultimately wanted:
  // "how much time and money should be allocated to these projects?"
  auto effort = analysis::EstimateIntegrationEffort(pair.source, pair.target,
                                                    engine.ComputeMatrix());
  std::printf("%s\n",
              analysis::RenderEffortMemo(pair.source, pair.target, effort).c_str());

  // Step 4 — deliver the outer-join spreadsheet the customer asked for.
  Status st = workflow::ExportSpreadsheet(sum_a, sum_b, report.concept_matches,
                                          workspace, out_dir);
  if (!st.ok()) {
    std::fprintf(stderr, "export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Deliverable written to %s/concepts.csv and %s/elements.csv\n",
              out_dir.c_str(), out_dir.c_str());
  std::printf("Concept sheet rows: %zu + %zu - %zu = %zu (outer-join style)\n",
              sum_a.concept_count(), sum_b.concept_count(),
              report.concept_matches.size(),
              sum_a.concept_count() + sum_b.concept_count() -
                  report.concept_matches.size());
  return 0;
}
