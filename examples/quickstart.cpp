// Quickstart: import a relational schema from DDL and an XML Schema from
// XSD, run the Harmony match engine, and print the scored correspondences
// with their per-voter explanations.
//
//   $ ./quickstart

#include <cstdio>

#include "core/match_engine.h"
#include "core/selection.h"
#include "sql/ddl_parser.h"
#include "xml/xsd_importer.h"

namespace {

constexpr const char* kDdl = R"SQL(
-- Sys(SA): the system of record, version 3.
CREATE TABLE PERSON (
  PERSON_ID NUMBER(10) PRIMARY KEY,  -- Unique identifier of the person
  LAST_NAME VARCHAR2(64) NOT NULL,   -- The surname of the person
  FIRST_NAME VARCHAR2(64),           -- The given name of the person
  BIRTH_DT DATE,                     -- The date on which the person was born
  BLOOD_TYP_CD VARCHAR2(4),          -- Blood group of the person
  RANK_CD VARCHAR2(8)                -- Military rank of the person
);

CREATE TABLE VEH (
  VEH_ID NUMBER(10) PRIMARY KEY,     -- Unique identifier of the vehicle
  VEH_IDENT_NBR VARCHAR2(17),        -- Identification number of the vehicle
  MAKE_NM VARCHAR2(32),              -- Manufacturer of the vehicle
  FUEL_TYP_CD VARCHAR2(8)            -- Kind of fuel the vehicle consumes
);
)SQL";

constexpr const char* kXsd = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="Individual">
    <xs:annotation><xs:documentation>An individual tracked by the legacy system.</xs:documentation></xs:annotation>
    <xs:sequence>
      <xs:element name="FamilyName" type="xs:string">
        <xs:annotation><xs:documentation>Family name of the individual.</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="GivenName" type="xs:string">
        <xs:annotation><xs:documentation>First name of the individual.</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="BirthDate" type="xs:date">
        <xs:annotation><xs:documentation>Birth date of the individual.</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="BloodGroup" type="xs:string">
        <xs:annotation><xs:documentation>The blood type recorded for the individual.</xs:documentation></xs:annotation>
      </xs:element>
    </xs:sequence>
    <xs:attribute name="id" type="xs:int" use="required"/>
  </xs:complexType>
  <xs:complexType name="Conveyance">
    <xs:annotation><xs:documentation>A conveyance used for transport.</xs:documentation></xs:annotation>
    <xs:sequence>
      <xs:element name="VehicleIdentificationNumber" type="xs:string">
        <xs:annotation><xs:documentation>The VIN assigned to the conveyance.</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="Manufacturer" type="xs:string">
        <xs:annotation><xs:documentation>Name of the maker of the conveyance.</xs:documentation></xs:annotation>
      </xs:element>
    </xs:sequence>
  </xs:complexType>
</xs:schema>)";

}  // namespace

int main() {
  using namespace harmony;

  auto sa = sql::ImportDdl(kDdl, "SA");
  if (!sa.ok()) {
    std::fprintf(stderr, "DDL import failed: %s\n", sa.status().ToString().c_str());
    return 1;
  }
  auto sb = xml::ImportXsd(kXsd, "SB");
  if (!sb.ok()) {
    std::fprintf(stderr, "XSD import failed: %s\n", sb.status().ToString().c_str());
    return 1;
  }
  std::printf("Imported %s: %zu elements (relational)\n", sa->name().c_str(),
              sa->element_count());
  std::printf("Imported %s: %zu elements (XML Schema)\n\n", sb->name().c_str(),
              sb->element_count());

  core::MatchEngine engine(*sa, *sb);
  core::MatchMatrix matrix = engine.ComputeMatrix();
  auto links = core::SelectGreedyOneToOne(matrix, engine.options().threshold);

  std::printf("%-28s %-40s %7s\n", "SA element", "SB element", "score");
  std::printf("%.*s\n", 78, "-----------------------------------------------"
                            "-------------------------------");
  for (const auto& link : links) {
    std::printf("%-28s %-40s %7.3f\n", sa->Path(link.source).c_str(),
                sb->Path(link.target).c_str(), link.score);
  }

  // Explain the top correspondence: which voters contributed, and with how
  // much evidence.
  if (!links.empty()) {
    const auto& top = links.front();
    auto why = engine.Explain(top.source, top.target);
    std::printf("\nWhy does %s match %s?\n", sa->Path(top.source).c_str(),
                sb->Path(top.target).c_str());
    for (size_t i = 0; i < why.voter_names.size(); ++i) {
      std::printf("  %-14s ratio=%.3f evidence=%.1f\n", why.voter_names[i],
                  why.scores[i].ratio, why.scores[i].evidence);
    }
    std::printf("  merged match score: %.3f\n", why.merged);
  }
  return 0;
}
