// harmonyd — the resident schema-match daemon. Loads the metadata
// repository once, keeps the preprocessed engine arenas, search index, and
// N-way vocabulary warm, and serves match / schema-search / vocabulary
// queries over a length-prefixed binary protocol on a loopback TCP port.
//
//   harmonyd [--port=N] [--host=ADDR] [--repo=DIR] [--threads=N]
//            [--queue-depth=N] [--threshold=0.35] [--synth-schemas=N]
//            [--stats] [--metrics-text] [--stats-interval=MS]
//            [--trace=FILE] [--slow-ms=N]
//            [--blocking=off|exact|approx] [--pipeline=single|staged]
//            [--retrieve-budget=K] [--rerank-blend=A]
//            [--engine-cache-max=N]
//            [--adaptive-grain] [--simd=scalar|bitparallel|avx2|auto]
//
// --blocking=exact enables the candidate-pair blocking index on resident
// match engines: requests selecting at or above the engine threshold skip
// scoring provably sub-threshold pairs with identical selected matches;
// lower-threshold requests transparently fall back to the dense kernel
// (counted in match.blocking.dense_fallback).
// --pipeline=staged runs resident engines through the four-stage
// retrieve -> enrich -> rank -> rerank pipeline (core/pipeline.h); each
// request then reports per-stage latency in the match.pipeline.*_ns
// histograms and per-request trace spans. --engine-cache-max=N bounds the
// resident engine cache (LRU eviction); 0 = unbounded.
//
// Observability: --trace=FILE writes a Chrome trace (request spans with
// id/family args, engine spans nested beneath) at exit; --slow-ms=N logs a
// structured slow-request line for any request whose total latency exceeds
// N ms (0 = log every request); --metrics-text renders the exit metrics
// dump in Prometheus/statsd text form.
//
// With --repo, serves a repository previously written by
// MetadataRepository::SaveTo; without it, a built-in synthetic community
// (demo and CI-smoke mode). --port=0 binds an ephemeral port; the actual
// port is printed on the startup line:
//
//   harmonyd: serving 4 schemata on 127.0.0.1:46817 (workers=2 queue=64)
//
// SIGTERM/SIGINT drain gracefully: admitted connections are served to their
// last in-flight request, then the process exits 0. Talk to it with
// `harmony_match query` or the service::Client library.

#include <string>
#include <vector>

#include "cli_flags.h"
#include "service/daemon.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  harmony::service::ServeOptions options;
  // Flag parsing is shared with `harmony_match serve` (examples/cli_flags.h)
  // so both daemon entry points accept exactly the same flags.
  if (!harmony::cli::ParseServeFlags(args, &options)) return 2;
  return harmony::service::ServeMain(options);
}
