// harmonyd — the resident schema-match daemon. Loads the metadata
// repository once, keeps the preprocessed engine arenas, search index, and
// N-way vocabulary warm, and serves match / schema-search / vocabulary
// queries over a length-prefixed binary protocol on a loopback TCP port.
//
//   harmonyd [--port=N] [--host=ADDR] [--repo=DIR] [--threads=N]
//            [--queue-depth=N] [--threshold=0.35] [--synth-schemas=N]
//            [--stats] [--metrics-text] [--stats-interval=MS]
//            [--trace=FILE] [--slow-ms=N]
//            [--blocking=off|exact|approx] [--engine-cache-max=N]
//
// --blocking=exact enables the candidate-pair blocking index on resident
// match engines: requests selecting at or above the engine threshold skip
// scoring provably sub-threshold pairs with identical selected matches;
// lower-threshold requests transparently fall back to the dense kernel.
// --engine-cache-max=N bounds the resident engine cache (LRU eviction);
// 0 = unbounded.
//
// Observability: --trace=FILE writes a Chrome trace (request spans with
// id/family args, engine spans nested beneath) at exit; --slow-ms=N logs a
// structured slow-request line for any request whose total latency exceeds
// N ms (0 = log every request); --metrics-text renders the exit metrics
// dump in Prometheus/statsd text form.
//
// With --repo, serves a repository previously written by
// MetadataRepository::SaveTo; without it, a built-in synthetic community
// (demo and CI-smoke mode). --port=0 binds an ephemeral port; the actual
// port is printed on the startup line:
//
//   harmonyd: serving 4 schemata on 127.0.0.1:46817 (workers=2 queue=64)
//
// SIGTERM/SIGINT drain gracefully: admitted connections are served to their
// last in-flight request, then the process exits 0. Talk to it with
// `harmony_match query` or the service::Client library.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "service/daemon.h"

namespace {

using namespace harmony;

std::string FlagValue(const std::vector<std::string>& args, const char* prefix,
                      const std::string& fallback) {
  for (const auto& a : args) {
    if (StartsWith(a, prefix)) return a.substr(std::strlen(prefix));
  }
  return fallback;
}

bool FlagSet(const std::vector<std::string>& args, const char* flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  service::ServeOptions options;
  options.server.host = FlagValue(args, "--host=", "127.0.0.1");
  options.server.port =
      static_cast<uint16_t>(std::atoi(FlagValue(args, "--port=", "0").c_str()));
  options.server.num_workers = static_cast<size_t>(
      std::atoi(FlagValue(args, "--threads=", "0").c_str()));
  options.server.queue_depth = static_cast<size_t>(
      std::atoi(FlagValue(args, "--queue-depth=", "64").c_str()));
  options.state.vocab_threshold =
      std::atof(FlagValue(args, "--threshold=", "0.35").c_str());
  std::string blocking = FlagValue(args, "--blocking=", "off");
  if (blocking == "exact") {
    options.state.match_options.blocking.mode = core::BlockingMode::kExact;
  } else if (blocking == "approx" || blocking == "approximate") {
    options.state.match_options.blocking.mode =
        core::BlockingMode::kApproximate;
  } else if (blocking != "off") {
    std::fprintf(stderr, "--blocking=%s: expected off, exact, or approx\n",
                 blocking.c_str());
    return 2;
  }
  options.state.engine_cache_max = static_cast<size_t>(
      std::atol(FlagValue(args, "--engine-cache-max=", "0").c_str()));
  options.repo_dir = FlagValue(args, "--repo=", "");
  options.synth_schemas = static_cast<size_t>(
      std::atoi(FlagValue(args, "--synth-schemas=", "4").c_str()));
  options.stats = FlagSet(args, "--stats");
  options.metrics_text = FlagSet(args, "--metrics-text");
  options.stats_interval_ms =
      std::atol(FlagValue(args, "--stats-interval=", "0").c_str());
  options.trace_path = FlagValue(args, "--trace=", "");
  long slow_ms = std::atol(FlagValue(args, "--slow-ms=", "-1").c_str());
  options.server.slow_request_ns =
      slow_ms < 0 ? -1 : static_cast<int64_t>(slow_ms) * 1'000'000;
  return service::ServeMain(options);
}
