// harmony_match — command-line driver for the matcher, the tool an
// integration engineer would actually run against two schema files.
//
//   harmony_match match <source> <target> [--threshold=0.35] [--one-to-one]
//                 [--refined] [--csv] [--save-workspace=FILE]
//                 [--stats] [--stats-interval=MS] [--trace=out.json]
//                 [--threads=N] [--grain=N]
//   harmony_match profile <schema>...
//   harmony_match export <schema> (--ddl | --xsd)
//   harmony_match vocab <schema> <schema>... [--threshold=0.35] [--threads=N]
//                 [--serial-merge] [--csv] [--stats] [--trace=out.json]
//   harmony_match serve [--port=N] [--repo=DIR] [--threads=N]
//                 [--queue-depth=N] [--stats] [--stats-interval=MS]
//   harmony_match query [--host=ADDR] [--port=N] <action> ...
//     actions: ping | match <src> <tgt> [--by-name] [--threshold=]
//              [--one-to-one] [--refined] [--csv]
//              | search <keywords...> [--k=N] [--fragments]
//              | vocab [term] [--k=N] | stats | shutdown | badframe
//
// serve runs the resident harmonyd daemon in-process (same code path as the
// harmonyd binary); query is the matching client. A served `query match
// --csv` is byte-identical to a local `match --csv` of the same files: the
// daemon sniffs schema text with the same detector and ships scores as
// IEEE-754 bits.
//
// vocab builds the comprehensive N-way vocabulary: every unordered schema
// pair is matched, finished pairs stream into the sharded union-find merge
// while other pairs are still matching, and the term list plus region
// histogram are printed (--csv dumps the full term table instead).
// --serial-merge selects the single-threaded baseline merge — output is
// bitwise-identical, the flag exists for A/B timing. With fewer than two
// schema paths, vocab runs on a built-in synthetic community.
//
// --stats prints the engine's effort breakdown (per-voter timing) and the
// run's metrics registry to stderr; --stats-interval=MS additionally emits
// one "stats-delta {json}" line to stderr every MS milliseconds containing
// only what changed since the previous emission (the statsd/OTLP-style
// periodic-export pattern); --trace writes a Chrome trace-event JSON of the
// whole run (open in chrome://tracing or ui.perfetto.dev).
//
// Observability is scoped: the run owns a child MetricsRegistry (under the
// process root) and its own Tracer, bundled into a core::EngineContext that
// is threaded through the engine. At exit the child's totals are flushed
// into the root, so nothing is lost.
//
// Schema files are auto-detected by content: SQL DDL, XSD, or the HSC1
// serialization format. Running without arguments demonstrates on built-in
// sample schemata.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harmony.h"

namespace {

using namespace harmony;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Derive the schema name from the file name.
std::string SchemaNameFromPath(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return (slash == std::string::npos) ? path : path.substr(slash + 1);
}

// Format auto-detection by content — service::ParseSchemaAuto is the single
// sniffing implementation, shared with the daemon so a schema shipped to
// harmonyd as text parses to the same tree this CLI builds locally.
Result<schema::Schema> LoadSchema(const std::string& path) {
  HARMONY_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return service::ParseSchemaAuto(text, SchemaNameFromPath(path));
}

bool FlagSet(const std::vector<std::string>& args, const char* flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

std::string FlagValue(const std::vector<std::string>& args, const char* prefix,
                      const std::string& fallback) {
  for (const auto& a : args) {
    if (StartsWith(a, prefix)) return a.substr(std::strlen(prefix));
  }
  return fallback;
}

// One CSV renderer for both the local match path and served results, so the
// service-smoke gate can diff the two outputs byte for byte.
std::string LinksCsv(const std::vector<service::MatchLink>& links) {
  CsvWriter w;
  w.AppendRow({"source_path", "target_path", "score"});
  for (const auto& link : links) {
    w.AppendRow({link.source_path, link.target_path,
                 StringFormat("%.4f", link.score)});
  }
  return w.ToString();
}

// Shared by match and demo: owns the run's observability scope — a child
// MetricsRegistry under the process root plus a dedicated Tracer — and
// exposes them as an EngineContext for the pipeline. On scope exit it
// writes the trace file, prints the stats report, and flushes the child's
// totals into the root registry. With a positive stats interval a
// background thread emits "stats-delta {json}" lines to stderr: each line
// carries only the change since the previous line (periodic delta export,
// as a statsd or OTLP exporter would ship).
class ObsSession {
 public:
  ObsSession(bool stats, std::string trace_path, long stats_interval_ms)
      : stats_(stats),
        trace_path_(std::move(trace_path)),
        registry_(root_.metrics),
        context_(&registry_, &tracer_) {
    if (!trace_path_.empty()) {
      tracer_.SetThreadName("main");
      tracer_.Start();
    }
    if (stats_interval_ms > 0) {
      exporter_ = std::thread([this, stats_interval_ms] {
        ExportLoop(stats_interval_ms);
      });
    }
  }

  ~ObsSession() {
    if (exporter_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
      }
      cv_.notify_all();
      exporter_.join();
      EmitDelta();  // the tail of the run since the last periodic emission
    }
    if (!trace_path_.empty()) {
      tracer_.Stop();
      if (tracer_.WriteChromeTrace(trace_path_)) {
        std::fprintf(stderr,
                     "trace: %zu events -> %s (open in chrome://tracing)\n",
                     tracer_.event_count(), trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace: cannot write %s\n", trace_path_.c_str());
      }
    }
    if (stats_) {
      std::fputs("\n-- run metrics --\n", stderr);
      std::fputs(registry_.Snapshot().ToText().c_str(), stderr);
    }
    // The run is over: make its totals visible at the process root.
    registry_.FlushToParent();
  }

  bool stats() const { return stats_; }
  const core::EngineContext& context() const { return context_; }

 private:
  void ExportLoop(long interval_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                       [this] { return stop_; })) {
        return;
      }
      lock.unlock();
      EmitDelta();
      lock.lock();
    }
  }

  // Only ever called from one thread at a time: the exporter thread while it
  // runs, the destructor after joining it.
  void EmitDelta() {
    // Snapshot once and diff against it, so increments landing between two
    // snapshots can never fall through the crack between deltas.
    obs::MetricsSnapshot current = registry_.Snapshot();
    obs::MetricsSnapshot delta = current.DeltaFrom(baseline_);
    baseline_ = std::move(current);
    std::fprintf(stderr, "stats-delta %s\n", delta.ToJson().c_str());
  }

  bool stats_;
  std::string trace_path_;
  core::EngineContext root_;  // sanctioned gateway to the process globals
  obs::MetricsRegistry registry_;
  obs::Tracer tracer_;
  core::EngineContext context_;
  obs::MetricsSnapshot baseline_;
  std::thread exporter_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

int RunMatch(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: harmony_match match <source> <target> [flags]\n");
    return 2;
  }
  auto source = LoadSchema(args[0]);
  if (!source.ok()) {
    std::fprintf(stderr, "source: %s\n", source.status().ToString().c_str());
    return 1;
  }
  auto target = LoadSchema(args[1]);
  if (!target.ok()) {
    std::fprintf(stderr, "target: %s\n", target.status().ToString().c_str());
    return 1;
  }
  double threshold =
      std::atof(FlagValue(args, "--threshold=", "0.35").c_str());

  ObsSession obs_session(
      FlagSet(args, "--stats"), FlagValue(args, "--trace=", ""),
      std::atol(FlagValue(args, "--stats-interval=", "0").c_str()));

  core::MatchOptions options;
  options.collect_stats = obs_session.stats();
  options.num_threads = static_cast<size_t>(
      std::atoi(FlagValue(args, "--threads=", "0").c_str()));
  options.grain = static_cast<size_t>(
      std::atoi(FlagValue(args, "--grain=", "0").c_str()));
  core::MatchEngine engine(*source, *target, options, obs_session.context());
  core::MatchMatrix matrix = FlagSet(args, "--refined")
                                 ? engine.ComputeRefinedMatrix()
                                 : engine.ComputeMatrix();
  auto links =
      FlagSet(args, "--one-to-one")
          ? core::SelectGreedyOneToOne(matrix, threshold, engine.context())
          : core::SelectByThreshold(matrix, threshold, engine.context());

  workflow::MatchWorkspace workspace(*source, *target);
  workspace.ImportCandidates(links);

  if (FlagSet(args, "--csv")) {
    std::vector<service::MatchLink> rows;
    rows.reserve(links.size());
    for (const auto& link : links) {
      rows.push_back({source->Path(link.source), target->Path(link.target),
                      link.score});
    }
    std::fputs(LinksCsv(rows).c_str(), stdout);
  } else {
    std::fputs(workflow::RenderMatchView(workspace).c_str(), stdout);
  }

  // The engine report is printed before any remaining fallible step, so an
  // error exit below still ships a complete --stats picture; the child
  // registry itself is flushed to the root by ObsSession's destructor on
  // *every* return path (RAII — audited: no exit() calls bypass it).
  if (obs_session.stats()) {
    std::fputs(core::RenderStatsText(engine.StatsReport()).c_str(), stderr);
  }

  std::string ws_path = FlagValue(args, "--save-workspace=", "");
  if (!ws_path.empty()) {
    Status st = workflow::SaveWorkspace(workspace, ws_path);
    if (!st.ok()) {
      std::fprintf(stderr, "save-workspace: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "workspace saved to %s\n", ws_path.c_str());
  }
  return 0;
}

int RunProfile(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: harmony_match profile <schema>...\n");
    return 2;
  }
  std::vector<analysis::SchemaStats> all;
  for (const auto& path : args) {
    auto s = LoadSchema(path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   s.status().ToString().c_str());
      return 1;
    }
    all.push_back(analysis::ComputeSchemaStats(*s));
    std::fputs(analysis::RenderSchemaStats(all.back()).c_str(), stdout);
  }
  if (all.size() > 1) {
    std::printf("\n%s", analysis::RenderStatsTable(all).c_str());
  }
  return 0;
}

int RunExport(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: harmony_match export <schema> (--ddl|--xsd)\n");
    return 2;
  }
  auto s = LoadSchema(args[0]);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.status().ToString().c_str());
    return 1;
  }
  if (FlagSet(args, "--xsd")) {
    std::fputs(xml::ExportXsd(*s).c_str(), stdout);
  } else {
    std::fputs(sql::ExportDdl(*s).c_str(), stdout);
  }
  return 0;
}

int RunVocab(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  for (const auto& a : args) {
    if (!StartsWith(a, "--")) paths.push_back(a);
  }

  ObsSession obs_session(
      FlagSet(args, "--stats"), FlagValue(args, "--trace=", ""),
      std::atol(FlagValue(args, "--stats-interval=", "0").c_str()));

  // Loaded (or generated) schemata must outlive the vocabulary.
  std::vector<schema::Schema> owned;
  if (paths.size() >= 2) {
    for (const auto& path : paths) {
      auto s = LoadSchema(path);
      if (!s.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     s.status().ToString().c_str());
        return 1;
      }
      owned.push_back(*std::move(s));
    }
  } else {
    std::printf("vocab demo: built-in synthetic community (pass two or more "
                "schema files to use your own)\n\n");
    synth::NWaySpec spec;
    spec.schema_count = 4;
    spec.universe_concepts = 14;
    spec.concepts_per_schema = 9;
    owned = synth::GenerateNWay(spec).schemas;
  }
  std::vector<const schema::Schema*> schemas;
  for (const auto& s : owned) schemas.push_back(&s);
  if (schemas.size() > nway::ComprehensiveVocabulary::kMaxSchemas) {
    std::fprintf(stderr, "vocab: at most %zu schemata supported\n",
                 nway::ComprehensiveVocabulary::kMaxSchemas);
    return 2;
  }

  double threshold =
      std::atof(FlagValue(args, "--threshold=", "0.35").c_str());
  size_t threads = static_cast<size_t>(
      std::atoi(FlagValue(args, "--threads=", "0").c_str()));
  core::MatchOptions match_options;
  match_options.num_threads = threads;
  nway::NwayOptions nway_options;
  nway_options.parallel_merge = !FlagSet(args, "--serial-merge");
  nway_options.num_threads = threads;

  auto result = nway::MatchAndBuildVocabulary(
      schemas, threshold, /*one_to_one=*/true, match_options, nway_options,
      obs_session.context());
  const auto& vocab = result.vocabulary;

  if (FlagSet(args, "--csv")) {
    std::fputs(vocab.ToCsv().c_str(), stdout);
    return 0;
  }

  size_t links = 0;
  for (const auto& pm : result.matches) links += pm.links.size();
  std::printf("comprehensive vocabulary over %zu schemata\n",
              vocab.schema_count());
  std::printf("  pairwise links : %zu (threshold %.2f)\n", links, threshold);
  std::printf("  terms          : %zu\n", vocab.terms().size());
  std::printf("  full-overlap terms (all %zu schemata): %zu\n",
              vocab.schema_count(), vocab.FullOverlapCount());
  std::printf("\nregion histogram (top 10):\n");
  auto histogram = vocab.RegionHistogram();
  size_t rows = 0;
  for (const auto& [mask, count] : histogram) {
    if (++rows > 10) break;
    std::printf("  %-40s %zu\n", vocab.RegionName(mask).c_str(), count);
  }
  std::printf("\nlargest terms:\n");
  for (size_t t = 0; t < vocab.terms().size() && t < 8; ++t) {
    const auto& term = vocab.term(t);
    std::printf("  %-24s %zu members in %s\n", term.display_name.c_str(),
                term.members.size(),
                vocab.RegionName(term.schema_mask).c_str());
  }
  return 0;
}

int RunServe(const std::vector<std::string>& args) {
  service::ServeOptions options;
  options.server.host = FlagValue(args, "--host=", "127.0.0.1");
  options.server.port = static_cast<uint16_t>(
      std::atoi(FlagValue(args, "--port=", "0").c_str()));
  options.server.num_workers = static_cast<size_t>(
      std::atoi(FlagValue(args, "--threads=", "0").c_str()));
  options.server.queue_depth = static_cast<size_t>(
      std::atoi(FlagValue(args, "--queue-depth=", "64").c_str()));
  options.state.vocab_threshold =
      std::atof(FlagValue(args, "--threshold=", "0.35").c_str());
  options.repo_dir = FlagValue(args, "--repo=", "");
  options.synth_schemas = static_cast<size_t>(
      std::atoi(FlagValue(args, "--synth-schemas=", "4").c_str()));
  options.stats = FlagSet(args, "--stats");
  options.stats_interval_ms =
      std::atol(FlagValue(args, "--stats-interval=", "0").c_str());
  return service::ServeMain(options);
}

// Sends a deliberately hostile length prefix and expects the daemon to
// answer with a framed error instead of allocating or dying — the CLI face
// of the protocol robustness tests, used by the CI smoke session.
int RunBadFrame(service::Client& client) {
  service::WireWriter w;
  w.PutU32(0xFFFFFFFFu);  // body "length": ~4 GiB
  w.PutU8(0x02);
  Status sent = client.SendRaw(w.bytes());
  if (!sent.ok()) {
    std::fprintf(stderr, "badframe send: %s\n", sent.ToString().c_str());
    return 1;
  }
  auto reply = client.ReadReply();
  if (!reply.ok()) {
    std::fprintf(stderr, "badframe: no reply: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  if (static_cast<service::ResponseTag>(reply->tag) !=
      service::ResponseTag::kError) {
    std::fprintf(stderr, "badframe: unexpected reply tag 0x%02x\n",
                 reply->tag);
    return 1;
  }
  std::printf("badframe rejected: %s\n",
              service::DecodeErrorPayload(reply->payload).ToString().c_str());
  return 0;
}

int RunQuery(const std::vector<std::string>& args) {
  std::vector<std::string> words;
  for (const auto& a : args) {
    if (!StartsWith(a, "--")) words.push_back(a);
  }
  if (words.empty()) {
    std::fprintf(stderr,
                 "usage: harmony_match query [--host=ADDR] [--port=N] "
                 "[--max-reply-mb=N] "
                 "(ping | match <src> <tgt> | search <kw...> | vocab [term] "
                 "| stats | shutdown | badframe)\n");
    return 2;
  }
  std::string host = FlagValue(args, "--host=", "127.0.0.1");
  uint16_t port = static_cast<uint16_t>(
      std::atoi(FlagValue(args, "--port=", "7411").c_str()));
  // A low-threshold match over large schemata can legitimately outgrow the
  // client's default 8 MiB reply bound; this raises it without a rebuild.
  size_t max_reply_mb = static_cast<size_t>(
      std::atoi(FlagValue(args, "--max-reply-mb=", "8").c_str()));
  if (max_reply_mb == 0) max_reply_mb = 8;
  auto client = service::Client::Connect(host, port,
                                         max_reply_mb * 1024 * 1024);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  const std::string& action = words[0];

  if (action == "ping") {
    auto reply = client->Ping();
    if (!reply.ok()) {
      std::fprintf(stderr, "ping: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", reply->c_str());
    return 0;
  }
  if (action == "badframe") return RunBadFrame(*client);
  if (action == "match") {
    if (words.size() < 3) {
      std::fprintf(stderr,
                   "usage: harmony_match query match <source> <target> "
                   "[--by-name] [--threshold=0.35] [--one-to-one] "
                   "[--refined] [--csv]\n");
      return 2;
    }
    service::MatchRequest request;
    request.threshold =
        std::atof(FlagValue(args, "--threshold=", "0.35").c_str());
    request.one_to_one = FlagSet(args, "--one-to-one");
    request.refined = FlagSet(args, "--refined");
    request.by_name = FlagSet(args, "--by-name");
    if (request.by_name) {
      request.source_name = words[1];
      request.target_name = words[2];
    } else {
      auto source = ReadFile(words[1]);
      if (!source.ok()) {
        std::fprintf(stderr, "source: %s\n",
                     source.status().ToString().c_str());
        return 1;
      }
      auto target = ReadFile(words[2]);
      if (!target.ok()) {
        std::fprintf(stderr, "target: %s\n",
                     target.status().ToString().c_str());
        return 1;
      }
      request.source_name = SchemaNameFromPath(words[1]);
      request.source_text = *std::move(source);
      request.target_name = SchemaNameFromPath(words[2]);
      request.target_text = *std::move(target);
    }
    auto response = client->Match(request);
    if (!response.ok()) {
      std::fprintf(stderr, "match: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (FlagSet(args, "--csv")) {
      std::fputs(LinksCsv(response->links).c_str(), stdout);
    } else {
      for (const auto& link : response->links) {
        std::printf("%-40s %-40s %.4f\n", link.source_path.c_str(),
                    link.target_path.c_str(), link.score);
      }
      std::printf("%zu links\n", response->links.size());
    }
    return 0;
  }
  if (action == "search") {
    service::SearchRequest request;
    for (size_t i = 1; i < words.size(); ++i) {
      if (!request.query.empty()) request.query += ' ';
      request.query += words[i];
    }
    if (request.query.empty()) {
      std::fprintf(stderr, "usage: harmony_match query search <keywords...>\n");
      return 2;
    }
    request.k = static_cast<uint32_t>(
        std::atoi(FlagValue(args, "--k=", "10").c_str()));
    request.fragments = FlagSet(args, "--fragments");
    auto response = client->Search(request);
    if (!response.ok()) {
      std::fprintf(stderr, "search: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    for (const auto& hit : response->hits) {
      if (hit.element_path.empty()) {
        std::printf("%-32s %.4f\n", hit.schema_name.c_str(), hit.score);
      } else {
        std::printf("%-32s %-40s %.4f\n", hit.schema_name.c_str(),
                    hit.element_path.c_str(), hit.score);
      }
    }
    std::printf("%zu hits\n", response->hits.size());
    return 0;
  }
  if (action == "vocab") {
    service::VocabRequest request;
    if (words.size() > 1) request.term = words[1];
    request.k = static_cast<uint32_t>(
        std::atoi(FlagValue(args, "--k=", "8").c_str()));
    auto reply = client->Vocab(request);
    if (!reply.ok()) {
      std::fprintf(stderr, "vocab: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    std::fputs(reply->c_str(), stdout);
    return 0;
  }
  if (action == "stats") {
    auto reply = client->Stats();
    if (!reply.ok()) {
      std::fprintf(stderr, "stats: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    std::fputs(reply->c_str(), stdout);
    return 0;
  }
  if (action == "shutdown") {
    auto reply = client->Shutdown();
    if (!reply.ok()) {
      std::fprintf(stderr, "shutdown: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", reply->c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown query action '%s'\n", action.c_str());
  return 2;
}

int RunDemo(const std::vector<std::string>& args) {
  std::printf("harmony_match demo: matching two built-in sample schemata\n\n");
  ObsSession obs_session(
      FlagSet(args, "--stats"), FlagValue(args, "--trace=", ""),
      std::atol(FlagValue(args, "--stats-interval=", "0").c_str()));
  synth::PairSpec spec;
  spec.source_concepts = 6;
  spec.target_concepts = 5;
  spec.shared_concepts = 3;
  auto pair = synth::GeneratePair(spec);
  core::MatchOptions options;
  options.collect_stats = obs_session.stats();
  options.num_threads = static_cast<size_t>(
      std::atoi(FlagValue(args, "--threads=", "0").c_str()));
  core::MatchEngine engine(pair.source, pair.target, options,
                           obs_session.context());
  auto links = core::SelectGreedyOneToOne(engine.ComputeRefinedMatrix(), 0.35,
                                          engine.context());
  workflow::MatchWorkspace ws(pair.source, pair.target);
  ws.ImportCandidates(links);
  workflow::MatchViewOptions view;
  view.max_rows = 15;
  std::fputs(workflow::RenderMatchView(ws, view).c_str(), stdout);
  std::printf("\nTry: harmony_match match <a.sql> <b.xsd> --one-to-one --refined\n");
  if (obs_session.stats()) {
    std::fputs(core::RenderStatsText(engine.StatsReport()).c_str(), stderr);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // No command (just flags, or nothing) runs the demo.
  if (args.empty() || StartsWith(args[0], "--")) return RunDemo(args);
  std::string command = args[0];
  args.erase(args.begin());
  if (command == "match") return RunMatch(args);
  if (command == "profile") return RunProfile(args);
  if (command == "export") return RunExport(args);
  if (command == "vocab") return RunVocab(args);
  if (command == "serve") return RunServe(args);
  if (command == "query") return RunQuery(args);
  std::fprintf(stderr,
               "unknown command '%s' (expected match | profile | export | "
               "vocab | serve | query)\n",
               command.c_str());
  return 2;
}
