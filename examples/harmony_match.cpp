// harmony_match — command-line driver for the matcher, the tool an
// integration engineer would actually run against two schema files.
//
//   harmony_match match <source> <target> [--threshold=0.35] [--one-to-one]
//                 [--refined] [--csv] [--save-workspace=FILE]
//                 [--stats] [--trace=out.json] [--threads=N]
//   harmony_match profile <schema>...
//   harmony_match export <schema> (--ddl | --xsd)
//
// --stats prints the engine's effort breakdown (per-voter timing) and the
// process metrics registry to stderr; --trace writes a Chrome trace-event
// JSON of the whole run (open in chrome://tracing or ui.perfetto.dev).
//
// Schema files are auto-detected by content: SQL DDL, XSD, or the HSC1
// serialization format. Running without arguments demonstrates on built-in
// sample schemata.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harmony.h"

namespace {

using namespace harmony;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Format auto-detection by content.
Result<schema::Schema> LoadSchema(const std::string& path) {
  HARMONY_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  std::string head = Trim(text.substr(0, 256));
  if (StartsWith(head, "HSC1,")) return schema::DeserializeSchema(text);
  if (StartsWith(head, "<")) {
    // Derive the schema name from the file name.
    size_t slash = path.find_last_of('/');
    std::string name = (slash == std::string::npos) ? path : path.substr(slash + 1);
    return xml::ImportXsd(text, name);
  }
  size_t slash = path.find_last_of('/');
  std::string name = (slash == std::string::npos) ? path : path.substr(slash + 1);
  return sql::ImportDdl(text, name);
}

bool FlagSet(const std::vector<std::string>& args, const char* flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

std::string FlagValue(const std::vector<std::string>& args, const char* prefix,
                      const std::string& fallback) {
  for (const auto& a : args) {
    if (StartsWith(a, prefix)) return a.substr(std::strlen(prefix));
  }
  return fallback;
}

// Shared by match and demo: start tracing if requested, and on scope exit
// write the trace file / print the stats report.
class ObsSession {
 public:
  ObsSession(bool stats, std::string trace_path)
      : stats_(stats), trace_path_(std::move(trace_path)) {
    if (!trace_path_.empty()) {
      obs::Tracer::Global().SetThreadName("main");
      obs::Tracer::Global().Start();
    }
  }

  ~ObsSession() {
    if (!trace_path_.empty()) {
      obs::Tracer& tracer = obs::Tracer::Global();
      tracer.Stop();
      if (tracer.WriteChromeTrace(trace_path_)) {
        std::fprintf(stderr,
                     "trace: %zu events -> %s (open in chrome://tracing)\n",
                     tracer.event_count(), trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace: cannot write %s\n", trace_path_.c_str());
      }
    }
    if (stats_) {
      std::fputs("\n-- process metrics --\n", stderr);
      std::fputs(obs::MetricsRegistry::Global().Snapshot().ToText().c_str(),
                 stderr);
    }
  }

  bool stats() const { return stats_; }

 private:
  bool stats_;
  std::string trace_path_;
};

int RunMatch(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: harmony_match match <source> <target> [flags]\n");
    return 2;
  }
  auto source = LoadSchema(args[0]);
  if (!source.ok()) {
    std::fprintf(stderr, "source: %s\n", source.status().ToString().c_str());
    return 1;
  }
  auto target = LoadSchema(args[1]);
  if (!target.ok()) {
    std::fprintf(stderr, "target: %s\n", target.status().ToString().c_str());
    return 1;
  }
  double threshold =
      std::atof(FlagValue(args, "--threshold=", "0.35").c_str());

  ObsSession obs_session(FlagSet(args, "--stats"),
                         FlagValue(args, "--trace=", ""));

  core::MatchOptions options;
  options.collect_stats = obs_session.stats();
  options.num_threads = static_cast<size_t>(
      std::atoi(FlagValue(args, "--threads=", "0").c_str()));
  core::MatchEngine engine(*source, *target, options);
  core::MatchMatrix matrix = FlagSet(args, "--refined")
                                 ? engine.ComputeRefinedMatrix()
                                 : engine.ComputeMatrix();
  auto links = FlagSet(args, "--one-to-one")
                   ? core::SelectGreedyOneToOne(matrix, threshold)
                   : core::SelectByThreshold(matrix, threshold);

  workflow::MatchWorkspace workspace(*source, *target);
  workspace.ImportCandidates(links);

  if (FlagSet(args, "--csv")) {
    CsvWriter w;
    w.AppendRow({"source_path", "target_path", "score"});
    for (const auto& link : links) {
      w.AppendRow({source->Path(link.source), target->Path(link.target),
                   StringFormat("%.4f", link.score)});
    }
    std::fputs(w.ToString().c_str(), stdout);
  } else {
    std::fputs(workflow::RenderMatchView(workspace).c_str(), stdout);
  }

  std::string ws_path = FlagValue(args, "--save-workspace=", "");
  if (!ws_path.empty()) {
    Status st = workflow::SaveWorkspace(workspace, ws_path);
    if (!st.ok()) {
      std::fprintf(stderr, "save-workspace: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "workspace saved to %s\n", ws_path.c_str());
  }
  if (obs_session.stats()) {
    std::fputs(core::RenderStatsText(engine.StatsReport()).c_str(), stderr);
  }
  return 0;
}

int RunProfile(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: harmony_match profile <schema>...\n");
    return 2;
  }
  std::vector<analysis::SchemaStats> all;
  for (const auto& path : args) {
    auto s = LoadSchema(path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   s.status().ToString().c_str());
      return 1;
    }
    all.push_back(analysis::ComputeSchemaStats(*s));
    std::fputs(analysis::RenderSchemaStats(all.back()).c_str(), stdout);
  }
  if (all.size() > 1) {
    std::printf("\n%s", analysis::RenderStatsTable(all).c_str());
  }
  return 0;
}

int RunExport(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: harmony_match export <schema> (--ddl|--xsd)\n");
    return 2;
  }
  auto s = LoadSchema(args[0]);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.status().ToString().c_str());
    return 1;
  }
  if (FlagSet(args, "--xsd")) {
    std::fputs(xml::ExportXsd(*s).c_str(), stdout);
  } else {
    std::fputs(sql::ExportDdl(*s).c_str(), stdout);
  }
  return 0;
}

int RunDemo(const std::vector<std::string>& args) {
  std::printf("harmony_match demo: matching two built-in sample schemata\n\n");
  ObsSession obs_session(FlagSet(args, "--stats"),
                         FlagValue(args, "--trace=", ""));
  synth::PairSpec spec;
  spec.source_concepts = 6;
  spec.target_concepts = 5;
  spec.shared_concepts = 3;
  auto pair = synth::GeneratePair(spec);
  core::MatchOptions options;
  options.collect_stats = obs_session.stats();
  options.num_threads = static_cast<size_t>(
      std::atoi(FlagValue(args, "--threads=", "0").c_str()));
  core::MatchEngine engine(pair.source, pair.target, options);
  auto links =
      core::SelectGreedyOneToOne(engine.ComputeRefinedMatrix(), 0.35);
  workflow::MatchWorkspace ws(pair.source, pair.target);
  ws.ImportCandidates(links);
  workflow::MatchViewOptions view;
  view.max_rows = 15;
  std::fputs(workflow::RenderMatchView(ws, view).c_str(), stdout);
  std::printf("\nTry: harmony_match match <a.sql> <b.xsd> --one-to-one --refined\n");
  if (obs_session.stats()) {
    std::fputs(core::RenderStatsText(engine.StatsReport()).c_str(), stderr);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // No command (just flags, or nothing) runs the demo.
  if (args.empty() || StartsWith(args[0], "--")) return RunDemo(args);
  std::string command = args[0];
  args.erase(args.begin());
  if (command == "match") return RunMatch(args);
  if (command == "profile") return RunProfile(args);
  if (command == "export") return RunExport(args);
  std::fprintf(stderr,
               "unknown command '%s' (expected match | profile | export)\n",
               command.c_str());
  return 2;
}
