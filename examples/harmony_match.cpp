// harmony_match — command-line driver for the matcher, the tool an
// integration engineer would actually run against two schema files.
//
//   harmony_match match <source> <target> [--threshold=0.35] [--one-to-one]
//                 [--refined] [--csv] [--save-workspace=FILE]
//                 [--stats] [--stats-interval=MS] [--trace=out.json]
//                 [--threads=N] [--grain=N] [--adaptive-grain]
//                 [--blocking=off|exact|approx]
//                 [--pipeline=single|staged] [--retrieve-budget=K]
//                 [--rerank-blend=A] [--simd=scalar|bitparallel|avx2|auto]
//   harmony_match profile <schema>...
//   harmony_match export <schema> (--ddl | --xsd)
//   harmony_match vocab <schema> <schema>... [--threshold=0.35] [--threads=N]
//                 [--serial-merge] [--csv] [--stats] [--trace=out.json]
//   harmony_match serve [--port=N] [--repo=DIR] [--threads=N]
//                 [--queue-depth=N] [--stats] [--metrics-text]
//                 [--stats-interval=MS] [--trace=FILE] [--slow-ms=N]
//                 [--blocking=off|exact|approx] [--pipeline=single|staged]
//                 [--retrieve-budget=K] [--engine-cache-max=N]
//                 [--adaptive-grain] [--simd=scalar|bitparallel|avx2|auto]
//   harmony_match query [--host=ADDR] [--port=N] <action> ...
//     actions: ping | match <src> <tgt> [--by-name] [--threshold=]
//              [--one-to-one] [--refined] [--csv]
//              | search <keywords...> [--k=N] [--fragments]
//              | vocab [term] [--k=N]
//              | stats [--metrics-text] [--delta] | shutdown | badframe
//   harmony_match top [--host=ADDR] [--port=N] [--interval-ms=1000]
//                 [--count=N] [--metrics-text]
//
// top is a live service dashboard: it polls the daemon's stats family with
// interval-delta requests and renders per-family qps / errors / p50 / p99
// alongside queue-wait and the sessions/queue-depth/engine-cache gauges.
// serve --trace=FILE writes a Chrome trace at drain in which every request
// carries a request-scoped span (id + family args) with the engine's spans
// nested beneath it; serve --slow-ms=N logs a structured one-line record
// for requests slower than N ms (0 = every request).
//
// serve runs the resident harmonyd daemon in-process (same code path as the
// harmonyd binary); query is the matching client. A served `query match
// --csv` is byte-identical to a local `match --csv` of the same files: the
// daemon sniffs schema text with the same detector and ships scores as
// IEEE-754 bits.
//
// vocab builds the comprehensive N-way vocabulary: every unordered schema
// pair is matched, finished pairs stream into the sharded union-find merge
// while other pairs are still matching, and the term list plus region
// histogram are printed (--csv dumps the full term table instead).
// --serial-merge selects the single-threaded baseline merge — output is
// bitwise-identical, the flag exists for A/B timing. With fewer than two
// schema paths, vocab runs on a built-in synthetic community.
//
// --stats prints the engine's effort breakdown (per-voter timing) and the
// run's metrics registry to stderr; --stats-interval=MS additionally emits
// one "stats-delta {json}" line to stderr every MS milliseconds containing
// only what changed since the previous emission (the statsd/OTLP-style
// periodic-export pattern); --trace writes a Chrome trace-event JSON of the
// whole run (open in chrome://tracing or ui.perfetto.dev).
//
// Observability is scoped: the run owns a child MetricsRegistry (under the
// process root) and its own Tracer, bundled into a core::EngineContext that
// is threaded through the engine. At exit the child's totals are flushed
// into the root, so nothing is lost.
//
// Schema files are auto-detected by content: SQL DDL, XSD, or the HSC1
// serialization format. Running without arguments demonstrates on built-in
// sample schemata.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_flags.h"
#include "harmony.h"
#include "obs/delta_export.h"

namespace {

using namespace harmony;
// Flag parsing shared with harmonyd (and every subcommand here) lives in
// examples/cli_flags.h — new engine flags go there, not in this file.
using cli::FlagSet;
using cli::FlagValue;
using cli::ParseEngineFlags;
using cli::ParseServeFlags;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Derive the schema name from the file name.
std::string SchemaNameFromPath(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return (slash == std::string::npos) ? path : path.substr(slash + 1);
}

// Format auto-detection by content — service::ParseSchemaAuto is the single
// sniffing implementation, shared with the daemon so a schema shipped to
// harmonyd as text parses to the same tree this CLI builds locally.
Result<schema::Schema> LoadSchema(const std::string& path) {
  HARMONY_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return service::ParseSchemaAuto(text, SchemaNameFromPath(path));
}

// One CSV renderer for both the local match path and served results, so the
// service-smoke gate can diff the two outputs byte for byte.
std::string LinksCsv(const std::vector<service::MatchLink>& links) {
  CsvWriter w;
  w.AppendRow({"source_path", "target_path", "score"});
  for (const auto& link : links) {
    w.AppendRow({link.source_path, link.target_path,
                 StringFormat("%.4f", link.score)});
  }
  return w.ToString();
}

// Shared by match and demo: owns the run's observability scope — a child
// MetricsRegistry under the process root plus a dedicated Tracer — and
// exposes them as an EngineContext for the pipeline. On scope exit it
// writes the trace file, prints the stats report, and flushes the child's
// totals into the root registry. With a positive stats interval an
// obs::PeriodicDeltaExporter emits "stats-delta {json}" lines to stderr:
// each line carries only the change since the previous line, and the
// exporter's Finish() contract guarantees one final line for the tail of
// the run — a short run never loses its last partial interval.
class ObsSession {
 public:
  ObsSession(bool stats, std::string trace_path, long stats_interval_ms)
      : stats_(stats),
        trace_path_(std::move(trace_path)),
        registry_(root_.metrics),
        context_(&registry_, &tracer_) {
    if (!trace_path_.empty()) {
      tracer_.SetThreadName("main");
      tracer_.Start();
    }
    exporter_.emplace(registry_, static_cast<int>(stats_interval_ms));
  }

  ~ObsSession() {
    // This body runs before member destruction, so the exporter must finish
    // here: its final tail delta has to read the registry *before*
    // FlushToParent below drains it to zeros.
    exporter_->Finish();
    if (!trace_path_.empty()) {
      tracer_.Stop();
      if (tracer_.WriteChromeTrace(trace_path_)) {
        std::fprintf(stderr,
                     "trace: %zu events -> %s (open in chrome://tracing)\n",
                     tracer_.event_count(), trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace: cannot write %s\n", trace_path_.c_str());
      }
    }
    if (stats_) {
      std::fputs("\n-- run metrics --\n", stderr);
      std::fputs(registry_.Snapshot().ToText().c_str(), stderr);
    }
    // The run is over: make its totals visible at the process root.
    registry_.FlushToParent();
  }

  bool stats() const { return stats_; }
  const core::EngineContext& context() const { return context_; }

 private:
  bool stats_;
  std::string trace_path_;
  core::EngineContext root_;  // sanctioned gateway to the process globals
  obs::MetricsRegistry registry_;
  obs::Tracer tracer_;
  core::EngineContext context_;
  std::optional<obs::PeriodicDeltaExporter> exporter_;
};

int RunMatch(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: harmony_match match <source> <target> [flags]\n");
    return 2;
  }
  auto source = LoadSchema(args[0]);
  if (!source.ok()) {
    std::fprintf(stderr, "source: %s\n", source.status().ToString().c_str());
    return 1;
  }
  auto target = LoadSchema(args[1]);
  if (!target.ok()) {
    std::fprintf(stderr, "target: %s\n", target.status().ToString().c_str());
    return 1;
  }
  double threshold =
      std::atof(FlagValue(args, "--threshold=", "0.35").c_str());

  ObsSession obs_session(
      FlagSet(args, "--stats"), FlagValue(args, "--trace=", ""),
      std::atol(FlagValue(args, "--stats-interval=", "0").c_str()));

  core::MatchOptions options;
  options.collect_stats = obs_session.stats();
  if (!ParseEngineFlags(args, &options)) return 2;
  // The selection threshold doubles as the blocking (and staged-retrieval)
  // prune threshold, so the accelerated and dense paths select identical
  // links (exact mode).
  options.threshold = threshold;
  core::MatchEngine engine(*source, *target, options, obs_session.context());
  core::MatchMatrix matrix = FlagSet(args, "--refined")
                                 ? engine.ComputeRefinedMatrix()
                                 : engine.ComputeMatrixFor(threshold);
  auto links =
      FlagSet(args, "--one-to-one")
          ? core::SelectGreedyOneToOne(matrix, threshold, engine.context())
          : core::SelectByThreshold(matrix, threshold, engine.context());

  workflow::MatchWorkspace workspace(*source, *target);
  workspace.ImportCandidates(links);

  if (FlagSet(args, "--csv")) {
    std::vector<service::MatchLink> rows;
    rows.reserve(links.size());
    for (const auto& link : links) {
      rows.push_back({source->Path(link.source), target->Path(link.target),
                      link.score});
    }
    std::fputs(LinksCsv(rows).c_str(), stdout);
  } else {
    std::fputs(workflow::RenderMatchView(workspace).c_str(), stdout);
  }

  // The engine report is printed before any remaining fallible step, so an
  // error exit below still ships a complete --stats picture; the child
  // registry itself is flushed to the root by ObsSession's destructor on
  // *every* return path (RAII — audited: no exit() calls bypass it).
  if (obs_session.stats()) {
    std::fputs(core::RenderStatsText(engine.StatsReport()).c_str(), stderr);
  }

  std::string ws_path = FlagValue(args, "--save-workspace=", "");
  if (!ws_path.empty()) {
    Status st = workflow::SaveWorkspace(workspace, ws_path);
    if (!st.ok()) {
      std::fprintf(stderr, "save-workspace: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "workspace saved to %s\n", ws_path.c_str());
  }
  return 0;
}

int RunProfile(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: harmony_match profile <schema>...\n");
    return 2;
  }
  std::vector<analysis::SchemaStats> all;
  for (const auto& path : args) {
    auto s = LoadSchema(path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   s.status().ToString().c_str());
      return 1;
    }
    all.push_back(analysis::ComputeSchemaStats(*s));
    std::fputs(analysis::RenderSchemaStats(all.back()).c_str(), stdout);
  }
  if (all.size() > 1) {
    std::printf("\n%s", analysis::RenderStatsTable(all).c_str());
  }
  return 0;
}

int RunExport(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: harmony_match export <schema> (--ddl|--xsd)\n");
    return 2;
  }
  auto s = LoadSchema(args[0]);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.status().ToString().c_str());
    return 1;
  }
  if (FlagSet(args, "--xsd")) {
    std::fputs(xml::ExportXsd(*s).c_str(), stdout);
  } else {
    std::fputs(sql::ExportDdl(*s).c_str(), stdout);
  }
  return 0;
}

int RunVocab(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  for (const auto& a : args) {
    if (!StartsWith(a, "--")) paths.push_back(a);
  }

  ObsSession obs_session(
      FlagSet(args, "--stats"), FlagValue(args, "--trace=", ""),
      std::atol(FlagValue(args, "--stats-interval=", "0").c_str()));

  // Loaded (or generated) schemata must outlive the vocabulary.
  std::vector<schema::Schema> owned;
  if (paths.size() >= 2) {
    for (const auto& path : paths) {
      auto s = LoadSchema(path);
      if (!s.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     s.status().ToString().c_str());
        return 1;
      }
      owned.push_back(*std::move(s));
    }
  } else {
    std::printf("vocab demo: built-in synthetic community (pass two or more "
                "schema files to use your own)\n\n");
    synth::NWaySpec spec;
    spec.schema_count = 4;
    spec.universe_concepts = 14;
    spec.concepts_per_schema = 9;
    owned = synth::GenerateNWay(spec).schemas;
  }
  std::vector<const schema::Schema*> schemas;
  for (const auto& s : owned) schemas.push_back(&s);
  if (schemas.size() > nway::ComprehensiveVocabulary::kMaxSchemas) {
    std::fprintf(stderr, "vocab: at most %zu schemata supported\n",
                 nway::ComprehensiveVocabulary::kMaxSchemas);
    return 2;
  }

  double threshold =
      std::atof(FlagValue(args, "--threshold=", "0.35").c_str());
  core::MatchOptions match_options;
  if (!ParseEngineFlags(args, &match_options)) return 2;
  nway::NwayOptions nway_options;
  nway_options.parallel_merge = !FlagSet(args, "--serial-merge");
  nway_options.num_threads = match_options.num_threads;

  auto result = nway::MatchAndBuildVocabulary(
      schemas, threshold, /*one_to_one=*/true, match_options, nway_options,
      obs_session.context());
  const auto& vocab = result.vocabulary;

  if (FlagSet(args, "--csv")) {
    std::fputs(vocab.ToCsv().c_str(), stdout);
    return 0;
  }

  size_t links = 0;
  for (const auto& pm : result.matches) links += pm.links.size();
  std::printf("comprehensive vocabulary over %zu schemata\n",
              vocab.schema_count());
  std::printf("  pairwise links : %zu (threshold %.2f)\n", links, threshold);
  std::printf("  terms          : %zu\n", vocab.terms().size());
  std::printf("  full-overlap terms (all %zu schemata): %zu\n",
              vocab.schema_count(), vocab.FullOverlapCount());
  std::printf("\nregion histogram (top 10):\n");
  auto histogram = vocab.RegionHistogram();
  size_t rows = 0;
  for (const auto& [mask, count] : histogram) {
    if (++rows > 10) break;
    std::printf("  %-40s %zu\n", vocab.RegionName(mask).c_str(), count);
  }
  std::printf("\nlargest terms:\n");
  for (size_t t = 0; t < vocab.terms().size() && t < 8; ++t) {
    const auto& term = vocab.term(t);
    std::printf("  %-24s %zu members in %s\n", term.display_name.c_str(),
                term.members.size(),
                vocab.RegionName(term.schema_mask).c_str());
  }
  return 0;
}

int RunServe(const std::vector<std::string>& args) {
  service::ServeOptions options;
  if (!ParseServeFlags(args, &options)) return 2;
  return service::ServeMain(options);
}

// Sends a deliberately hostile length prefix and expects the daemon to
// answer with a framed error instead of allocating or dying — the CLI face
// of the protocol robustness tests, used by the CI smoke session.
int RunBadFrame(service::Client& client) {
  service::WireWriter w;
  w.PutU32(0xFFFFFFFFu);  // body "length": ~4 GiB
  w.PutU8(0x02);
  Status sent = client.SendRaw(w.bytes());
  if (!sent.ok()) {
    std::fprintf(stderr, "badframe send: %s\n", sent.ToString().c_str());
    return 1;
  }
  auto reply = client.ReadReply();
  if (!reply.ok()) {
    std::fprintf(stderr, "badframe: no reply: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  if (static_cast<service::ResponseTag>(reply->tag) !=
      service::ResponseTag::kError) {
    std::fprintf(stderr, "badframe: unexpected reply tag 0x%02x\n",
                 reply->tag);
    return 1;
  }
  std::printf("badframe rejected: %s\n",
              service::DecodeErrorPayload(reply->payload).ToString().c_str());
  return 0;
}

int RunQuery(const std::vector<std::string>& args) {
  std::vector<std::string> words;
  for (const auto& a : args) {
    if (!StartsWith(a, "--")) words.push_back(a);
  }
  if (words.empty()) {
    std::fprintf(stderr,
                 "usage: harmony_match query [--host=ADDR] [--port=N] "
                 "[--max-reply-mb=N] "
                 "(ping | match <src> <tgt> | search <kw...> | vocab [term] "
                 "| stats | shutdown | badframe)\n");
    return 2;
  }
  std::string host = FlagValue(args, "--host=", "127.0.0.1");
  uint16_t port = static_cast<uint16_t>(
      std::atoi(FlagValue(args, "--port=", "7411").c_str()));
  // A low-threshold match over large schemata can legitimately outgrow the
  // client's default 8 MiB reply bound; this raises it without a rebuild.
  size_t max_reply_mb = static_cast<size_t>(
      std::atoi(FlagValue(args, "--max-reply-mb=", "8").c_str()));
  if (max_reply_mb == 0) max_reply_mb = 8;
  auto client = service::Client::Connect(host, port,
                                         max_reply_mb * 1024 * 1024);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  const std::string& action = words[0];

  if (action == "ping") {
    auto reply = client->Ping();
    if (!reply.ok()) {
      std::fprintf(stderr, "ping: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", reply->c_str());
    return 0;
  }
  if (action == "badframe") return RunBadFrame(*client);
  if (action == "match") {
    if (words.size() < 3) {
      std::fprintf(stderr,
                   "usage: harmony_match query match <source> <target> "
                   "[--by-name] [--threshold=0.35] [--one-to-one] "
                   "[--refined] [--csv]\n");
      return 2;
    }
    service::MatchRequest request;
    request.threshold =
        std::atof(FlagValue(args, "--threshold=", "0.35").c_str());
    request.one_to_one = FlagSet(args, "--one-to-one");
    request.refined = FlagSet(args, "--refined");
    request.by_name = FlagSet(args, "--by-name");
    if (request.by_name) {
      request.source_name = words[1];
      request.target_name = words[2];
    } else {
      auto source = ReadFile(words[1]);
      if (!source.ok()) {
        std::fprintf(stderr, "source: %s\n",
                     source.status().ToString().c_str());
        return 1;
      }
      auto target = ReadFile(words[2]);
      if (!target.ok()) {
        std::fprintf(stderr, "target: %s\n",
                     target.status().ToString().c_str());
        return 1;
      }
      request.source_name = SchemaNameFromPath(words[1]);
      request.source_text = *std::move(source);
      request.target_name = SchemaNameFromPath(words[2]);
      request.target_text = *std::move(target);
    }
    auto response = client->Match(request);
    if (!response.ok()) {
      std::fprintf(stderr, "match: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (FlagSet(args, "--csv")) {
      std::fputs(LinksCsv(response->links).c_str(), stdout);
    } else {
      for (const auto& link : response->links) {
        std::printf("%-40s %-40s %.4f\n", link.source_path.c_str(),
                    link.target_path.c_str(), link.score);
      }
      std::printf("%zu links\n", response->links.size());
    }
    return 0;
  }
  if (action == "search") {
    service::SearchRequest request;
    for (size_t i = 1; i < words.size(); ++i) {
      if (!request.query.empty()) request.query += ' ';
      request.query += words[i];
    }
    if (request.query.empty()) {
      std::fprintf(stderr, "usage: harmony_match query search <keywords...>\n");
      return 2;
    }
    request.k = static_cast<uint32_t>(
        std::atoi(FlagValue(args, "--k=", "10").c_str()));
    request.fragments = FlagSet(args, "--fragments");
    auto response = client->Search(request);
    if (!response.ok()) {
      std::fprintf(stderr, "search: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    for (const auto& hit : response->hits) {
      if (hit.element_path.empty()) {
        std::printf("%-32s %.4f\n", hit.schema_name.c_str(), hit.score);
      } else {
        std::printf("%-32s %-40s %.4f\n", hit.schema_name.c_str(),
                    hit.element_path.c_str(), hit.score);
      }
    }
    std::printf("%zu hits\n", response->hits.size());
    return 0;
  }
  if (action == "vocab") {
    service::VocabRequest request;
    if (words.size() > 1) request.term = words[1];
    request.k = static_cast<uint32_t>(
        std::atoi(FlagValue(args, "--k=", "8").c_str()));
    auto reply = client->Vocab(request);
    if (!reply.ok()) {
      std::fprintf(stderr, "vocab: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    std::fputs(reply->c_str(), stdout);
    return 0;
  }
  if (action == "stats") {
    if (FlagSet(args, "--metrics-text") || FlagSet(args, "--delta")) {
      auto response = client->StatsSnapshot(FlagSet(args, "--delta"));
      if (!response.ok()) {
        std::fprintf(stderr, "stats: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      std::fputs(FlagSet(args, "--metrics-text")
                     ? response->snapshot.ToMetricsText().c_str()
                     : response->snapshot.ToText().c_str(),
                 stdout);
      return 0;
    }
    auto reply = client->Stats();
    if (!reply.ok()) {
      std::fprintf(stderr, "stats: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    std::fputs(reply->c_str(), stdout);
    return 0;
  }
  if (action == "shutdown") {
    auto reply = client->Shutdown();
    if (!reply.ok()) {
      std::fprintf(stderr, "shutdown: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", reply->c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown query action '%s'\n", action.c_str());
  return 2;
}

// One frame of the `top` dashboard. All reads tolerate missing metrics
// (nullptr finds render as zero), so a daemon built with HARMONY_OBS=OFF
// still shows the table, just dark.
void RenderTopFrame(const service::StatsResponse& stats) {
  const obs::MetricsSnapshot& s = stats.snapshot;
  double interval_s = static_cast<double>(stats.interval_ns) / 1e9;
  if (interval_s <= 0) interval_s = 1e-9;
  auto counter = [&s](const std::string& name) -> uint64_t {
    const obs::CounterSnapshot* c = s.FindCounter(name);
    return c != nullptr ? c->value : 0;
  };
  auto gauge = [&s](const std::string& name) -> long long {
    const obs::GaugeSnapshot* g = s.FindGauge(name);
    return g != nullptr ? g->value : 0;
  };
  std::printf(
      "interval=%.1fs  sessions=%lld  queue_depth=%lld  engine_cache=%lld  "
      "rejected=%llu\n",
      interval_s, gauge("service.sessions"), gauge("service.queue_depth"),
      gauge("service.engine_cache.size"),
      static_cast<unsigned long long>(counter("service.rejected")));
  std::printf("%-10s %10s %10s %12s %12s\n", "family", "qps", "errors",
              "p50(us)", "p99(us)");
  for (size_t f = 0; f < service::kRequestFamilies; ++f) {
    const char* name = service::RequestFamilyName(f);
    uint64_t requests = counter(std::string("service.requests.") + name);
    uint64_t errors = counter(std::string("service.errors.") + name);
    const obs::HistogramSnapshot* h =
        s.FindHistogram(std::string("service.handler_ns.") + name);
    double p50_us =
        h != nullptr ? static_cast<double>(h->PercentileUpperBound(0.50)) / 1e3
                     : 0.0;
    double p99_us =
        h != nullptr ? static_cast<double>(h->PercentileUpperBound(0.99)) / 1e3
                     : 0.0;
    std::printf("%-10s %10.1f %10llu %12.0f %12.0f\n", name,
                static_cast<double>(requests) / interval_s,
                static_cast<unsigned long long>(errors), p50_us, p99_us);
  }
  const obs::HistogramSnapshot* qw = s.FindHistogram("service.queue_wait_ns");
  if (qw != nullptr && qw->count > 0) {
    std::printf("queue_wait: count=%llu p50<=%.0fus p99<=%.0fus\n",
                static_cast<unsigned long long>(qw->count),
                static_cast<double>(qw->PercentileUpperBound(0.50)) / 1e3,
                static_cast<double>(qw->PercentileUpperBound(0.99)) / 1e3);
  }
}

// Live dashboard over a running daemon: polls the stats family with delta
// requests (the server keeps the baseline, so consecutive polls tile the
// timeline) and renders rates + latency quantiles per request family.
// Note the delta baseline is shared per server, so two concurrent delta
// pollers split the traffic between their windows.
int RunTop(const std::vector<std::string>& args) {
  std::string host = FlagValue(args, "--host=", "127.0.0.1");
  uint16_t port = static_cast<uint16_t>(
      std::atoi(FlagValue(args, "--port=", "7411").c_str()));
  long interval_ms =
      std::atol(FlagValue(args, "--interval-ms=", "1000").c_str());
  if (interval_ms <= 0) interval_ms = 1000;
  // 0 = run until interrupted; a positive count makes top scriptable (the
  // smoke gate uses --count=2).
  long count = std::atol(FlagValue(args, "--count=", "0").c_str());
  bool metrics_text = FlagSet(args, "--metrics-text");

  auto client = service::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }
  bool tty = ::isatty(STDOUT_FILENO) != 0;
  for (long frame = 0; count <= 0 || frame < count; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    auto stats = client->StatsSnapshot(/*delta=*/true);
    if (!stats.ok()) {
      std::fprintf(stderr, "top: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    if (tty && frame > 0) std::fputs("\033[H\033[2J", stdout);
    std::printf("harmonyd %s:%u — top frame %ld\n", host.c_str(), port,
                frame + 1);
    if (metrics_text) {
      std::fputs(stats->snapshot.ToMetricsText().c_str(), stdout);
    } else {
      RenderTopFrame(*stats);
    }
    std::fflush(stdout);
  }
  return 0;
}

int RunDemo(const std::vector<std::string>& args) {
  std::printf("harmony_match demo: matching two built-in sample schemata\n\n");
  ObsSession obs_session(
      FlagSet(args, "--stats"), FlagValue(args, "--trace=", ""),
      std::atol(FlagValue(args, "--stats-interval=", "0").c_str()));
  synth::PairSpec spec;
  spec.source_concepts = 6;
  spec.target_concepts = 5;
  spec.shared_concepts = 3;
  auto pair = synth::GeneratePair(spec);
  core::MatchOptions options;
  options.collect_stats = obs_session.stats();
  options.num_threads = static_cast<size_t>(
      std::atoi(FlagValue(args, "--threads=", "0").c_str()));
  core::MatchEngine engine(pair.source, pair.target, options,
                           obs_session.context());
  auto links = core::SelectGreedyOneToOne(engine.ComputeRefinedMatrix(), 0.35,
                                          engine.context());
  workflow::MatchWorkspace ws(pair.source, pair.target);
  ws.ImportCandidates(links);
  workflow::MatchViewOptions view;
  view.max_rows = 15;
  std::fputs(workflow::RenderMatchView(ws, view).c_str(), stdout);
  std::printf("\nTry: harmony_match match <a.sql> <b.xsd> --one-to-one --refined\n");
  if (obs_session.stats()) {
    std::fputs(core::RenderStatsText(engine.StatsReport()).c_str(), stderr);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // No command (just flags, or nothing) runs the demo.
  if (args.empty() || StartsWith(args[0], "--")) return RunDemo(args);
  std::string command = args[0];
  args.erase(args.begin());
  if (command == "match") return RunMatch(args);
  if (command == "profile") return RunProfile(args);
  if (command == "export") return RunExport(args);
  if (command == "vocab") return RunVocab(args);
  if (command == "serve") return RunServe(args);
  if (command == "query") return RunQuery(args);
  if (command == "top") return RunTop(args);
  std::fprintf(stderr,
               "unknown command '%s' (expected match | profile | export | "
               "vocab | serve | query | top)\n",
               command.c_str());
  return 2;
}
