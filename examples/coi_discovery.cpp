// Community-of-interest discovery (paper §2 and §5): cluster an enterprise's
// schema repository to propose COIs, then build the comprehensive vocabulary
// of the tightest proposed community — the two "larger-N" operations the
// paper's research agenda calls for.
//
//   $ ./coi_discovery

#include <cstdio>

#include "analysis/clustering.h"
#include "analysis/distance.h"
#include "analysis/schema_stats.h"
#include "nway/vocabulary_builder.h"
#include "synth/generator.h"

int main() {
  using namespace harmony;

  // An enterprise repository: 4 planted families of 5 schemata each.
  synth::RepositorySpec spec;
  spec.families = 4;
  spec.schemas_per_family = 5;
  spec.concepts_per_schema = 10;
  spec.family_pool_concepts = 14;
  auto population = synth::GenerateRepository(spec);
  std::printf("Repository: %zu schemata\n", population.size());

  std::vector<const schema::Schema*> schemas;
  std::vector<analysis::SchemaStats> fleet;
  for (const auto& rs : population) {
    schemas.push_back(&rs.schema);
    fleet.push_back(analysis::ComputeSchemaStats(rs.schema));
  }
  // The CIO's fleet inventory first.
  std::printf("%s\n", analysis::RenderStatsTable(fleet).c_str());

  // Fast approximate pairwise distances (token-profile cosine).
  analysis::TokenProfileIndex index(schemas);
  auto distances = index.DistanceMatrix();

  auto clustering = analysis::AgglomerativeCluster(
      distances, schemas.size(), /*num_clusters=*/4,
      /*max_merge_distance=*/1.0, analysis::Linkage::kAverage);
  std::vector<size_t> reference;
  for (const auto& rs : population) reference.push_back(rs.family);
  std::printf("Clustering at k=4: purity vs planted families = %.3f\n",
              analysis::ClusterPurity(clustering.assignment, reference));

  // How the repository agglomerated, as a dendrogram.
  std::vector<std::string> names;
  for (const auto* s : schemas) names.push_back(s->name());
  std::printf("\n%s\n",
              analysis::RenderDendrogram(clustering, names).c_str());

  auto cois = analysis::ProposeCois(distances, schemas.size(),
                                    clustering.assignment, 2, 0.9);
  std::printf("Proposed COIs: %zu\n", cois.size());
  for (size_t i = 0; i < cois.size(); ++i) {
    std::printf("  COI %zu (mean internal distance %.3f): ", i,
                cois[i].mean_internal_distance);
    for (size_t m : cois[i].members) std::printf("%s ", schemas[m]->name().c_str());
    std::printf("\n");
  }
  if (cois.empty()) return 0;

  // Comprehensive vocabulary for the tightest COI.
  std::vector<const schema::Schema*> members;
  for (size_t m : cois[0].members) members.push_back(schemas[m]);
  if (members.size() > 5) members.resize(5);  // Keep the demo quick.
  auto matches = nway::MatchAllPairs(members, /*threshold=*/0.45);
  nway::ComprehensiveVocabulary vocab(members, matches);

  std::printf("\nComprehensive vocabulary of COI 0 (%zu schemata, %zu terms):\n",
              members.size(), vocab.terms().size());
  std::printf("%-24s %8s\n", "region", "terms");
  for (const auto& [mask, count] : vocab.RegionHistogram()) {
    std::printf("%-24s %8zu\n", vocab.RegionName(mask).c_str(), count);
  }
  std::printf("Terms shared by the whole community: %zu\n",
              vocab.FullOverlapCount());
  return 0;
}
