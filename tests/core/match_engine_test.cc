#include "core/match_engine.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::core {
namespace {

using schema::DataType;

schema::Schema MakeSa() {
  schema::RelationalBuilder b("SA");
  auto person = b.Table("PERSON", "A person known to the system");
  b.Column(person, "LAST_NAME", DataType::kString, "The surname of the person");
  b.Column(person, "BIRTH_DT", DataType::kDate,
           "The date on which the person was born");
  auto vehicle = b.Table("VEHICLE", "A ground vehicle");
  b.Column(vehicle, "VIN", DataType::kString,
           "Vehicle identification number assigned by the maker");
  b.Column(vehicle, "FUEL_CD", DataType::kString, "Coded fuel category");
  return std::move(b).Build();
}

schema::Schema MakeSb() {
  schema::XmlBuilder b("SB");
  auto person = b.ComplexType("Person", "An individual tracked by the system");
  b.Element(person, "LastName", DataType::kString, "Family name of the person");
  b.Element(person, "BirthDate", DataType::kDate, "Date the person was born");
  auto veh = b.ComplexType("Conveyance", "A conveyance used for transport");
  b.Element(veh, "VehicleIdentificationNumber", DataType::kString,
            "Identification number of the vehicle from the manufacturer");
  return std::move(b).Build();
}

class MatchEngineTest : public ::testing::Test {
 protected:
  MatchEngineTest() : sa_(MakeSa()), sb_(MakeSb()), engine_(sa_, sb_) {}

  schema::ElementId Sa(const std::string& p) { return *sa_.FindByPath(p); }
  schema::ElementId Sb(const std::string& p) { return *sb_.FindByPath(p); }

  schema::Schema sa_;
  schema::Schema sb_;
  MatchEngine engine_;
};

TEST_F(MatchEngineTest, MatrixCoversAllPairs) {
  MatchMatrix m = engine_.ComputeMatrix();
  EXPECT_EQ(m.rows(), sa_.element_count());
  EXPECT_EQ(m.cols(), sb_.element_count());
}

TEST_F(MatchEngineTest, TrueMatchesOutscoreDecoys) {
  MatchMatrix m = engine_.ComputeMatrix();
  EXPECT_GT(m.Get(Sa("PERSON.LAST_NAME"), Sb("Person.LastName")),
            m.Get(Sa("PERSON.LAST_NAME"), Sb("Conveyance.VehicleIdentificationNumber")));
  EXPECT_GT(m.Get(Sa("PERSON.BIRTH_DT"), Sb("Person.BirthDate")),
            m.Get(Sa("PERSON.BIRTH_DT"), Sb("Person.LastName")));
  EXPECT_GT(m.Get(Sa("VEHICLE.VIN"), Sb("Conveyance.VehicleIdentificationNumber")),
            m.Get(Sa("VEHICLE.VIN"), Sb("Person.LastName")));
}

TEST_F(MatchEngineTest, ScoresWithinOpenInterval) {
  MatchMatrix m = engine_.ComputeMatrix();
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      EXPECT_GT(m.GetByIndex(r, c), -1.0);
      EXPECT_LT(m.GetByIndex(r, c), 1.0);
    }
  }
}

TEST_F(MatchEngineTest, MatchSelectsExpectedPairs) {
  auto links = engine_.Match();
  ASSERT_FALSE(links.empty());
  // The top link should be a true pair.
  bool top_is_true =
      (links[0].source == Sa("PERSON.LAST_NAME") &&
       links[0].target == Sb("Person.LastName")) ||
      (links[0].source == Sa("PERSON.BIRTH_DT") &&
       links[0].target == Sb("Person.BirthDate")) ||
      (links[0].source == Sa("PERSON") && links[0].target == Sb("Person")) ||
      (links[0].source == Sa("VEHICLE.VIN") &&
       links[0].target == Sb("Conveyance.VehicleIdentificationNumber"));
  EXPECT_TRUE(top_is_true) << sa_.Path(links[0].source) << " <-> "
                           << sb_.Path(links[0].target);
}

TEST_F(MatchEngineTest, SubtreeMatchRestrictsRows) {
  MatchMatrix m = engine_.MatchSubtree(Sa("VEHICLE"));
  EXPECT_EQ(m.rows(), 3u);  // VEHICLE, VIN, FUEL_CD.
  EXPECT_EQ(m.cols(), sb_.element_count());
  EXPECT_TRUE(m.HasSource(Sa("VEHICLE.VIN")));
  EXPECT_FALSE(m.HasSource(Sa("PERSON.LAST_NAME")));
}

TEST_F(MatchEngineTest, SubtreeScoresAgreeWithFullMatrix) {
  MatchMatrix full = engine_.ComputeMatrix();
  MatchMatrix sub = engine_.MatchSubtree(Sa("VEHICLE"));
  for (schema::ElementId s : sa_.SubtreeIds(Sa("VEHICLE"))) {
    for (schema::ElementId t : sb_.AllElementIds()) {
      EXPECT_DOUBLE_EQ(sub.Get(s, t), full.Get(s, t));
    }
  }
}

TEST_F(MatchEngineTest, FilteredMatrixRespectsNodeFilters) {
  NodeFilter tables_only;
  tables_only.WithMaxDepth(1);
  MatchMatrix m = engine_.ComputeMatrix(tables_only, tables_only);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
}

TEST_F(MatchEngineTest, ExplainListsAllVoters) {
  VoteBreakdown b = engine_.Explain(Sa("PERSON.LAST_NAME"), Sb("Person.LastName"));
  EXPECT_EQ(b.voter_names.size(), 6u);
  EXPECT_EQ(b.scores.size(), 6u);
  EXPECT_GT(b.merged, 0.2);
  EXPECT_DOUBLE_EQ(b.merged,
                   engine_.ScorePair(Sa("PERSON.LAST_NAME"), Sb("Person.LastName")));
}

TEST_F(MatchEngineTest, ScorePairMatchesMatrixCell) {
  MatchMatrix m = engine_.ComputeMatrix();
  for (schema::ElementId s : sa_.AllElementIds()) {
    for (schema::ElementId t : sb_.AllElementIds()) {
      EXPECT_DOUBLE_EQ(engine_.ScorePair(s, t), m.Get(s, t));
    }
  }
}

TEST_F(MatchEngineTest, RefinedMatrixKeepsTruePairsOnTop) {
  MatchMatrix refined = engine_.ComputeRefinedMatrix();
  EXPECT_EQ(refined.rows(), sa_.element_count());
  EXPECT_EQ(refined.cols(), sb_.element_count());
  EXPECT_GT(refined.Get(Sa("PERSON.LAST_NAME"), Sb("Person.LastName")),
            refined.Get(Sa("PERSON.LAST_NAME"),
                        Sb("Conveyance.VehicleIdentificationNumber")));
  EXPECT_GT(refined.Get(Sa("PERSON"), Sb("Person")),
            refined.Get(Sa("PERSON"), Sb("Conveyance")));
}

TEST(MatchEngineOptionsTest, DisabledVotersChangeScores) {
  schema::Schema sa = MakeSa();
  schema::Schema sb = MakeSb();
  MatchOptions no_docs;
  no_docs.voters.documentation_weight = 0.0;
  MatchEngine with_docs(sa, sb);
  MatchEngine without_docs(sa, sb, no_docs);
  auto s = *sa.FindByPath("PERSON.BIRTH_DT");
  auto t = *sb.FindByPath("Person.BirthDate");
  EXPECT_NE(with_docs.ScorePair(s, t), without_docs.ScorePair(s, t));
}

TEST(MatchEngineOptionsTest, EmptySchemasYieldEmptyMatrix) {
  schema::Schema a("A"), b("B");
  MatchEngine engine(a, b);
  MatchMatrix m = engine.ComputeMatrix();
  EXPECT_EQ(m.pair_count(), 0u);
  EXPECT_TRUE(engine.Match().empty());
}

}  // namespace
}  // namespace harmony::core
