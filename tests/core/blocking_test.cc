// Candidate-pair blocking (core/blocking.h): the property suite pinning the
// kExact contract — selected matches bitwise-identical to the dense kernel
// across seeds, thread counts, and grains — plus the admissibility property
// the contract rests on (CellBound >= dense score on every cell), the
// exact-threshold boundary regression (a cell scoring exactly at threshold
// is never pruned: the keep test is >=, matching SelectByThreshold), and
// the kApproximate recall floor.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/blocking.h"
#include "core/match_engine.h"
#include "core/selection.h"
#include "synth/generator.h"

namespace harmony {
namespace {

synth::GeneratedPair MakePair(uint64_t seed) {
  synth::PairSpec spec;
  spec.seed = seed;
  spec.source_concepts = 10;
  spec.target_concepts = 8;
  spec.shared_concepts = 4;
  return synth::GeneratePair(spec);
}

core::MatchOptions DenseOptions() {
  core::MatchOptions options;
  options.num_threads = 1;
  return options;
}

core::MatchOptions BlockedOptions(core::BlockingMode mode, size_t threads,
                                  size_t grain) {
  core::MatchOptions options;
  options.blocking.mode = mode;
  options.num_threads = threads;
  options.grain = grain;
  return options;
}

// Selected matches must agree pair-for-pair INCLUDING scores —
// Correspondence::operator== ignores the score, and "bitwise-identical" is
// precisely the claim under test.
void ExpectSameSelection(const std::vector<core::Correspondence>& dense,
                         const std::vector<core::Correspondence>& blocked) {
  ASSERT_EQ(dense.size(), blocked.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(dense[i].source, blocked[i].source) << "match " << i;
    EXPECT_EQ(dense[i].target, blocked[i].target) << "match " << i;
    EXPECT_EQ(dense[i].score, blocked[i].score) << "match " << i;
  }
}

// The 20-seed property: for every seed, thread count, and grain, exact-mode
// blocking selects bitwise-identical matches to the dense kernel at the
// prune threshold.
TEST(BlockingTest, ExactModeSelectionIdenticalToDenseAcrossSeeds) {
  const size_t kThreadCounts[] = {1, 2, 4};
  const size_t kGrains[] = {0, 1, 3};
  for (uint64_t seed = 9000; seed < 9020; ++seed) {
    auto pair = MakePair(seed);
    core::MatchOptions dense_options = DenseOptions();
    core::MatchEngine dense(pair.source, pair.target, dense_options);
    core::MatchMatrix dense_matrix = dense.ComputeMatrix();
    auto dense_selected =
        core::SelectByThreshold(dense_matrix, dense_options.threshold);

    for (size_t threads : kThreadCounts) {
      for (size_t grain : kGrains) {
        core::MatchOptions options =
            BlockedOptions(core::BlockingMode::kExact, threads, grain);
        core::MatchEngine blocked(pair.source, pair.target, options);
        core::MatchMatrix matrix = blocked.ComputeMatrix();
        auto selected = core::SelectByThreshold(matrix, options.threshold);
        SCOPED_TRACE(::testing::Message() << "seed " << seed << " threads "
                                          << threads << " grain " << grain);
        ExpectSameSelection(dense_selected, selected);
      }
    }
  }
}

// Stronger than selection equality: every cell the blocked kernel kept is
// bitwise equal to the dense score, and every cell it pruned (left at the
// 0.0 sentinel) is provably below threshold in the dense matrix. Together
// these are the full admissibility contract.
TEST(BlockingTest, KeptCellsExactPrunedCellsBelowThreshold) {
  auto pair = MakePair(9100);
  core::MatchOptions dense_options = DenseOptions();
  core::MatchEngine dense(pair.source, pair.target, dense_options);
  core::MatchMatrix dense_matrix = dense.ComputeMatrix();

  core::MatchOptions options =
      BlockedOptions(core::BlockingMode::kExact, 1, 0);
  core::MatchEngine blocked(pair.source, pair.target, options);
  core::MatchMatrix matrix = blocked.ComputeMatrix();

  ASSERT_EQ(dense_matrix.rows(), matrix.rows());
  ASSERT_EQ(dense_matrix.cols(), matrix.cols());
  size_t pruned = 0;
  for (size_t r = 0; r < matrix.rows(); ++r) {
    for (size_t c = 0; c < matrix.cols(); ++c) {
      double b = matrix.GetByIndex(r, c);
      double d = dense_matrix.GetByIndex(r, c);
      if (b == d) continue;
      // Any disagreement must be a pruned sentinel over a sub-threshold
      // dense score.
      EXPECT_EQ(b, 0.0) << "cell (" << r << ", " << c << ")";
      EXPECT_LT(d, options.threshold) << "cell (" << r << ", " << c << ")";
      ++pruned;
    }
  }
  // The synth pair has mostly-unrelated cells; blocking that prunes nothing
  // would make this test vacuous.
  EXPECT_GT(pruned, 0u);

  core::EngineStats stats = blocked.StatsReport();
  EXPECT_EQ(stats.cells_scored + stats.cells_pruned,
            matrix.rows() * matrix.cols());
  EXPECT_GT(stats.cells_pruned, 0u);
}

// The admissibility property the kernel rests on, checked directly against
// the index: CellBound dominates the dense merged score on every cell.
TEST(BlockingTest, CellBoundDominatesDenseScore) {
  for (uint64_t seed : {9200u, 9201u, 9202u}) {
    auto pair = MakePair(seed);
    core::MatchOptions options = DenseOptions();
    core::MatchEngine engine(pair.source, pair.target, options);
    core::BlockingOptions bopts;
    bopts.mode = core::BlockingMode::kExact;
    core::BlockingIndex index(engine.profiles(), options.voters,
                              options.merger, bopts, options.threshold);
    ASSERT_TRUE(index.active());
    auto scratch = index.MakeRowScratch();
    core::MatchMatrix matrix = engine.ComputeMatrix();
    for (size_t r = 0; r < matrix.rows(); ++r) {
      for (size_t c = 0; c < matrix.cols(); ++c) {
        schema::ElementId s = matrix.SourceIdAt(r);
        schema::ElementId t = matrix.TargetIdAt(c);
        double bound = index.CellBound(s, t, scratch);
        double score = matrix.GetByIndex(r, c);
        // Tiny slack for floating-point accumulation-order noise; the
        // kernel applies the same slack before pruning.
        EXPECT_GE(bound + 1e-9, score)
            << "seed " << seed << " cell (" << r << ", " << c << ")";
      }
    }
  }
}

// Satellite fix: threshold boundary semantics. A cell whose dense score
// lands EXACTLY on the threshold is selected by SelectByThreshold (>=), so
// the blocking cut must keep it too — plant the threshold at an observed
// score and assert the cell survives end to end.
TEST(BlockingTest, ExactThresholdCellIsNeverPruned) {
  auto pair = MakePair(9300);
  core::MatchEngine probe(pair.source, pair.target, DenseOptions());
  core::MatchMatrix dense_matrix = probe.ComputeMatrix();

  // The best-scoring cell: its exact double becomes the planted threshold.
  double best = 0.0;
  size_t best_r = 0, best_c = 0;
  for (size_t r = 0; r < dense_matrix.rows(); ++r) {
    for (size_t c = 0; c < dense_matrix.cols(); ++c) {
      if (dense_matrix.GetByIndex(r, c) > best) {
        best = dense_matrix.GetByIndex(r, c);
        best_r = r;
        best_c = c;
      }
    }
  }
  ASSERT_GT(best, 0.0);

  core::MatchOptions options =
      BlockedOptions(core::BlockingMode::kExact, 1, 0);
  options.threshold = best;  // exact-threshold cell by construction
  core::MatchEngine blocked(pair.source, pair.target, options);
  core::MatchMatrix matrix = blocked.ComputeMatrix();
  EXPECT_EQ(matrix.GetByIndex(best_r, best_c), best) << "cell was pruned";

  auto selected = core::SelectByThreshold(matrix, best);
  bool found = false;
  for (const auto& match : selected) {
    if (match.source == dense_matrix.SourceIdAt(best_r) &&
        match.target == dense_matrix.TargetIdAt(best_c)) {
      found = true;
      EXPECT_EQ(match.score, best);
    }
  }
  EXPECT_TRUE(found) << "exact-threshold cell missing from selection";
}

// ComputeMatrixFor: at or above the prune threshold the blocked kernel is
// valid (and used — cells_pruned grows); below it the engine must fall back
// to the dense kernel so sub-threshold cells the caller will select are
// present.
TEST(BlockingTest, ComputeMatrixForFallsBackBelowPruneThreshold) {
  auto pair = MakePair(9400);
  core::MatchOptions options =
      BlockedOptions(core::BlockingMode::kExact, 1, 0);
  core::MatchEngine blocked(pair.source, pair.target, options);
  core::MatchEngine dense(pair.source, pair.target, DenseOptions());
  core::MatchMatrix dense_matrix = dense.ComputeMatrix();

  // Below the prune threshold: dense fallback, every cell exact.
  core::MatchMatrix low = blocked.ComputeMatrixFor(0.05);
  for (size_t r = 0; r < low.rows(); ++r) {
    for (size_t c = 0; c < low.cols(); ++c) {
      EXPECT_EQ(low.GetByIndex(r, c), dense_matrix.GetByIndex(r, c));
    }
  }
  EXPECT_EQ(blocked.StatsReport().cells_pruned, 0u);

  // At the engine threshold: the blocked kernel runs.
  core::MatchMatrix at = blocked.ComputeMatrixFor(options.threshold);
  auto dense_selected =
      core::SelectByThreshold(dense_matrix, options.threshold);
  auto blocked_selected = core::SelectByThreshold(at, options.threshold);
  ExpectSameSelection(dense_selected, blocked_selected);
  EXPECT_GT(blocked.StatsReport().cells_pruned, 0u);
}

// Refined matrices must ignore blocking entirely: propagation reads
// sub-threshold structure, so the base matrix has to be dense.
TEST(BlockingTest, RefinedMatrixUnaffectedByBlocking) {
  auto pair = MakePair(9500);
  core::MatchOptions dense_options = DenseOptions();
  dense_options.propagation.iterations = 2;
  core::MatchOptions options =
      BlockedOptions(core::BlockingMode::kExact, 1, 0);
  options.propagation.iterations = 2;
  core::MatchEngine dense(pair.source, pair.target, dense_options);
  core::MatchEngine blocked(pair.source, pair.target, options);
  core::MatchMatrix a = dense.ComputeRefinedMatrix();
  core::MatchMatrix b = blocked.ComputeRefinedMatrix();
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a.GetByIndex(r, c), b.GetByIndex(r, c));
    }
  }
}

// Approximate mode trades exactness for sub-quadratic candidate generation;
// the contract is a recall floor over the dense selection, not equality.
// Measured recall on these synth pairs is 1.0 for most seeds; the floor
// leaves headroom for the soft-only matches the mode can legitimately miss.
TEST(BlockingTest, ApproximateModeRecallFloor) {
  size_t dense_total = 0;
  size_t recalled = 0;
  for (uint64_t seed = 9600; seed < 9610; ++seed) {
    auto pair = MakePair(seed);
    core::MatchOptions dense_options = DenseOptions();
    core::MatchEngine dense(pair.source, pair.target, dense_options);
    auto dense_selected = core::SelectByThreshold(dense.ComputeMatrix(),
                                                  dense_options.threshold);
    core::MatchOptions options =
        BlockedOptions(core::BlockingMode::kApproximate, 1, 0);
    core::MatchEngine approx(pair.source, pair.target, options);
    auto approx_selected =
        core::SelectByThreshold(approx.ComputeMatrix(), options.threshold);

    dense_total += dense_selected.size();
    for (const auto& want : dense_selected) {
      for (const auto& got : approx_selected) {
        if (got.source == want.source && got.target == want.target) {
          // A recalled pair is also exact: kept cells are scored by the
          // same kernel, approximate mode only generates candidates
          // differently.
          EXPECT_EQ(got.score, want.score);
          ++recalled;
          break;
        }
      }
    }
  }
  ASSERT_GT(dense_total, 0u);
  EXPECT_GE(static_cast<double>(recalled),
            0.85 * static_cast<double>(dense_total))
      << "approximate-mode recall " << recalled << "/" << dense_total;
}

// Blocking deactivates when the prune threshold is not positive: a 0.0
// sentinel would itself be selectable at threshold 0, so there is no valid
// cut. The engine must fall back to dense rather than prune.
TEST(BlockingTest, NonPositiveThresholdDeactivatesBlocking) {
  auto pair = MakePair(9700);
  core::MatchOptions options =
      BlockedOptions(core::BlockingMode::kExact, 1, 0);
  options.threshold = 0.0;
  core::MatchEngine engine(pair.source, pair.target, options);
  engine.ComputeMatrix();
  EXPECT_EQ(engine.StatsReport().cells_pruned, 0u);
}

}  // namespace
}  // namespace harmony
