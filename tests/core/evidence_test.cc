#include "core/evidence.h"

#include <gtest/gtest.h>

namespace harmony::core {
namespace {

TEST(EvidenceWeightTest, ZeroEvidenceIsZeroWeight) {
  EXPECT_DOUBLE_EQ(EvidenceWeight(0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(EvidenceWeight(-1.0, 4.0), 0.0);
}

TEST(EvidenceWeightTest, HalfEvidenceGivesHalfWeight) {
  EXPECT_DOUBLE_EQ(EvidenceWeight(4.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(EvidenceWeight(8.0, 8.0), 0.5);
}

TEST(EvidenceWeightTest, MonotoneAndBoundedBelowOne) {
  double prev = 0.0;
  for (double n = 1.0; n < 1000.0; n *= 2.0) {
    double w = EvidenceWeight(n, 4.0);
    EXPECT_GT(w, prev);
    EXPECT_LT(w, 1.0);
    prev = w;
  }
  EXPECT_GT(prev, 0.98);  // Approaches 1 with abundant evidence.
}

TEST(EvidenceConfidenceTest, NoEvidenceMeansCompleteUncertainty) {
  EXPECT_DOUBLE_EQ(EvidenceWeightedConfidence({1.0, 0.0}, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(EvidenceWeightedConfidence({0.0, 0.0}, 4.0), 0.0);
}

TEST(EvidenceConfidenceTest, PushedTowardPlusOneWithEvidence) {
  // Perfect ratio: confidence grows toward +1 as evidence accumulates —
  // the paper's "pushed towards −1 or +1".
  double thin = EvidenceWeightedConfidence({1.0, 1.0}, 4.0);
  double thick = EvidenceWeightedConfidence({1.0, 100.0}, 4.0);
  EXPECT_GT(thin, 0.0);
  EXPECT_GT(thick, thin);
  EXPECT_GT(thick, 0.9);
  EXPECT_LT(thick, 1.0);
}

TEST(EvidenceConfidenceTest, PushedTowardMinusOneWithEvidence) {
  double thin = EvidenceWeightedConfidence({0.0, 1.0}, 4.0);
  double thick = EvidenceWeightedConfidence({0.0, 100.0}, 4.0);
  EXPECT_LT(thin, 0.0);
  EXPECT_LT(thick, thin);
  EXPECT_LT(thick, -0.9);
  EXPECT_GT(thick, -1.0);
}

TEST(EvidenceConfidenceTest, HalfRatioIsNeutralRegardlessOfEvidence) {
  EXPECT_DOUBLE_EQ(EvidenceWeightedConfidence({0.5, 100.0}, 4.0), 0.0);
}

TEST(EvidenceConfidenceTest, RatioClampedToUnitInterval) {
  EXPECT_LE(EvidenceWeightedConfidence({1.5, 10.0}, 4.0), 1.0);
  EXPECT_GE(EvidenceWeightedConfidence({-0.5, 10.0}, 4.0), -1.0);
}

TEST(RatioOnlyTest, IgnoresEvidenceVolume) {
  EXPECT_DOUBLE_EQ(RatioOnlyConfidence({1.0, 1.0}),
                   RatioOnlyConfidence({1.0, 1000.0}));
  EXPECT_DOUBLE_EQ(RatioOnlyConfidence({1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(RatioOnlyConfidence({0.25, 5.0}), -0.5);
}

TEST(RatioOnlyTest, AbstentionStillAbstains) {
  EXPECT_DOUBLE_EQ(RatioOnlyConfidence({1.0, 0.0}), 0.0);
}

// Property sweep: confidence is monotone in ratio for fixed evidence.
class ConfidenceMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(ConfidenceMonotoneTest, MonotoneInRatio) {
  double evidence = GetParam();
  double prev = -1.1;
  for (double r = 0.0; r <= 1.0; r += 0.1) {
    double c = EvidenceWeightedConfidence({r, evidence}, 4.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(EvidenceLevels, ConfidenceMonotoneTest,
                         ::testing::Values(0.5, 1.0, 4.0, 16.0, 256.0));

}  // namespace
}  // namespace harmony::core
