#include "core/selection.h"

#include <gtest/gtest.h>

#include <set>

namespace harmony::core {
namespace {

MatchMatrix MakeMatrix() {
  MatchMatrix m({1, 2, 3}, {10, 11, 12});
  // Row-major scores:
  //        10    11    12
  //  1    0.9   0.8   0.1
  //  2    0.85  0.4   0.3
  //  3    0.2   0.5   0.45
  m.Set(1, 10, 0.9);
  m.Set(1, 11, 0.8);
  m.Set(1, 12, 0.1);
  m.Set(2, 10, 0.85);
  m.Set(2, 11, 0.4);
  m.Set(2, 12, 0.3);
  m.Set(3, 10, 0.2);
  m.Set(3, 11, 0.5);
  m.Set(3, 12, 0.45);
  return m;
}

TEST(SelectByThresholdTest, ReturnsAllAboveSorted) {
  auto sel = SelectByThreshold(MakeMatrix(), 0.5);
  ASSERT_EQ(sel.size(), 4u);
  EXPECT_DOUBLE_EQ(sel[0].score, 0.9);
  EXPECT_DOUBLE_EQ(sel[3].score, 0.5);
}

TEST(SelectTopKTest, RespectsKAndThreshold) {
  auto sel = SelectTopKPerSource(MakeMatrix(), 1, 0.0);
  ASSERT_EQ(sel.size(), 3u);
  std::set<schema::ElementId> sources;
  for (auto& c : sel) sources.insert(c.source);
  EXPECT_EQ(sources.size(), 3u);

  auto sel2 = SelectTopKPerSource(MakeMatrix(), 2, 0.45);
  // Row 1: 0.9, 0.8; row 2: 0.85; row 3: 0.5, 0.45.
  EXPECT_EQ(sel2.size(), 5u);
}

TEST(SelectGreedyTest, OneToOneAndGreedyOrder) {
  auto sel = SelectGreedyOneToOne(MakeMatrix(), 0.0);
  ASSERT_EQ(sel.size(), 3u);
  // 0.9 (1,10) first, then 2's best remaining is 0.4 (2,11)?  No: sorted
  // candidates are 0.9(1,10), 0.85(2,10)✗, 0.8(1,11)✗, 0.5(3,11), 0.45(3,12)✗,
  // 0.4(2,11)✗, 0.3(2,12).
  EXPECT_EQ(sel[0].source, 1u);
  EXPECT_EQ(sel[0].target, 10u);
  std::set<schema::ElementId> sources, targets;
  for (auto& c : sel) {
    EXPECT_TRUE(sources.insert(c.source).second) << "source reused";
    EXPECT_TRUE(targets.insert(c.target).second) << "target reused";
  }
}

TEST(SelectGreedyTest, ThresholdLimitsAssignment) {
  auto sel = SelectGreedyOneToOne(MakeMatrix(), 0.6);
  ASSERT_EQ(sel.size(), 1u);  // Only (1,10)=0.9 — 0.8/0.85 conflict with it.
}

TEST(StableMarriageTest, ProducesOneToOneMatching) {
  auto sel = SelectStableMarriage(MakeMatrix(), 0.0);
  ASSERT_EQ(sel.size(), 3u);
  std::set<schema::ElementId> sources, targets;
  for (auto& c : sel) {
    EXPECT_TRUE(sources.insert(c.source).second);
    EXPECT_TRUE(targets.insert(c.target).second);
  }
}

TEST(StableMarriageTest, NoBlockingPair) {
  MatchMatrix m = MakeMatrix();
  auto sel = SelectStableMarriage(m, 0.0);
  // For every unmatched pair (s,t) scoring above both partners' current
  // scores, stability is violated.
  auto score_of = [&](schema::ElementId s, schema::ElementId t) {
    return m.Get(s, t);
  };
  std::map<schema::ElementId, double> src_score, tgt_score;
  std::set<std::pair<schema::ElementId, schema::ElementId>> matched;
  for (auto& c : sel) {
    src_score[c.source] = c.score;
    tgt_score[c.target] = c.score;
    matched.insert({c.source, c.target});
  }
  for (schema::ElementId s : {1u, 2u, 3u}) {
    for (schema::ElementId t : {10u, 11u, 12u}) {
      if (matched.count({s, t})) continue;
      double v = score_of(s, t);
      bool s_prefers = !src_score.count(s) || v > src_score[s];
      bool t_prefers = !tgt_score.count(t) || v > tgt_score[t];
      EXPECT_FALSE(s_prefers && t_prefers)
          << "blocking pair (" << s << "," << t << ")";
    }
  }
}

TEST(StableMarriageTest, ThresholdExcludesWeakPairs) {
  auto sel = SelectStableMarriage(MakeMatrix(), 0.6);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].source, 1u);
  EXPECT_EQ(sel[0].target, 10u);
}

TEST(SelectionTest, EmptyMatrixYieldsNothing) {
  MatchMatrix empty({}, {});
  EXPECT_TRUE(SelectByThreshold(empty, 0.0).empty());
  EXPECT_TRUE(SelectTopKPerSource(empty, 3, 0.0).empty());
  EXPECT_TRUE(SelectGreedyOneToOne(empty, 0.0).empty());
  EXPECT_TRUE(SelectStableMarriage(empty, 0.0).empty());
}

TEST(SelectionTest, GreedyAndStableAgreeOnUnambiguousMatrix) {
  MatchMatrix m({1, 2}, {10, 11});
  m.Set(1, 10, 0.9);
  m.Set(2, 11, 0.8);
  m.Set(1, 11, 0.1);
  m.Set(2, 10, 0.1);
  auto greedy = SelectGreedyOneToOne(m, 0.5);
  auto stable = SelectStableMarriage(m, 0.5);
  ASSERT_EQ(greedy.size(), 2u);
  ASSERT_EQ(stable.size(), 2u);
  EXPECT_EQ(greedy[0], stable[0]);
  EXPECT_EQ(greedy[1], stable[1]);
}

}  // namespace
}  // namespace harmony::core
