#include "core/merger.h"

#include <gtest/gtest.h>

namespace harmony::core {
namespace {

std::vector<std::unique_ptr<MatchVoter>> TwoVoters() {
  VoterConfig config;
  config.name_string_weight = 1.0;
  config.name_token_weight = 1.0;
  config.documentation_weight = 0.0;
  config.data_type_weight = 0.0;
  config.structural_weight = 0.0;
  config.acronym_weight = 0.0;
  return CreateVoters(config);
}

TEST(MergerTest, AllAbstainIsZero) {
  auto voters = TwoVoters();
  VoteMerger merger;
  EXPECT_DOUBLE_EQ(merger.Merge(voters, {{1.0, 0.0}, {0.0, 0.0}}), 0.0);
}

TEST(MergerTest, StrongAgreementScoresHigh) {
  auto voters = TwoVoters();
  VoteMerger merger;
  double score = merger.Merge(voters, {{1.0, 50.0}, {1.0, 50.0}});
  EXPECT_GT(score, 0.5);
  EXPECT_LT(score, 1.0);
}

TEST(MergerTest, StrongDisagreementScoresLow) {
  auto voters = TwoVoters();
  VoteMerger merger;
  double score = merger.Merge(voters, {{0.0, 50.0}, {0.0, 50.0}});
  EXPECT_LT(score, -0.5);
  EXPECT_GT(score, -1.0);
}

TEST(MergerTest, ScoreAlwaysInOpenInterval) {
  auto voters = TwoVoters();
  VoteMerger merger;
  for (double r1 : {0.0, 0.5, 1.0}) {
    for (double r2 : {0.0, 0.5, 1.0}) {
      for (double n : {0.0, 1.0, 10.0, 1e6}) {
        double s = merger.Merge(voters, {{r1, n}, {r2, n}});
        EXPECT_GT(s, -1.0);
        EXPECT_LT(s, 1.0);
      }
    }
  }
}

TEST(MergerTest, ThinEvidenceShrinksTowardZero) {
  auto voters = TwoVoters();
  VoteMerger merger;
  double thin = merger.Merge(voters, {{1.0, 0.5}, {1.0, 0.5}});
  double thick = merger.Merge(voters, {{1.0, 100.0}, {1.0, 100.0}});
  EXPECT_GT(thick, thin);
  EXPECT_GT(thin, 0.0);
}

TEST(MergerTest, RatioOnlyModeIgnoresEvidenceVolume) {
  auto voters = TwoVoters();
  MergerOptions options;
  options.evidence_weighting = false;
  VoteMerger merger(options);
  double thin = merger.Merge(voters, {{1.0, 0.5}, {1.0, 0.5}});
  double thick = merger.Merge(voters, {{1.0, 100.0}, {1.0, 100.0}});
  EXPECT_DOUBLE_EQ(thin, thick);
}

TEST(MergerTest, EvidenceModeSeparatesWhatRatioOnlyCannot) {
  auto voters = TwoVoters();
  MergerOptions with_opts;
  VoteMerger with(with_opts);
  MergerOptions without_opts;
  without_opts.mode = MergeMode::kRatioOnly;
  VoteMerger without(without_opts);
  // A perfect 2-word doc agreement vs a perfect 50-word one.
  VoterScore thin{1.0, 2.0};
  VoterScore thick{1.0, 50.0};
  EXPECT_LT(with.Merge(voters, {thin, thin}), with.Merge(voters, {thick, thick}));
  EXPECT_DOUBLE_EQ(without.Merge(voters, {thin, thin}),
                   without.Merge(voters, {thick, thick}));
}

TEST(MergerTest, BaseWeightsMatter) {
  VoterConfig config;
  config.name_string_weight = 3.0;
  config.name_token_weight = 1.0;
  config.documentation_weight = 0.0;
  config.data_type_weight = 0.0;
  config.structural_weight = 0.0;
  config.acronym_weight = 0.0;
  auto voters = CreateVoters(config);
  VoteMerger merger;
  // Voter 0 (weight 3) says yes, voter 1 (weight 1) says no.
  double tilted = merger.Merge(voters, {{1.0, 50.0}, {0.0, 50.0}});
  EXPECT_GT(tilted, 0.0);
}

TEST(MergerTest, HigherPriorWeightShrinksScores) {
  auto voters = TwoVoters();
  MergerOptions loose_opts;
  loose_opts.prior_weight = 0.5;
  VoteMerger loose(loose_opts);
  MergerOptions tight_opts;
  tight_opts.prior_weight = 4.0;
  VoteMerger tight(tight_opts);
  std::vector<VoterScore> scores{{1.0, 10.0}, {1.0, 10.0}};
  EXPECT_GT(loose.Merge(voters, scores), tight.Merge(voters, scores));
}

TEST(MergerTest, AbstainersExcludedFromNormalization) {
  auto voters = TwoVoters();
  VoteMerger merger;
  // One confident voter plus one abstainer should score like the confident
  // voter alone, not get diluted by the absent one.
  double with_abstainer = merger.Merge(voters, {{1.0, 50.0}, {0.0, 0.0}});
  VoterConfig solo_config;
  solo_config.name_string_weight = 1.0;
  solo_config.name_token_weight = 0.0;
  solo_config.documentation_weight = 0.0;
  solo_config.data_type_weight = 0.0;
  solo_config.structural_weight = 0.0;
  solo_config.acronym_weight = 0.0;
  auto solo = CreateVoters(solo_config);
  double alone = merger.Merge(solo, {{1.0, 50.0}});
  EXPECT_DOUBLE_EQ(with_abstainer, alone);
}

}  // namespace
}  // namespace harmony::core
