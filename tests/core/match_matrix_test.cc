#include "core/match_matrix.h"

#include <gtest/gtest.h>

namespace harmony::core {
namespace {

MatchMatrix Make3x2() {
  MatchMatrix m({10, 11, 12}, {20, 21});
  m.Set(10, 20, 0.9);
  m.Set(10, 21, 0.1);
  m.Set(11, 20, 0.4);
  m.Set(11, 21, 0.6);
  m.Set(12, 20, -0.5);
  m.Set(12, 21, 0.0);
  return m;
}

TEST(MatchMatrixTest, DimensionsAndMembership) {
  MatchMatrix m = Make3x2();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.pair_count(), 6u);
  EXPECT_TRUE(m.HasSource(11));
  EXPECT_FALSE(m.HasSource(20));
  EXPECT_TRUE(m.HasTarget(21));
  EXPECT_FALSE(m.HasTarget(10));
}

TEST(MatchMatrixTest, GetSetById) {
  MatchMatrix m = Make3x2();
  EXPECT_DOUBLE_EQ(m.Get(10, 20), 0.9);
  EXPECT_DOUBLE_EQ(m.Get(12, 20), -0.5);
  m.Set(12, 20, 0.33);
  EXPECT_DOUBLE_EQ(m.Get(12, 20), 0.33);
}

TEST(MatchMatrixTest, IndexAccessorsAgreeWithIdAccessors) {
  MatchMatrix m = Make3x2();
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      EXPECT_DOUBLE_EQ(m.GetByIndex(r, c), m.Get(m.SourceIdAt(r), m.TargetIdAt(c)));
    }
  }
}

TEST(MatchMatrixTest, DefaultsToZero) {
  MatchMatrix m({1, 2}, {3});
  EXPECT_DOUBLE_EQ(m.Get(1, 3), 0.0);
  EXPECT_DOUBLE_EQ(m.MaxScore(), 0.0);
}

TEST(MatchMatrixTest, PairsAboveSortedDescending) {
  MatchMatrix m = Make3x2();
  auto pairs = m.PairsAbove(0.4);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_DOUBLE_EQ(pairs[0].score, 0.9);
  EXPECT_DOUBLE_EQ(pairs[1].score, 0.6);
  EXPECT_DOUBLE_EQ(pairs[2].score, 0.4);
  EXPECT_EQ(pairs[0].source, 10u);
  EXPECT_EQ(pairs[0].target, 20u);
}

TEST(MatchMatrixTest, PairsAboveIncludesThresholdItself) {
  MatchMatrix m = Make3x2();
  EXPECT_EQ(m.PairsAbove(0.9).size(), 1u);
  EXPECT_EQ(m.PairsAbove(0.91).size(), 0u);
}

TEST(MatchMatrixTest, BestPerSource) {
  MatchMatrix m = Make3x2();
  auto best = m.BestPerSource();
  ASSERT_EQ(best.size(), 3u);
  EXPECT_EQ(best[0].target, 20u);
  EXPECT_EQ(best[1].target, 21u);
  EXPECT_EQ(best[2].target, 21u);  // max(-0.5, 0.0).
}

TEST(MatchMatrixTest, MaxScore) {
  EXPECT_DOUBLE_EQ(Make3x2().MaxScore(), 0.9);
}

TEST(MatchMatrixTest, EmptyMatrix) {
  MatchMatrix m({}, {});
  EXPECT_EQ(m.pair_count(), 0u);
  EXPECT_TRUE(m.PairsAbove(-1.0).empty());
  EXPECT_TRUE(m.BestPerSource().empty());
}

TEST(MatchMatrixTest, EmptyColumns) {
  MatchMatrix m({1, 2}, {});
  EXPECT_TRUE(m.BestPerSource().empty());
  EXPECT_TRUE(m.PairsAbove(0.0).empty());
}

}  // namespace
}  // namespace harmony::core
