// The parallel kernel's contract: row-sharded ComputeMatrix (and everything
// layered on it — propagation sweeps, the nway pair fan-out, the analysis
// distance fan-out) must produce output identical to the serial
// num_threads=1 path, cell for cell, at any thread count.

#include <gtest/gtest.h>

#include "analysis/distance.h"
#include "core/match_engine.h"
#include "nway/vocabulary_builder.h"
#include "synth/generator.h"

namespace harmony {
namespace {

synth::GeneratedPair MakePair(uint64_t seed) {
  synth::PairSpec spec;
  spec.seed = seed;
  spec.source_concepts = 12;
  spec.target_concepts = 9;
  spec.shared_concepts = 5;
  return synth::GeneratePair(spec);
}

core::MatchOptions WithThreads(size_t n) {
  core::MatchOptions options;
  options.num_threads = n;
  return options;
}

void ExpectIdentical(const core::MatchMatrix& serial,
                     const core::MatchMatrix& parallel) {
  ASSERT_EQ(serial.rows(), parallel.rows());
  ASSERT_EQ(serial.cols(), parallel.cols());
  for (size_t r = 0; r < serial.rows(); ++r) {
    for (size_t c = 0; c < serial.cols(); ++c) {
      // EXPECT_EQ, not NEAR: the parallel path runs the same operations on
      // disjoint rows, so equality is exact.
      EXPECT_EQ(serial.GetByIndex(r, c), parallel.GetByIndex(r, c))
          << "cell (" << r << ", " << c << ")";
    }
  }
}

TEST(ParallelMatchTest, ComputeMatrixMatchesSerialCellForCell) {
  auto pair = MakePair(7001);
  core::MatchEngine serial(pair.source, pair.target, WithThreads(1));
  core::MatchEngine parallel(pair.source, pair.target, WithThreads(4));
  ExpectIdentical(serial.ComputeMatrix(), parallel.ComputeMatrix());
}

TEST(ParallelMatchTest, HardwareThreadCountMatchesSerial) {
  auto pair = MakePair(7002);
  core::MatchEngine serial(pair.source, pair.target, WithThreads(1));
  core::MatchEngine parallel(pair.source, pair.target, WithThreads(0));
  ExpectIdentical(serial.ComputeMatrix(), parallel.ComputeMatrix());
}

TEST(ParallelMatchTest, RefinedMatrixMatchesSerialCellForCell) {
  auto pair = MakePair(7003);
  core::MatchOptions serial_options = WithThreads(1);
  serial_options.propagation.iterations = 2;
  core::MatchOptions parallel_options = WithThreads(4);
  parallel_options.propagation.iterations = 2;
  core::MatchEngine serial(pair.source, pair.target, serial_options);
  core::MatchEngine parallel(pair.source, pair.target, parallel_options);
  ExpectIdentical(serial.ComputeRefinedMatrix(), parallel.ComputeRefinedMatrix());
}

TEST(ParallelMatchTest, MatchAllPairsMatchesSerial) {
  synth::NWaySpec spec;
  spec.seed = 7004;
  spec.schema_count = 4;
  auto gen = synth::GenerateNWay(spec);
  std::vector<const schema::Schema*> schemas;
  for (const auto& s : gen.schemas) schemas.push_back(&s);

  auto serial = nway::MatchAllPairs(schemas, 0.45, true, WithThreads(1));
  auto parallel = nway::MatchAllPairs(schemas, 0.45, true, WithThreads(4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k].source_index, parallel[k].source_index);
    EXPECT_EQ(serial[k].target_index, parallel[k].target_index);
    ASSERT_EQ(serial[k].links.size(), parallel[k].links.size()) << "pair " << k;
    for (size_t l = 0; l < serial[k].links.size(); ++l) {
      EXPECT_EQ(serial[k].links[l].source, parallel[k].links[l].source);
      EXPECT_EQ(serial[k].links[l].target, parallel[k].links[l].target);
      EXPECT_EQ(serial[k].links[l].score, parallel[k].links[l].score);
    }
  }
}

TEST(ParallelMatchTest, OverlapDistanceMatrixMatchesSerial) {
  synth::NWaySpec spec;
  spec.seed = 7005;
  spec.schema_count = 4;
  auto gen = synth::GenerateNWay(spec);
  std::vector<const schema::Schema*> schemas;
  for (const auto& s : gen.schemas) schemas.push_back(&s);

  auto serial = analysis::MatchOverlapDistanceMatrix(schemas, 0.4, WithThreads(1));
  auto parallel = analysis::MatchOverlapDistanceMatrix(schemas, 0.4, WithThreads(4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "index " << i;
  }
  // Sanity on shape: symmetric, zero diagonal, distances in [0, 1].
  size_t n = schemas.size();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(parallel[i * n + i], 0.0);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(parallel[i * n + j], parallel[j * n + i]);
      EXPECT_GE(parallel[i * n + j], 0.0);
      EXPECT_LE(parallel[i * n + j], 1.0);
    }
  }
}

}  // namespace
}  // namespace harmony
