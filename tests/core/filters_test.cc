#include "core/filters.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::core {
namespace {

schema::Schema MakeSchema() {
  schema::RelationalBuilder b("S");
  auto person = b.Table("PERSON");
  b.Column(person, "NAME");
  b.Column(person, "DOB", schema::DataType::kDate);
  auto vehicle = b.Table("VEHICLE");
  b.Column(vehicle, "VIN");
  schema::Schema s = std::move(b).Build();
  // One deeper node under VEHICLE for depth tests.
  auto vehicle_id = *s.FindByPath("VEHICLE");
  auto engine = s.AddElement(vehicle_id, "ENGINE", schema::ElementKind::kGroup);
  s.AddElement(engine, "POWER", schema::ElementKind::kColumn,
               schema::DataType::kDecimal);
  return s;
}

TEST(ConfidenceFilterTest, RangeSemantics) {
  ConfidenceFilter filter{0.3, 0.8};
  EXPECT_TRUE(filter.Accepts({0, 0, 0.3}));
  EXPECT_TRUE(filter.Accepts({0, 0, 0.8}));
  EXPECT_FALSE(filter.Accepts({0, 0, 0.29}));
  EXPECT_FALSE(filter.Accepts({0, 0, 0.81}));
}

TEST(FilterLinksTest, AppliesBothBounds) {
  MatchMatrix m({1, 2}, {3, 4});
  m.Set(1, 3, 0.9);
  m.Set(1, 4, 0.5);
  m.Set(2, 3, 0.2);
  m.Set(2, 4, 0.7);
  auto links = FilterLinks(m, ConfidenceFilter{0.4, 0.8});
  ASSERT_EQ(links.size(), 2u);
  EXPECT_DOUBLE_EQ(links[0].score, 0.7);
  EXPECT_DOUBLE_EQ(links[1].score, 0.5);
}

TEST(NodeFilterTest, DefaultAcceptsEverything) {
  schema::Schema s = MakeSchema();
  NodeFilter filter;
  EXPECT_EQ(filter.Select(s).size(), s.element_count());
}

TEST(NodeFilterTest, MaxDepthIgnoresDeepElements) {
  schema::Schema s = MakeSchema();
  NodeFilter filter;
  filter.WithMaxDepth(1);
  auto ids = filter.Select(s);
  // Only the two tables — "match table names in SA and ignore their
  // attributes" (§4.1).
  ASSERT_EQ(ids.size(), 2u);
  for (auto id : ids) EXPECT_EQ(s.element(id).depth, 1u);
}

TEST(NodeFilterTest, DepthRange) {
  schema::Schema s = MakeSchema();
  NodeFilter filter;
  filter.WithDepthRange(2, 2);
  auto ids = filter.Select(s);
  EXPECT_EQ(ids.size(), 4u);  // NAME, DOB, VIN, ENGINE.
}

TEST(NodeFilterTest, SubtreeFilterSelectsSubtreeInclusively) {
  schema::Schema s = MakeSchema();
  NodeFilter filter;
  filter.WithSubtree(*s.FindByPath("VEHICLE"));
  auto ids = filter.Select(s);
  EXPECT_EQ(ids.size(), 4u);  // VEHICLE, VIN, ENGINE, POWER.
  for (auto id : ids) {
    EXPECT_TRUE(s.IsAncestorOrSelf(*s.FindByPath("VEHICLE"), id));
  }
}

TEST(NodeFilterTest, KindFilter) {
  schema::Schema s = MakeSchema();
  NodeFilter filter;
  filter.WithKinds({schema::ElementKind::kTable});
  EXPECT_EQ(filter.Select(s).size(), 2u);
}

TEST(NodeFilterTest, LeavesOnly) {
  schema::Schema s = MakeSchema();
  NodeFilter filter;
  filter.LeavesOnly();
  auto ids = filter.Select(s);
  EXPECT_EQ(ids.size(), 4u);  // NAME, DOB, VIN, POWER.
  for (auto id : ids) EXPECT_TRUE(s.element(id).is_leaf());
}

TEST(NodeFilterTest, CriteriaAreConjunctive) {
  schema::Schema s = MakeSchema();
  NodeFilter filter;
  filter.WithSubtree(*s.FindByPath("VEHICLE")).WithMaxDepth(2).LeavesOnly();
  auto ids = filter.Select(s);
  ASSERT_EQ(ids.size(), 1u);  // Only VIN.
  EXPECT_EQ(s.element(ids[0]).name, "VIN");
}

TEST(NodeFilterTest, HasSubtreeIntrospection) {
  NodeFilter plain;
  EXPECT_FALSE(plain.has_subtree());
  NodeFilter sub;
  sub.WithSubtree(1);
  EXPECT_TRUE(sub.has_subtree());
}

}  // namespace
}  // namespace harmony::core
