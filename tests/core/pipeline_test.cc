// The multi-stage match pipeline (core/pipeline.h): the property suite
// pinning the refactor contract — single-stage mode is bitwise-identical to
// the classic dense kernel across seeds, thread counts, and grains — plus
// the staged-mode guarantees: determinism under sharding, exact ensemble
// scores on every retrieved cell when the reranker abstains, the budgeted
// retrieval recall floor, the dense fallback accounting of
// ComputeMatrixFor, and the per-stage stats counters. EnricherTest and
// RerankerTest cover the stage-2/stage-4 reference implementations
// directly.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/enricher.h"
#include "core/match_engine.h"
#include "core/pipeline.h"
#include "core/reranker.h"
#include "core/selection.h"
#include "synth/generator.h"

namespace harmony {
namespace {

synth::GeneratedPair MakePair(uint64_t seed) {
  synth::PairSpec spec;
  spec.seed = seed;
  spec.source_concepts = 10;
  spec.target_concepts = 8;
  spec.shared_concepts = 4;
  return synth::GeneratePair(spec);
}

core::MatchOptions DenseOptions() {
  core::MatchOptions options;
  options.num_threads = 1;
  return options;
}

core::MatchOptions PipelineOptions(core::PipelineMode mode, size_t threads,
                                   size_t grain) {
  core::MatchOptions options;
  options.pipeline.mode = mode;
  options.num_threads = threads;
  options.grain = grain;
  return options;
}

void ExpectSameMatrix(const core::MatchMatrix& want,
                      const core::MatchMatrix& got) {
  ASSERT_EQ(want.rows(), got.rows());
  ASSERT_EQ(want.cols(), got.cols());
  for (size_t r = 0; r < want.rows(); ++r) {
    for (size_t c = 0; c < want.cols(); ++c) {
      ASSERT_EQ(want.GetByIndex(r, c), got.GetByIndex(r, c))
          << "cell (" << r << ", " << c << ")";
    }
  }
}

// The 20-seed refactor property: explicitly selecting single-stage mode at
// any thread count and grain produces a matrix bitwise-identical to the
// baseline engine — cell for cell, not just selection for selection. This
// is the guarantee that lets MatchEngine delegate everything to the
// pipeline without a behaviour change.
TEST(PipelineTest, SingleStageBitwiseIdenticalToDenseAcrossSeeds) {
  const size_t kThreadCounts[] = {1, 2, 4};
  const size_t kGrains[] = {0, 1, 3};
  for (uint64_t seed = 9000; seed < 9020; ++seed) {
    auto pair = MakePair(seed);
    core::MatchEngine dense(pair.source, pair.target, DenseOptions());
    core::MatchMatrix dense_matrix = dense.ComputeMatrix();

    for (size_t threads : kThreadCounts) {
      for (size_t grain : kGrains) {
        core::MatchEngine engine(
            pair.source, pair.target,
            PipelineOptions(core::PipelineMode::kSingleStage, threads, grain));
        SCOPED_TRACE(::testing::Message() << "seed " << seed << " threads "
                                          << threads << " grain " << grain);
        ExpectSameMatrix(dense_matrix, engine.ComputeMatrix());
      }
    }
  }
}

// Staged mode re-scores candidates, so it does not match the dense kernel —
// but it must match ITSELF exactly under any sharding: retrieval, ranking,
// and reranking are all row-scoped, and enrichment happens once at
// construction.
TEST(PipelineTest, StagedModeDeterministicAcrossThreadsAndGrains) {
  const size_t kThreadCounts[] = {1, 2, 4};
  const size_t kGrains[] = {0, 1, 3};
  for (uint64_t seed : {9000u, 9007u, 9013u, 9019u}) {
    auto pair = MakePair(seed);
    core::MatchEngine reference(
        pair.source, pair.target,
        PipelineOptions(core::PipelineMode::kStaged, 1, 0));
    core::MatchMatrix want = reference.ComputeMatrix();

    for (size_t threads : kThreadCounts) {
      for (size_t grain : kGrains) {
        core::MatchEngine engine(
            pair.source, pair.target,
            PipelineOptions(core::PipelineMode::kStaged, threads, grain));
        SCOPED_TRACE(::testing::Message() << "seed " << seed << " threads "
                                          << threads << " grain " << grain);
        ExpectSameMatrix(want, engine.ComputeMatrix());
      }
    }
  }
}

// With the reranker silenced (identity) and no budget, staged mode is
// "retrieval + the exact ensemble": every retrieved cell carries the
// bitwise dense score and threshold-gated selection agrees with the dense
// kernel — the staged analogue of the blocking admissibility contract.
TEST(PipelineTest, StagedIdentityRerankerSelectsSameAsDense) {
  for (uint64_t seed : {9100u, 9101u, 9102u}) {
    auto pair = MakePair(seed);
    core::MatchOptions dense_options = DenseOptions();
    core::MatchEngine dense(pair.source, pair.target, dense_options);
    core::MatchMatrix dense_matrix = dense.ComputeMatrix();

    core::MatchOptions options =
        PipelineOptions(core::PipelineMode::kStaged, 2, 1);
    options.pipeline.reranker = std::make_shared<core::IdentityReranker>();
    core::MatchEngine staged(pair.source, pair.target, options);
    core::MatchMatrix matrix = staged.ComputeMatrix();

    ASSERT_EQ(dense_matrix.rows(), matrix.rows());
    ASSERT_EQ(dense_matrix.cols(), matrix.cols());
    for (size_t r = 0; r < matrix.rows(); ++r) {
      for (size_t c = 0; c < matrix.cols(); ++c) {
        double s = matrix.GetByIndex(r, c);
        double d = dense_matrix.GetByIndex(r, c);
        if (s == d) continue;
        // Any disagreement must be an un-retrieved sentinel over a
        // sub-threshold dense score.
        EXPECT_EQ(s, 0.0) << "cell (" << r << ", " << c << ")";
        EXPECT_LT(d, options.threshold) << "cell (" << r << ", " << c << ")";
      }
    }
    auto dense_selected =
        core::SelectByThreshold(dense_matrix, dense_options.threshold);
    auto staged_selected = core::SelectByThreshold(matrix, options.threshold);
    ASSERT_EQ(dense_selected.size(), staged_selected.size()) << "seed " << seed;
    for (size_t i = 0; i < dense_selected.size(); ++i) {
      EXPECT_EQ(dense_selected[i].source, staged_selected[i].source);
      EXPECT_EQ(dense_selected[i].target, staged_selected[i].target);
      EXPECT_EQ(dense_selected[i].score, staged_selected[i].score);
    }
  }
}

// Budgeted retrieval keeps only the top-K bounds per row; the contract is a
// recall floor over the dense selection (mirroring the approximate-blocking
// floor in blocking_test.cc), not equality.
TEST(PipelineTest, BudgetedRetrievalRecallFloor) {
  size_t dense_total = 0;
  size_t recalled = 0;
  for (uint64_t seed = 9600; seed < 9610; ++seed) {
    auto pair = MakePair(seed);
    core::MatchOptions dense_options = DenseOptions();
    core::MatchEngine dense(pair.source, pair.target, dense_options);
    auto dense_selected = core::SelectByThreshold(dense.ComputeMatrix(),
                                                  dense_options.threshold);

    core::MatchOptions options =
        PipelineOptions(core::PipelineMode::kStaged, 1, 0);
    options.pipeline.retrieve_budget = 5;
    options.pipeline.reranker = std::make_shared<core::IdentityReranker>();
    core::MatchEngine staged(pair.source, pair.target, options);
    auto staged_selected =
        core::SelectByThreshold(staged.ComputeMatrix(), options.threshold);

    dense_total += dense_selected.size();
    for (const auto& want : dense_selected) {
      for (const auto& got : staged_selected) {
        if (got.source == want.source && got.target == want.target) {
          // A recalled pair is also exact: retrieval only selects which
          // cells the unchanged ensemble kernel scores.
          EXPECT_EQ(got.score, want.score);
          ++recalled;
          break;
        }
      }
    }
  }
  ASSERT_GT(dense_total, 0u);
  EXPECT_GE(static_cast<double>(recalled),
            0.85 * static_cast<double>(dense_total))
      << "budgeted retrieval recall " << recalled << "/" << dense_total;
}

// ComputeMatrixFor below the retrieval prune threshold must fall back to
// the dense kernel (un-retrieved 0.0 sentinels would be selectable) — and
// the fallback is counted, not silent, in both staged and blocked engines.
TEST(PipelineTest, ComputeMatrixForCountsDenseFallback) {
  auto pair = MakePair(9400);
  core::MatchEngine dense(pair.source, pair.target, DenseOptions());
  core::MatchMatrix dense_matrix = dense.ComputeMatrix();

  core::MatchOptions staged_options =
      PipelineOptions(core::PipelineMode::kStaged, 1, 0);
  core::MatchEngine staged(pair.source, pair.target, staged_options);
  core::MatchMatrix low = staged.ComputeMatrixFor(0.05);
  ExpectSameMatrix(dense_matrix, low);
  EXPECT_EQ(staged.StatsReport().dense_fallbacks, 1u);

  // At the engine threshold the staged path runs; no further fallback.
  staged.ComputeMatrixFor(staged_options.threshold);
  core::EngineStats stats = staged.StatsReport();
  EXPECT_EQ(stats.dense_fallbacks, 1u);
  EXPECT_GT(stats.pipeline_candidates_retrieved, 0u);

  // Same contract on a single-stage blocked engine (satellite of the same
  // fix: the silent dense fallback became a counter).
  core::MatchOptions blocked_options = DenseOptions();
  blocked_options.blocking.mode = core::BlockingMode::kExact;
  core::MatchEngine blocked(pair.source, pair.target, blocked_options);
  blocked.ComputeMatrixFor(0.05);
  EXPECT_EQ(blocked.StatsReport().dense_fallbacks, 1u);
  blocked.ComputeMatrixFor(blocked_options.threshold);
  EXPECT_EQ(blocked.StatsReport().dense_fallbacks, 1u);
}

// The per-stage pipeline counters surface in EngineStats and both
// renderers.
TEST(PipelineTest, StagedStatsCountersPopulated) {
  auto pair = MakePair(9450);
  core::MatchOptions options =
      PipelineOptions(core::PipelineMode::kStaged, 1, 0);
  core::MatchEngine engine(pair.source, pair.target, options);
  core::MatchMatrix matrix = engine.ComputeMatrix();

  core::EngineStats stats = engine.StatsReport();
  // Overlays span the full id space: every element plus each side's root
  // (id 0, not counted by element_count()).
  EXPECT_EQ(stats.pipeline_elements_enriched,
            engine.source().element_count() + engine.target().element_count() +
                2);
  EXPECT_GT(stats.pipeline_candidates_retrieved, 0u);
  // Every retrieved candidate is ranked and then reranked.
  EXPECT_EQ(stats.pipeline_candidates_reranked,
            stats.pipeline_candidates_retrieved);
  EXPECT_EQ(stats.cells_scored, stats.pipeline_candidates_retrieved);
  EXPECT_EQ(stats.cells_scored + stats.cells_pruned,
            matrix.rows() * matrix.cols());

  std::string text = core::RenderStatsText(stats);
  EXPECT_NE(text.find("stage-1 retrieved"), std::string::npos);
  EXPECT_NE(text.find("stage-2 enriched"), std::string::npos);
  std::string json = core::RenderStatsJson(stats);
  EXPECT_NE(json.find("\"pipeline_candidates_retrieved\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"dense_fallbacks\":"), std::string::npos);
}

// Refined matrices ignore the staged pipeline entirely: propagation needs
// the dense sub-threshold structure.
TEST(PipelineTest, RefinedMatrixUnaffectedByStagedMode) {
  auto pair = MakePair(9500);
  core::MatchOptions dense_options = DenseOptions();
  dense_options.propagation.iterations = 2;
  core::MatchOptions options =
      PipelineOptions(core::PipelineMode::kStaged, 1, 0);
  options.propagation.iterations = 2;
  core::MatchEngine dense(pair.source, pair.target, dense_options);
  core::MatchEngine staged(pair.source, pair.target, options);
  core::MatchMatrix a = dense.ComputeRefinedMatrix();
  core::MatchMatrix b = staged.ComputeRefinedMatrix();
  ExpectSameMatrix(a, b);
}

// ---------------------------------------------------------------------------
// Stage 2: the reference enricher.

TEST(EnricherTest, OverlayIsDeterministicSortedAndComplete) {
  auto pair = MakePair(9800);
  core::MatchOptions options = DenseOptions();
  core::MatchEngine engine(pair.source, pair.target, options);
  core::ReferenceEnricher enricher(options.preprocess);

  core::EnrichedProfileView a =
      enricher.Enrich(engine.profiles(), core::PipelineSide::kSource);
  core::EnrichedProfileView b =
      enricher.Enrich(engine.profiles(), core::PipelineSide::kSource);
  // The overlay spans the id space: element_count() plus the root (id 0).
  ASSERT_EQ(a.size(), engine.source().element_count() + 1);
  ASSERT_EQ(a.size(), b.size());

  size_t expanded_total = 0;
  for (auto id : engine.source().AllElementIds()) {
    auto ea = a.expanded_tokens(id);
    auto eb = b.expanded_tokens(id);
    // Two runs over the same profiles produce identical overlays.
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
    // Expanded token sets are sorted and duplicate-free (the reranker's
    // Jaccard relies on it).
    EXPECT_TRUE(std::is_sorted(ea.begin(), ea.end()));
    EXPECT_EQ(std::adjacent_find(ea.begin(), ea.end()), ea.end());
    // The expansion is a superset of the element's own sorted name tokens.
    for (const auto& tok : engine.profiles().source_view().sorted_name_tokens(id)) {
      EXPECT_TRUE(std::binary_search(ea.begin(), ea.end(), std::string(tok)))
          << "missing own token " << tok;
    }
    expanded_total += ea.size();

    auto sa = a.doc_summary(id);
    auto sb = b.doc_summary(id);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
    EXPECT_LE(sa.size(), 8u);  // default summary_terms cap
  }
  EXPECT_GT(expanded_total, 0u);
}

TEST(EnricherTest, SummaryCapIsHonored) {
  auto pair = MakePair(9801);
  core::MatchOptions options = DenseOptions();
  core::MatchEngine engine(pair.source, pair.target, options);
  core::ReferenceEnricher tight(options.preprocess, /*summary_terms=*/2);
  core::EnrichedProfileView view =
      tight.Enrich(engine.profiles(), core::PipelineSide::kTarget);
  for (auto id : engine.target().AllElementIds()) {
    EXPECT_LE(view.doc_summary(id).size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Stage 4: the reference rerankers.

TEST(RerankerTest, IdentityPassesEnsembleScoresThrough) {
  std::vector<core::RerankCandidate> candidates = {
      {schema::ElementId{0}, schema::ElementId{1}, 0.75},
      {schema::ElementId{2}, schema::ElementId{3}, -0.25},
  };
  std::vector<double> out(candidates.size(), 99.0);
  core::IdentityReranker identity;
  core::RerankEvidence evidence;  // identity never reads it
  identity.Rerank(candidates, evidence, out);
  EXPECT_EQ(out[0], 0.75);
  EXPECT_EQ(out[1], -0.25);
}

TEST(RerankerTest, HeuristicBlendZeroDegradesToIdentity) {
  auto pair = MakePair(9850);
  core::MatchOptions options =
      PipelineOptions(core::PipelineMode::kStaged, 1, 0);
  options.pipeline.rerank_blend = 0.0;
  core::MatchEngine staged(pair.source, pair.target, options);

  core::MatchOptions identity_options =
      PipelineOptions(core::PipelineMode::kStaged, 1, 0);
  identity_options.pipeline.reranker =
      std::make_shared<core::IdentityReranker>();
  core::MatchEngine identity(pair.source, pair.target, identity_options);

  core::MatchMatrix a = staged.ComputeMatrix();
  core::MatchMatrix b = identity.ComputeMatrix();
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a.GetByIndex(r, c), b.GetByIndex(r, c))
          << "cell (" << r << ", " << c << ")";
    }
  }
}

TEST(RerankerTest, HeuristicScoresAreDeterministicAndBounded) {
  auto pair = MakePair(9851);
  core::MatchOptions options = DenseOptions();
  core::MatchEngine engine(pair.source, pair.target, options);
  core::ReferenceEnricher enricher(options.preprocess);
  core::EnrichedProfileView source_view =
      enricher.Enrich(engine.profiles(), core::PipelineSide::kSource);
  core::EnrichedProfileView target_view =
      enricher.Enrich(engine.profiles(), core::PipelineSide::kTarget);
  core::RerankEvidence evidence;
  evidence.profiles = &engine.profiles();
  evidence.source_enrichment = &source_view;
  evidence.target_enrichment = &target_view;

  std::vector<core::RerankCandidate> candidates;
  for (auto s : engine.source().AllElementIds()) {
    for (auto t : engine.target().AllElementIds()) {
      candidates.push_back({s, t, engine.ScorePair(s, t)});
    }
  }
  core::HeuristicReranker reranker(0.25);
  std::vector<double> out_a(candidates.size());
  std::vector<double> out_b(candidates.size());
  reranker.Rerank(candidates, evidence, out_a);
  reranker.Rerank(candidates, evidence, out_b);
  bool moved_any = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(out_a[i], out_b[i]) << "candidate " << i;
    EXPECT_GE(out_a[i], -1.0);
    EXPECT_LE(out_a[i], 1.0);
    if (out_a[i] != candidates[i].ensemble_score) moved_any = true;
  }
  // On a synth pair with real overlap the heuristic must have an opinion
  // somewhere, or the staged pipeline degenerates to identity silently.
  EXPECT_TRUE(moved_any);
}

}  // namespace
}  // namespace harmony
