#include "core/voters.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::core {
namespace {

using schema::DataType;

// A pair with known interesting elements.
struct Fixture {
  schema::Schema source;
  schema::Schema target;
  ProfilePair profiles;

  static Fixture Make() {
    schema::RelationalBuilder a("SA");
    auto person = a.Table("PERSON", "A person known to the system");
    a.Column(person, "LAST_NAME", DataType::kString, "The surname of the person");
    a.Column(person, "BIRTH_DT", DataType::kDate,
             "The date on which the person was born");
    a.Column(person, "POB", DataType::kString, "Place of birth");
    auto veh = a.Table("VEH", "A vehicle");
    a.Column(veh, "VIN", DataType::kString, "Vehicle identification number");
    a.Column(veh, "LAST_NAME", DataType::kString, "Name of last driver");

    schema::XmlBuilder b("SB");
    auto p = b.ComplexType("Person", "An individual tracked by the system");
    b.Element(p, "LastName", DataType::kString, "Family name of the person");
    b.Element(p, "BirthDate", DataType::kDate, "Date the person was born");
    b.Element(p, "PlaceOfBirth", DataType::kString, "Where the person was born");
    return Fixture{std::move(a).Build(), std::move(b).Build()};
  }

  Fixture(schema::Schema s, schema::Schema t)
      : source(std::move(s)),
        target(std::move(t)),
        profiles(source, target, PreprocessOptions{}) {}

  schema::ElementId Src(const std::string& path) {
    return *source.FindByPath(path);
  }
  schema::ElementId Tgt(const std::string& path) {
    return *target.FindByPath(path);
  }
};

TEST(NameStringVoterTest, IdenticalNormalizedNamesScoreOne) {
  auto f = Fixture::Make();
  NameStringVoter voter;
  auto s = voter.Vote(f.profiles, f.Src("PERSON.LAST_NAME"), f.Tgt("Person.LastName"));
  EXPECT_DOUBLE_EQ(s.ratio, 1.0);
  EXPECT_GT(s.evidence, 0.0);
}

TEST(NameStringVoterTest, LongerAgreementIsMoreEvidence) {
  auto f = Fixture::Make();
  NameStringVoter voter;
  auto long_name =
      voter.Vote(f.profiles, f.Src("PERSON.LAST_NAME"), f.Tgt("Person.LastName"));
  auto short_name = voter.Vote(f.profiles, f.Src("VEH.VIN"), f.Tgt("Person.LastName"));
  EXPECT_GT(long_name.evidence, short_name.evidence);
}

TEST(NameTokenVoterTest, SynonymAgnosticButTokenAware) {
  auto f = Fixture::Make();
  NameTokenVoter voter;
  auto same = voter.Vote(f.profiles, f.Src("PERSON.BIRTH_DT"), f.Tgt("Person.BirthDate"));
  // birth_dt expands dt→date: tokens {birth, date} on both sides.
  EXPECT_DOUBLE_EQ(same.ratio, 1.0);
  auto diff = voter.Vote(f.profiles, f.Src("VEH.VIN"), f.Tgt("Person.BirthDate"));
  EXPECT_LT(diff.ratio, 0.3);
}

TEST(DocumentationVoterTest, SharedWordsScoreHigh) {
  auto f = Fixture::Make();
  DocumentationVoter voter;
  auto s = voter.Vote(f.profiles, f.Src("PERSON.BIRTH_DT"), f.Tgt("Person.BirthDate"));
  EXPECT_GT(s.ratio, 0.5);
  EXPECT_GT(s.evidence, 0.0);
}

TEST(DocumentationVoterTest, AbstainsWithoutDocs) {
  schema::RelationalBuilder a("A");
  auto t = a.Table("T");
  a.Column(t, "X", DataType::kString);  // No documentation.
  schema::Schema sa = std::move(a).Build();
  schema::RelationalBuilder b("B");
  auto t2 = b.Table("T");
  b.Column(t2, "X", DataType::kString, "documented");
  schema::Schema sb = std::move(b).Build();
  ProfilePair profiles(sa, sb, PreprocessOptions{});
  DocumentationVoter voter;
  auto s = voter.Vote(profiles, *sa.FindByPath("T.X"), *sb.FindByPath("T.X"));
  EXPECT_DOUBLE_EQ(s.evidence, 0.0);
}

TEST(DataTypeVoterTest, LeafTypesCompared) {
  auto f = Fixture::Make();
  DataTypeVoter voter;
  auto same =
      voter.Vote(f.profiles, f.Src("PERSON.BIRTH_DT"), f.Tgt("Person.BirthDate"));
  EXPECT_DOUBLE_EQ(same.ratio, 1.0);
  auto cross =
      voter.Vote(f.profiles, f.Src("PERSON.BIRTH_DT"), f.Tgt("Person.LastName"));
  EXPECT_LT(cross.ratio, 0.5);
}

TEST(DataTypeVoterTest, AbstainsForContainers) {
  auto f = Fixture::Make();
  DataTypeVoter voter;
  auto s = voter.Vote(f.profiles, f.Src("PERSON"), f.Tgt("Person"));
  EXPECT_DOUBLE_EQ(s.evidence, 0.0);
}

TEST(StructuralVoterTest, SameParentBoostsLeaves) {
  auto f = Fixture::Make();
  StructuralVoter voter;
  // LAST_NAME appears under both PERSON and VEH in SA; the PERSON one should
  // look structurally closer to Person.LastName.
  auto in_person =
      voter.Vote(f.profiles, f.Src("PERSON.LAST_NAME"), f.Tgt("Person.LastName"));
  auto in_vehicle =
      voter.Vote(f.profiles, f.Src("VEH.LAST_NAME"), f.Tgt("Person.LastName"));
  EXPECT_GT(in_person.ratio, in_vehicle.ratio);
}

TEST(StructuralVoterTest, ContainersComparedByChildren) {
  auto f = Fixture::Make();
  StructuralVoter voter;
  auto person_pair = voter.Vote(f.profiles, f.Src("PERSON"), f.Tgt("Person"));
  auto cross_pair = voter.Vote(f.profiles, f.Src("VEH"), f.Tgt("Person"));
  EXPECT_GT(person_pair.ratio, cross_pair.ratio);
  EXPECT_GT(person_pair.evidence, 0.0);
}

TEST(AcronymVoterTest, DetectsInitialisms) {
  auto f = Fixture::Make();
  AcronymVoter voter;
  auto hit =
      voter.Vote(f.profiles, f.Src("PERSON.POB"), f.Tgt("Person.PlaceOfBirth"));
  EXPECT_DOUBLE_EQ(hit.ratio, 1.0);
  EXPECT_GT(hit.evidence, 0.0);
}

TEST(AcronymVoterTest, AbstainsOtherwise) {
  auto f = Fixture::Make();
  AcronymVoter voter;
  auto miss =
      voter.Vote(f.profiles, f.Src("PERSON.LAST_NAME"), f.Tgt("Person.LastName"));
  EXPECT_DOUBLE_EQ(miss.evidence, 0.0);
}

TEST(CreateVotersTest, RespectsConfig) {
  VoterConfig config;
  EXPECT_EQ(CreateVoters(config).size(), 6u);
  config.acronym_weight = 0.0;
  config.documentation_weight = 0.0;
  auto voters = CreateVoters(config);
  EXPECT_EQ(voters.size(), 4u);
  for (const auto& v : voters) {
    EXPECT_STRNE(v->name(), "acronym");
    EXPECT_STRNE(v->name(), "documentation");
  }
}

TEST(CreateVotersTest, WeightsPropagate) {
  VoterConfig config;
  config.name_token_weight = 2.5;
  auto voters = CreateVoters(config);
  bool found = false;
  for (const auto& v : voters) {
    if (std::string(v->name()) == "name_token") {
      EXPECT_DOUBLE_EQ(v->base_weight(), 2.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Property: every voter returns ratio in [0,1] and evidence >= 0 on all
// element pairs of the fixture.
TEST(VoterPropertyTest, RatiosAndEvidenceInRange) {
  auto f = Fixture::Make();
  auto voters = CreateVoters(VoterConfig{});
  for (const auto& voter : voters) {
    for (auto s : f.source.AllElementIds()) {
      for (auto t : f.target.AllElementIds()) {
        VoterScore score = voter->Vote(f.profiles, s, t);
        EXPECT_GE(score.ratio, 0.0) << voter->name();
        EXPECT_LE(score.ratio, 1.0) << voter->name();
        EXPECT_GE(score.evidence, 0.0) << voter->name();
      }
    }
  }
}

}  // namespace
}  // namespace harmony::core
