// SoftDiceUb's pair-budget early exit (ISSUE 10 satellite): the bound
// kernel tests every (a-token, b-token) pair for soft-match admissibility
// only while |A|·|B| <= blocking_internal::kMaxPairOps; beyond the budget
// it falls back to the loose min(|A|,|B|) matching-size bound. Both regimes
// are admissible — what this suite pins is the exact boundary (== budget
// still runs the per-pair bound; budget+1 falls back) and the direction of
// the fallback (never tighter than the per-pair bound, so crossing the
// budget can only loosen, never break, admissibility).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/blocking.h"

namespace harmony {
namespace {

using core::blocking_internal::CharHist;
using core::blocking_internal::HistOf;
using core::blocking_internal::kMaxPairOps;
using core::blocking_internal::SoftDiceUb;
using core::blocking_internal::TokenPairCanMatch;

// Token sets engineered so the two regimes disagree: no pair can soft-match
// (disjoint alphabets), so the per-pair bound yields 0.0 while the
// over-budget fallback yields min(|A|,|B|) matched tokens > 0.
std::vector<CharHist> DisjointTokens(size_t n, char base) {
  std::vector<CharHist> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(HistOf(std::string(6, static_cast<char>(base + (i % 3)))));
  }
  return v;
}

TEST(BlockingBudgetTest, PairsCannotMatchAcrossDisjointAlphabets) {
  CharHist a = HistOf("aaaaaa");
  CharHist b = HistOf("zzzzzz");
  EXPECT_FALSE(TokenPairCanMatch(a, b));
  EXPECT_TRUE(TokenPairCanMatch(a, a));
}

// |A|·|B| == kMaxPairOps exactly: the per-pair loop must still run — with
// disjoint alphabets it proves no token can match and returns 0.0. This is
// the boundary the `>` in the budget test implies; an off-by-one to `>=`
// would flip this case to the loose fallback and the assertion catches it.
TEST(BlockingBudgetTest, ExactBudgetStillRunsPerPairBound) {
  ASSERT_EQ(4096u, kMaxPairOps) << "budget changed — update the shapes below";
  auto a = DisjointTokens(64, 'a');  // tokens over {a,b,c}
  auto b = DisjointTokens(64, 'x');  // tokens over {x,y,z}
  ASSERT_EQ(kMaxPairOps, a.size() * b.size());
  EXPECT_DOUBLE_EQ(0.0, SoftDiceUb(a, b));
}

// One past the budget: the early exit takes over and the bound degrades to
// the loose 2·min/(|A|+|B|) form — nonzero even though no pair can match.
TEST(BlockingBudgetTest, BeyondBudgetFallsBackToLooseBound) {
  auto a = DisjointTokens(64, 'a');
  auto b = DisjointTokens(65, 'x');
  ASSERT_GT(a.size() * b.size(), kMaxPairOps);
  double ub = SoftDiceUb(a, b);
  EXPECT_DOUBLE_EQ(2.0 * 64.0 / (64.0 + 65.0), ub);
}

// The fallback is never tighter than the per-pair bound on the same input
// (admissibility direction): sweep mixed token sets across the boundary by
// padding one side, computing the per-pair value on a trimmed in-budget
// copy for reference.
TEST(BlockingBudgetTest, FallbackOnlyLoosens) {
  // Half the tokens can match across sides, half cannot.
  std::vector<CharHist> a, b;
  for (size_t i = 0; i < 64; ++i) {
    a.push_back(HistOf(i % 2 == 0 ? "shared" : "aaaaaa"));
  }
  for (size_t i = 0; i < 64; ++i) {
    b.push_back(HistOf(i % 2 == 0 ? "shared" : "zzzzzz"));
  }
  ASSERT_EQ(kMaxPairOps, a.size() * b.size());
  double in_budget = SoftDiceUb(a, b);  // per-pair: only "shared" admissible

  b.push_back(HistOf("zzzzzz"));  // 64*65 > budget: loose fallback
  double fallback = SoftDiceUb(a, b);
  // Same normalization family; the fallback counts min(|A|,|B|) = 64
  // matches vs the per-pair 32 — strictly looser, never tighter.
  EXPECT_GT(fallback, in_budget);
  EXPECT_DOUBLE_EQ(2.0 * 32.0 / (64.0 + 64.0), in_budget);
  EXPECT_DOUBLE_EQ(2.0 * 64.0 / (64.0 + 65.0), fallback);
}

// Small-set sanity: well under budget, exact-intersection-style inputs.
TEST(BlockingBudgetTest, UnderBudgetMatchesExpectedDice) {
  std::vector<CharHist> a = {HistOf("customer"), HistOf("id")};
  std::vector<CharHist> b = {HistOf("customer"), HistOf("zz")};
  // "customer" matches itself; "id" and "zz" have no admissible partner.
  EXPECT_DOUBLE_EQ(2.0 * 1.0 / 4.0, SoftDiceUb(a, b));
}

}  // namespace
}  // namespace harmony
