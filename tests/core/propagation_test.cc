#include "core/propagation.h"

#include <gtest/gtest.h>

#include "core/match_engine.h"
#include "schema/builder.h"

namespace harmony::core {
namespace {

using schema::DataType;

// Two schemata with an ambiguous leaf ("CODE" under both containers) that
// only structure can place.
struct Fixture {
  schema::Schema sa;
  schema::Schema sb;

  Fixture() : sa(MakeA()), sb(MakeB()) {}

  static schema::Schema MakeA() {
    schema::RelationalBuilder b("SA");
    auto event = b.Table("EVENT", "An event");
    b.Column(event, "BEGIN_DATE", DataType::kDateTime, "When the event began");
    b.Column(event, "CODE", DataType::kString);
    auto person = b.Table("PERSON", "A person");
    b.Column(person, "LAST_NAME", DataType::kString, "Surname");
    b.Column(person, "CODE", DataType::kString);
    return std::move(b).Build();
  }

  static schema::Schema MakeB() {
    schema::XmlBuilder b("SB");
    auto event = b.ComplexType("Event", "An incident");
    b.Element(event, "BeginDate", DataType::kDateTime, "Start of the event");
    b.Element(event, "Code", DataType::kString);
    auto person = b.ComplexType("Person", "An individual");
    b.Element(person, "LastName", DataType::kString, "Family name");
    b.Element(person, "Code", DataType::kString);
    return std::move(b).Build();
  }
};

TEST(PropagationTest, ScoresStayBounded) {
  Fixture f;
  MatchEngine engine(f.sa, f.sb);
  auto matrix = engine.ComputeMatrix();
  PropagationOptions opts;
  opts.iterations = 3;
  auto refined = PropagateScores(f.sa, f.sb, matrix, opts);
  for (size_t r = 0; r < refined.rows(); ++r) {
    for (size_t c = 0; c < refined.cols(); ++c) {
      EXPECT_GT(refined.GetByIndex(r, c), -1.0);
      EXPECT_LT(refined.GetByIndex(r, c), 1.0);
    }
  }
}

TEST(PropagationTest, ZeroAlphaIsIdentity) {
  Fixture f;
  MatchEngine engine(f.sa, f.sb);
  auto matrix = engine.ComputeMatrix();
  PropagationOptions opts;
  opts.alpha = 0.0;
  auto refined = PropagateScores(f.sa, f.sb, matrix, opts);
  for (size_t r = 0; r < matrix.rows(); ++r) {
    for (size_t c = 0; c < matrix.cols(); ++c) {
      EXPECT_DOUBLE_EQ(refined.GetByIndex(r, c), matrix.GetByIndex(r, c));
    }
  }
}

TEST(PropagationTest, DisambiguatesIdenticalLeavesByContainer) {
  Fixture f;
  MatchEngine engine(f.sa, f.sb);
  auto matrix = engine.ComputeMatrix();
  PropagationOptions opts;
  opts.alpha = 0.4;
  opts.iterations = 2;
  auto refined = PropagateScores(f.sa, f.sb, matrix, opts);

  auto ec_a = *f.sa.FindByPath("EVENT.CODE");
  auto ec_b = *f.sb.FindByPath("Event.Code");
  auto pc_b = *f.sb.FindByPath("Person.Code");
  double same_container_gap = refined.Get(ec_a, ec_b) - refined.Get(ec_a, pc_b);
  double base_gap = matrix.Get(ec_a, ec_b) - matrix.Get(ec_a, pc_b);
  // Propagation widens the separation between the structurally right and
  // wrong placements of the ambiguous CODE leaf.
  EXPECT_GT(same_container_gap, base_gap);
  EXPECT_GT(refined.Get(ec_a, ec_b), refined.Get(ec_a, pc_b));
}

TEST(PropagationTest, ContainersReinforcedByChildren) {
  Fixture f;
  MatchEngine engine(f.sa, f.sb);
  auto matrix = engine.ComputeMatrix();
  auto refined = PropagateScores(f.sa, f.sb, matrix, PropagationOptions{});
  auto event_a = *f.sa.FindByPath("EVENT");
  auto event_b = *f.sb.FindByPath("Event");
  auto person_b = *f.sb.FindByPath("Person");
  EXPECT_GT(refined.Get(event_a, event_b), refined.Get(event_a, person_b));
}

TEST(PropagationTest, MultipleIterationsConverge) {
  Fixture f;
  MatchEngine engine(f.sa, f.sb);
  auto matrix = engine.ComputeMatrix();
  PropagationOptions one;
  one.iterations = 1;
  PropagationOptions many;
  many.iterations = 8;
  auto r1 = PropagateScores(f.sa, f.sb, matrix, one);
  auto r8 = PropagateScores(f.sa, f.sb, matrix, many);
  // No blow-up: the many-iteration result stays in range and correlated.
  auto ec_a = *f.sa.FindByPath("EVENT.CODE");
  auto ec_b = *f.sb.FindByPath("Event.Code");
  EXPECT_GT(r8.Get(ec_a, ec_b), 0.0);
  EXPECT_LT(std::abs(r8.Get(ec_a, ec_b) - r1.Get(ec_a, ec_b)), 0.5);
}

}  // namespace
}  // namespace harmony::core
