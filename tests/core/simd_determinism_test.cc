// End-to-end SIMD determinism (ISSUE 10 satellite): the full ComputeMatrix
// — single-stage and staged — must be bitwise-identical between the scalar
// reference level and every accelerated level, across thread counts and
// grains, on 20 seeds of synthetic schema pairs. Together with the
// per-metric differential suite (tests/text/simd_differential_test.cc) this
// extends the repo's standing invariant lattice — parallel == serial,
// blocked == dense, staged single-stage == classic — with one more edge:
// vector kernels == scalar kernels, all the way through the engine.
//
// Cross-build coverage: a -DHARMONY_SIMD=OFF binary compiles the identical
// scalar reference paths this test pins the accelerated levels against
// (ActiveLevel() folds to kScalar), so ON-at-kScalar == OFF by
// construction, and this in-binary test carries the ON == OFF guarantee.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/match_engine.h"
#include "synth/generator.h"
#include "text/simd.h"

namespace harmony {
namespace {

namespace simd = text::simd;

class LevelGuard {
 public:
  LevelGuard() : saved_(simd::ActiveLevel()) {}
  ~LevelGuard() { simd::SetActiveLevel(saved_); }

 private:
  simd::Level saved_;
};

synth::GeneratedPair MakePair(uint64_t seed) {
  synth::PairSpec spec;
  spec.seed = seed;
  spec.source_concepts = 10;
  spec.target_concepts = 8;
  spec.shared_concepts = 4;
  return synth::GeneratePair(spec);
}

core::MatchMatrix ComputeAt(const synth::GeneratedPair& pair,
                            core::PipelineMode mode, size_t threads,
                            size_t grain, simd::Level level) {
  simd::SetActiveLevel(level);
  core::MatchOptions options;
  options.pipeline.mode = mode;
  options.num_threads = threads;
  options.grain = grain;
  core::MatchEngine engine(pair.source, pair.target, options);
  return engine.ComputeMatrix();
}

void ExpectSameMatrix(const core::MatchMatrix& want,
                      const core::MatchMatrix& got) {
  ASSERT_EQ(want.rows(), got.rows());
  ASSERT_EQ(want.cols(), got.cols());
  for (size_t r = 0; r < want.rows(); ++r) {
    for (size_t c = 0; c < want.cols(); ++c) {
      ASSERT_EQ(want.GetByIndex(r, c), got.GetByIndex(r, c))
          << "cell (" << r << ", " << c << ")";
    }
  }
}

#define SKIP_IF_SCALAR_ONLY()                                             \
  do {                                                                    \
    if (simd::DetectLevel() == simd::Level::kScalar) {                    \
      GTEST_SKIP() << "no accelerated level in this build/CPU — nothing " \
                      "to compare";                                       \
    }                                                                     \
  } while (0)

// 20 seeds × threads {1,2,4} × grains {0,1,3}: the single-stage matrix at
// the best detected level equals the scalar-level serial reference bit for
// bit. The scalar reference is computed once per seed at threads=1 — the
// standing determinism suites already pin scalar parallel == scalar serial,
// so one reference covers the whole sweep.
TEST(SimdDeterminismTest, SingleStageMatchesScalarAcrossThreadsAndGrains) {
  SKIP_IF_SCALAR_ONLY();
  LevelGuard guard;
  const size_t kThreadCounts[] = {1, 2, 4};
  const size_t kGrains[] = {0, 1, 3};
  for (uint64_t seed = 9100; seed < 9120; ++seed) {
    auto pair = MakePair(seed);
    core::MatchMatrix want = ComputeAt(pair, core::PipelineMode::kSingleStage,
                                       1, 0, simd::Level::kScalar);
    for (size_t threads : kThreadCounts) {
      for (size_t grain : kGrains) {
        SCOPED_TRACE(::testing::Message() << "seed " << seed << " threads "
                                          << threads << " grain " << grain);
        ExpectSameMatrix(
            want, ComputeAt(pair, core::PipelineMode::kSingleStage, threads,
                            grain, simd::DetectLevel()));
      }
    }
  }
}

// Staged mode exercises the blocking/retrieval bound arithmetic and the
// rerank blend on top of the voters — all of it must be level-invariant
// too. Fewer seeds (the staged engine builds three indexes per
// construction), full thread × grain sweep.
TEST(SimdDeterminismTest, StagedMatchesScalarAcrossThreadsAndGrains) {
  SKIP_IF_SCALAR_ONLY();
  LevelGuard guard;
  const size_t kThreadCounts[] = {1, 2, 4};
  const size_t kGrains[] = {0, 1, 3};
  for (uint64_t seed : {9100u, 9106u, 9111u, 9119u}) {
    auto pair = MakePair(seed);
    core::MatchMatrix want = ComputeAt(pair, core::PipelineMode::kStaged, 1,
                                       0, simd::Level::kScalar);
    for (size_t threads : kThreadCounts) {
      for (size_t grain : kGrains) {
        SCOPED_TRACE(::testing::Message() << "seed " << seed << " threads "
                                          << threads << " grain " << grain);
        ExpectSameMatrix(want,
                         ComputeAt(pair, core::PipelineMode::kStaged, threads,
                                   grain, simd::DetectLevel()));
      }
    }
  }
}

// Every intermediate level agrees as well (kBitParallel without AVX2): the
// level lattice is totally ordered, so any two levels agreeing with scalar
// agree with each other — but test the middle level directly anyway so a
// bitparallel-only regression cannot hide behind an AVX2-only CI machine.
TEST(SimdDeterminismTest, EveryLevelAgreesOnSingleStage) {
  SKIP_IF_SCALAR_ONLY();
  LevelGuard guard;
  auto pair = MakePair(9142);
  core::MatchMatrix want = ComputeAt(pair, core::PipelineMode::kSingleStage,
                                     2, 0, simd::Level::kScalar);
  for (uint8_t l = 1; l <= static_cast<uint8_t>(simd::DetectLevel()); ++l) {
    SCOPED_TRACE(::testing::Message()
                 << "level " << simd::LevelName(static_cast<simd::Level>(l)));
    ExpectSameMatrix(want,
                     ComputeAt(pair, core::PipelineMode::kSingleStage, 2, 0,
                               static_cast<simd::Level>(l)));
  }
}

}  // namespace
}  // namespace harmony
