#include "core/preprocess.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "schema/builder.h"

namespace harmony::core {
namespace {

schema::Schema SourceSchema() {
  schema::RelationalBuilder b("SA");
  auto t = b.Table("ALL_EVENT_VITALS", "Core facts about events");
  b.Column(t, "DATE_BEGIN_156", schema::DataType::kDateTime,
           "The date on which the event began");
  b.Column(t, "EVT_TYP_CD", schema::DataType::kString, "Coded category");
  return std::move(b).Build();
}

schema::Schema TargetSchema() {
  schema::XmlBuilder b("SB");
  auto t = b.ComplexType("EventRecord", "An event record");
  b.Element(t, "DateTimeFirstInfo", schema::DataType::kDateTime,
            "When the first information about the event was received");
  return std::move(b).Build();
}

TEST(BuildProfileTest, NameNormalizationAndTokens) {
  schema::Schema s = SourceSchema();
  PreprocessOptions opts;
  auto id = *s.FindByPath("ALL_EVENT_VITALS.DATE_BEGIN_156");
  ElementProfile p = BuildProfile(s.element(id), opts);
  EXPECT_EQ(p.normalized_name, "datebegin");  // Numbers dropped, flattened.
  EXPECT_EQ(p.name_tokens, (std::vector<std::string>{"date", "begin"}));
}

TEST(BuildProfileTest, AbbreviationExpansionFeedsTokens) {
  schema::Schema s = SourceSchema();
  PreprocessOptions opts;
  auto id = *s.FindByPath("ALL_EVENT_VITALS.EVT_TYP_CD");
  ElementProfile p = BuildProfile(s.element(id), opts);
  // evt→event, typ→type, cd→code, then stemming.
  EXPECT_EQ(p.name_tokens, (std::vector<std::string>{"event", "type", "code"}));
  EXPECT_EQ(p.initials, "etc");
}

TEST(BuildProfileTest, DocTokensStemmedAndStopFiltered) {
  schema::Schema s = SourceSchema();
  PreprocessOptions opts;
  auto id = *s.FindByPath("ALL_EVENT_VITALS.DATE_BEGIN_156");
  ElementProfile p = BuildProfile(s.element(id), opts);
  // "The date on which the event began" → {date, event, began→} stems.
  EXPECT_NE(std::find(p.doc_tokens.begin(), p.doc_tokens.end(), "date"),
            p.doc_tokens.end());
  EXPECT_NE(std::find(p.doc_tokens.begin(), p.doc_tokens.end(), "event"),
            p.doc_tokens.end());
  EXPECT_EQ(std::find(p.doc_tokens.begin(), p.doc_tokens.end(), "the"),
            p.doc_tokens.end());
}

TEST(BuildProfileTest, StemmingCanBeDisabled) {
  schema::Schema s("X");
  auto id = s.AddElement(schema::Schema::kRootId, "locations",
                         schema::ElementKind::kColumn);
  PreprocessOptions opts;
  opts.stem = false;
  EXPECT_EQ(BuildProfile(s.element(id), opts).name_tokens,
            (std::vector<std::string>{"locations"}));
  opts.stem = true;
  EXPECT_EQ(BuildProfile(s.element(id), opts).name_tokens,
            (std::vector<std::string>{"locat"}));
}

TEST(ProfilePairTest, BuildsProfilesForAllElements) {
  schema::Schema a = SourceSchema();
  schema::Schema b = TargetSchema();
  ProfilePair profiles(a, b, PreprocessOptions{});
  for (auto id : a.AllElementIds()) {
    EXPECT_EQ(profiles.source_profile(id).id, id);
  }
  for (auto id : b.AllElementIds()) {
    EXPECT_EQ(profiles.target_profile(id).id, id);
  }
}

TEST(ProfilePairTest, JointCorpusCoversBothSides) {
  schema::Schema a = SourceSchema();
  schema::Schema b = TargetSchema();
  ProfilePair profiles(a, b, PreprocessOptions{});
  // 4 documented elements in A (incl. table) + 2 in B.
  EXPECT_EQ(profiles.corpus().document_count(), 5u);
  EXPECT_TRUE(profiles.corpus().finalized());
}

TEST(ProfilePairTest, StructuralContextPopulated) {
  schema::Schema a = SourceSchema();
  schema::Schema b = TargetSchema();
  ProfilePair profiles(a, b, PreprocessOptions{});
  auto col = *a.FindByPath("ALL_EVENT_VITALS.DATE_BEGIN_156");
  auto table = *a.FindByPath("ALL_EVENT_VITALS");
  // The column's parent tokens are the table's tokens.
  EXPECT_EQ(profiles.source_profile(col).parent_tokens,
            profiles.source_profile(table).sorted_name_tokens);
  // The table's children tokens include the columns' words.
  const auto& kids = profiles.source_profile(table).children_tokens;
  EXPECT_NE(std::find(kids.begin(), kids.end(), "date"), kids.end());
  // Depth-1 containers have no parent tokens (parent is the root).
  EXPECT_TRUE(profiles.source_profile(table).parent_tokens.empty());
}

// The SoA view must return byte-identical features to the profile structs —
// the batched kernel reads the view, the per-cell path reads the profiles,
// and the two kernels are asserted bitwise-equal on top of this.
TEST(ProfileViewTest, ViewsMirrorProfiles) {
  schema::Schema a = SourceSchema();
  schema::Schema b = TargetSchema();
  ProfilePair profiles(a, b, PreprocessOptions{});
  auto check_side = [](const ProfileView& view,
                       const std::vector<schema::ElementId>& ids,
                       auto&& profile_of, const schema::Schema& s) {
    for (schema::ElementId id : ids) {
      const ElementProfile& p = profile_of(id);
      EXPECT_EQ(view.normalized_name(id), p.normalized_name);
      EXPECT_EQ(view.initials(id), p.initials);
      auto eq = [](std::span<const std::string> span,
                   const std::vector<std::string>& vec) {
        return std::equal(span.begin(), span.end(), vec.begin(), vec.end());
      };
      EXPECT_TRUE(eq(view.name_tokens(id), p.name_tokens));
      EXPECT_TRUE(eq(view.sorted_name_tokens(id), p.sorted_name_tokens));
      EXPECT_TRUE(eq(view.parent_tokens(id), p.parent_tokens));
      EXPECT_TRUE(eq(view.children_tokens(id), p.children_tokens));
      EXPECT_EQ(view.doc_token_count(id), p.doc_tokens.size());
      if (!p.doc_tokens.empty()) {
        // Same object, not a copy: cosine accumulation order must match.
        EXPECT_EQ(&view.doc_vector(id), &p.doc_vector);
      }
      EXPECT_EQ(view.data_type(id), s.element(id).type);
    }
  };
  check_side(
      profiles.source_view(), a.AllElementIds(),
      [&](schema::ElementId id) -> const ElementProfile& {
        return profiles.source_profile(id);
      },
      a);
  check_side(
      profiles.target_view(), b.AllElementIds(),
      [&](schema::ElementId id) -> const ElementProfile& {
        return profiles.target_profile(id);
      },
      b);
}

// An ElementId from the wrong schema (or stale) must trip the bounds check
// instead of silently reading another element's profile — or walking off
// the vector entirely.
TEST(ProfilePairDeathTest, OutOfRangeIdTripsCheck) {
  schema::Schema a = SourceSchema();
  schema::Schema b = TargetSchema();
  ProfilePair profiles(a, b, PreprocessOptions{});
  schema::ElementId beyond_source =
      static_cast<schema::ElementId>(a.node_count() + 17);
  schema::ElementId beyond_target =
      static_cast<schema::ElementId>(b.node_count() + 17);
  EXPECT_DEATH(profiles.source_profile(beyond_source), "out of range");
  EXPECT_DEATH(profiles.target_profile(beyond_target), "out of range");
  EXPECT_DEATH(profiles.source_view().normalized_name(beyond_source),
               "out of range");
  EXPECT_DEATH(profiles.target_view().name_tokens(beyond_target),
               "out of range");
}

TEST(SortedJaccardTest, Basics) {
  EXPECT_DOUBLE_EQ(SortedJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SortedJaccard({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SortedJaccard({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_NEAR(SortedJaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace harmony::core
