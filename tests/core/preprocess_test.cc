#include "core/preprocess.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::core {
namespace {

schema::Schema SourceSchema() {
  schema::RelationalBuilder b("SA");
  auto t = b.Table("ALL_EVENT_VITALS", "Core facts about events");
  b.Column(t, "DATE_BEGIN_156", schema::DataType::kDateTime,
           "The date on which the event began");
  b.Column(t, "EVT_TYP_CD", schema::DataType::kString, "Coded category");
  return std::move(b).Build();
}

schema::Schema TargetSchema() {
  schema::XmlBuilder b("SB");
  auto t = b.ComplexType("EventRecord", "An event record");
  b.Element(t, "DateTimeFirstInfo", schema::DataType::kDateTime,
            "When the first information about the event was received");
  return std::move(b).Build();
}

TEST(BuildProfileTest, NameNormalizationAndTokens) {
  schema::Schema s = SourceSchema();
  PreprocessOptions opts;
  auto id = *s.FindByPath("ALL_EVENT_VITALS.DATE_BEGIN_156");
  ElementProfile p = BuildProfile(s.element(id), opts);
  EXPECT_EQ(p.normalized_name, "datebegin");  // Numbers dropped, flattened.
  EXPECT_EQ(p.name_tokens, (std::vector<std::string>{"date", "begin"}));
}

TEST(BuildProfileTest, AbbreviationExpansionFeedsTokens) {
  schema::Schema s = SourceSchema();
  PreprocessOptions opts;
  auto id = *s.FindByPath("ALL_EVENT_VITALS.EVT_TYP_CD");
  ElementProfile p = BuildProfile(s.element(id), opts);
  // evt→event, typ→type, cd→code, then stemming.
  EXPECT_EQ(p.name_tokens, (std::vector<std::string>{"event", "type", "code"}));
  EXPECT_EQ(p.initials, "etc");
}

TEST(BuildProfileTest, DocTokensStemmedAndStopFiltered) {
  schema::Schema s = SourceSchema();
  PreprocessOptions opts;
  auto id = *s.FindByPath("ALL_EVENT_VITALS.DATE_BEGIN_156");
  ElementProfile p = BuildProfile(s.element(id), opts);
  // "The date on which the event began" → {date, event, began→} stems.
  EXPECT_NE(std::find(p.doc_tokens.begin(), p.doc_tokens.end(), "date"),
            p.doc_tokens.end());
  EXPECT_NE(std::find(p.doc_tokens.begin(), p.doc_tokens.end(), "event"),
            p.doc_tokens.end());
  EXPECT_EQ(std::find(p.doc_tokens.begin(), p.doc_tokens.end(), "the"),
            p.doc_tokens.end());
}

TEST(BuildProfileTest, StemmingCanBeDisabled) {
  schema::Schema s("X");
  auto id = s.AddElement(schema::Schema::kRootId, "locations",
                         schema::ElementKind::kColumn);
  PreprocessOptions opts;
  opts.stem = false;
  EXPECT_EQ(BuildProfile(s.element(id), opts).name_tokens,
            (std::vector<std::string>{"locations"}));
  opts.stem = true;
  EXPECT_EQ(BuildProfile(s.element(id), opts).name_tokens,
            (std::vector<std::string>{"locat"}));
}

TEST(ProfilePairTest, BuildsProfilesForAllElements) {
  schema::Schema a = SourceSchema();
  schema::Schema b = TargetSchema();
  ProfilePair profiles(a, b, PreprocessOptions{});
  for (auto id : a.AllElementIds()) {
    EXPECT_EQ(profiles.source_profile(id).id, id);
  }
  for (auto id : b.AllElementIds()) {
    EXPECT_EQ(profiles.target_profile(id).id, id);
  }
}

TEST(ProfilePairTest, JointCorpusCoversBothSides) {
  schema::Schema a = SourceSchema();
  schema::Schema b = TargetSchema();
  ProfilePair profiles(a, b, PreprocessOptions{});
  // 4 documented elements in A (incl. table) + 2 in B.
  EXPECT_EQ(profiles.corpus().document_count(), 5u);
  EXPECT_TRUE(profiles.corpus().finalized());
}

TEST(ProfilePairTest, StructuralContextPopulated) {
  schema::Schema a = SourceSchema();
  schema::Schema b = TargetSchema();
  ProfilePair profiles(a, b, PreprocessOptions{});
  auto col = *a.FindByPath("ALL_EVENT_VITALS.DATE_BEGIN_156");
  auto table = *a.FindByPath("ALL_EVENT_VITALS");
  // The column's parent tokens are the table's tokens.
  EXPECT_EQ(profiles.source_profile(col).parent_tokens,
            profiles.source_profile(table).sorted_name_tokens);
  // The table's children tokens include the columns' words.
  const auto& kids = profiles.source_profile(table).children_tokens;
  EXPECT_NE(std::find(kids.begin(), kids.end(), "date"), kids.end());
  // Depth-1 containers have no parent tokens (parent is the root).
  EXPECT_TRUE(profiles.source_profile(table).parent_tokens.empty());
}

TEST(SortedJaccardTest, Basics) {
  EXPECT_DOUBLE_EQ(SortedJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SortedJaccard({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SortedJaccard({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_NEAR(SortedJaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace harmony::core
