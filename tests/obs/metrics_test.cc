#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace harmony::obs {
namespace {

TEST(MetricsRegistryTest, CounterAddAndSnapshot) {
  MetricsRegistry registry;
  uint32_t hits = registry.CounterId("hits");
  registry.Add(hits);
  registry.Add(hits, 41);

  MetricsSnapshot snap = registry.Snapshot();
  const CounterSnapshot* c = snap.FindCounter("hits");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 42u);
  EXPECT_EQ(snap.FindCounter("misses"), nullptr);
}

TEST(MetricsRegistryTest, IdsAreIdempotentPerName) {
  MetricsRegistry registry;
  uint32_t a = registry.CounterId("same");
  uint32_t b = registry.CounterId("same");
  uint32_t other = registry.CounterId("other");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);

  EXPECT_EQ(registry.HistogramId("h"), registry.HistogramId("h"));
  EXPECT_EQ(registry.GaugeId("g"), registry.GaugeId("g"));
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  uint32_t g = registry.GaugeId("pool.workers");
  registry.GaugeSet(g, 8);
  registry.GaugeAdd(g, -3);

  const GaugeSnapshot* gs = registry.Snapshot().FindGauge("pool.workers");
  ASSERT_NE(gs, nullptr);
  EXPECT_EQ(gs->value, 5);
}

TEST(MetricsRegistryTest, HistogramBucketsByBitWidth) {
  MetricsRegistry registry;
  uint32_t h = registry.HistogramId("latency");
  registry.Record(h, 0);   // bucket 0
  registry.Record(h, 1);   // bucket 1
  registry.Record(h, 2);   // bucket 2
  registry.Record(h, 3);   // bucket 2
  registry.Record(h, 1000);  // bucket 10 (bit_width(1000) == 10)

  const HistogramSnapshot* hs = registry.Snapshot().FindHistogram("latency");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 5u);
  EXPECT_EQ(hs->sum, 1006u);
  EXPECT_EQ(hs->buckets[0], 1u);
  EXPECT_EQ(hs->buckets[1], 1u);
  EXPECT_EQ(hs->buckets[2], 2u);
  EXPECT_EQ(hs->buckets[10], 1u);
  EXPECT_DOUBLE_EQ(hs->Mean(), 1006.0 / 5.0);
  // The median falls in bucket 2, whose upper bound is 3.
  EXPECT_EQ(hs->PercentileUpperBound(0.5), 3u);
  // p100 lands in the bucket holding 1000: values up to 1023.
  EXPECT_EQ(hs->PercentileUpperBound(1.0), 1023u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry registry;
  uint32_t c = registry.CounterId("c");
  uint32_t g = registry.GaugeId("g");
  uint32_t h = registry.HistogramId("h");
  registry.Add(c, 7);
  registry.GaugeSet(g, 9);
  registry.Record(h, 100);

  registry.Reset();

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.FindCounter("c"), nullptr);
  EXPECT_EQ(snap.FindCounter("c")->value, 0u);
  ASSERT_NE(snap.FindGauge("g"), nullptr);
  EXPECT_EQ(snap.FindGauge("g")->value, 0);
  ASSERT_NE(snap.FindHistogram("h"), nullptr);
  EXPECT_EQ(snap.FindHistogram("h")->count, 0u);
  // Ids survive a reset.
  EXPECT_EQ(registry.CounterId("c"), c);
  registry.Add(c, 3);
  EXPECT_EQ(registry.Snapshot().FindCounter("c")->value, 3u);
}

TEST(MetricsRegistryTest, RendersTextAndJson) {
  MetricsRegistry registry;
  registry.Add(registry.CounterId("engine.cells"), 12);
  registry.GaugeSet(registry.GaugeId("pool.workers"), 4);
  registry.Record(registry.HistogramId("ns"), 64);

  MetricsSnapshot snap = registry.Snapshot();
  std::string text = snap.ToText();
  EXPECT_NE(text.find("engine.cells"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);

  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.cells\":12"), std::string::npos);
  EXPECT_NE(json.find("\"pool.workers\":4"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// Handle classes are inert stubs under -DHARMONY_OBS=OFF; the registry
// itself (tested above) is always live.
#if HARMONY_OBS_ENABLED

TEST(MetricsRegistryTest, GlobalHandlesAccumulate) {
  // Handles against the global registry — the instrumentation-site idiom.
  static Counter counter("metrics_test.global_counter");
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  const CounterSnapshot* b = before.FindCounter("metrics_test.global_counter");
  uint64_t base = b == nullptr ? 0 : b->value;

  counter.Add(5);

  const CounterSnapshot* a = MetricsRegistry::Global().Snapshot().FindCounter(
      "metrics_test.global_counter");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value, base + 5);
}

TEST(MetricsRegistryTest, ScopedLatencyRecordsOneSample) {
  static Histogram hist("metrics_test.scoped_latency_ns");
  const HistogramSnapshot* before =
      MetricsRegistry::Global().Snapshot().FindHistogram(
          "metrics_test.scoped_latency_ns");
  uint64_t base = before == nullptr ? 0 : before->count;
  { ScopedLatency timer(hist); }
  const HistogramSnapshot* after =
      MetricsRegistry::Global().Snapshot().FindHistogram(
          "metrics_test.scoped_latency_ns");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->count, base + 1);
}

#endif  // HARMONY_OBS_ENABLED

// The TSan target: N threads hammer M counters and one histogram while the
// main thread snapshots mid-flight. Snapshots must be internally sane and
// the final merged totals exact.
TEST(MetricsRegistryTest, ConcurrentAddsAndSnapshots) {
  constexpr int kThreads = 8;
  constexpr int kCounters = 16;
  constexpr uint64_t kIncrementsEach = 20000;

  MetricsRegistry registry;
  std::vector<uint32_t> ids;
  for (int m = 0; m < kCounters; ++m) {
    ids.push_back(registry.CounterId("c" + std::to_string(m)));
  }
  uint32_t hist = registry.HistogramId("concurrent.values");

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kIncrementsEach; ++i) {
        registry.Add(ids[i % kCounters]);
        registry.Record(hist, i);
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Snapshot while writers are running: totals may lag but never exceed the
  // final value, and the histogram invariant count == sum(buckets) holds.
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    for (int m = 0; m < kCounters; ++m) {
      const CounterSnapshot* c = snap.FindCounter("c" + std::to_string(m));
      ASSERT_NE(c, nullptr);
      EXPECT_LE(c->value, kThreads * kIncrementsEach / kCounters);
    }
    const HistogramSnapshot* h = snap.FindHistogram("concurrent.values");
    ASSERT_NE(h, nullptr);
    uint64_t bucket_total = 0;
    for (uint64_t b : h->buckets) bucket_total += b;
    EXPECT_EQ(h->count, bucket_total);
  }

  for (std::thread& t : threads) t.join();

  MetricsSnapshot final_snap = registry.Snapshot();
  for (int m = 0; m < kCounters; ++m) {
    const CounterSnapshot* c = final_snap.FindCounter("c" + std::to_string(m));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, kThreads * kIncrementsEach / kCounters);
  }
  const HistogramSnapshot* h = final_snap.FindHistogram("concurrent.values");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kIncrementsEach);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<uint32_t> first_id(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Everyone races to register the same names; ids must agree.
      first_id[t] = registry.CounterId("shared.counter");
      for (int i = 0; i < 100; ++i) {
        registry.Add(registry.CounterId("shared.counter"));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(first_id[t], first_id[0]);
  EXPECT_EQ(registry.Snapshot().FindCounter("shared.counter")->value,
            kThreads * 100u);
}

TEST(MonotonicNanosTest, IsMonotonic) {
  uint64_t a = MonotonicNanos();
  uint64_t b = MonotonicNanos();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace harmony::obs
