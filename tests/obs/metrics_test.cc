#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace harmony::obs {
namespace {

TEST(MetricsRegistryTest, CounterAddAndSnapshot) {
  MetricsRegistry registry;
  uint32_t hits = registry.CounterId("hits");
  registry.Add(hits);
  registry.Add(hits, 41);

  MetricsSnapshot snap = registry.Snapshot();
  const CounterSnapshot* c = snap.FindCounter("hits");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 42u);
  EXPECT_EQ(snap.FindCounter("misses"), nullptr);
}

TEST(MetricsRegistryTest, IdsAreIdempotentPerName) {
  MetricsRegistry registry;
  uint32_t a = registry.CounterId("same");
  uint32_t b = registry.CounterId("same");
  uint32_t other = registry.CounterId("other");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);

  EXPECT_EQ(registry.HistogramId("h"), registry.HistogramId("h"));
  EXPECT_EQ(registry.GaugeId("g"), registry.GaugeId("g"));
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  uint32_t g = registry.GaugeId("pool.workers");
  registry.GaugeSet(g, 8);
  registry.GaugeAdd(g, -3);

  MetricsSnapshot snap = registry.Snapshot();
  const GaugeSnapshot* gs = snap.FindGauge("pool.workers");
  ASSERT_NE(gs, nullptr);
  EXPECT_EQ(gs->value, 5);
}

TEST(MetricsRegistryTest, HistogramBucketsByBitWidth) {
  MetricsRegistry registry;
  uint32_t h = registry.HistogramId("latency");
  registry.Record(h, 0);   // bucket 0
  registry.Record(h, 1);   // bucket 1
  registry.Record(h, 2);   // bucket 2
  registry.Record(h, 3);   // bucket 2
  registry.Record(h, 1000);  // bucket 10 (bit_width(1000) == 10)

  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* hs = snap.FindHistogram("latency");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 5u);
  EXPECT_EQ(hs->sum, 1006u);
  EXPECT_EQ(hs->buckets[0], 1u);
  EXPECT_EQ(hs->buckets[1], 1u);
  EXPECT_EQ(hs->buckets[2], 2u);
  EXPECT_EQ(hs->buckets[10], 1u);
  EXPECT_DOUBLE_EQ(hs->Mean(), 1006.0 / 5.0);
  // The median falls in bucket 2, whose upper bound is 3.
  EXPECT_EQ(hs->PercentileUpperBound(0.5), 3u);
  // p100 lands in the bucket holding 1000: values up to 1023.
  EXPECT_EQ(hs->PercentileUpperBound(1.0), 1023u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry registry;
  uint32_t c = registry.CounterId("c");
  uint32_t g = registry.GaugeId("g");
  uint32_t h = registry.HistogramId("h");
  registry.Add(c, 7);
  registry.GaugeSet(g, 9);
  registry.Record(h, 100);

  registry.Reset();

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.FindCounter("c"), nullptr);
  EXPECT_EQ(snap.FindCounter("c")->value, 0u);
  ASSERT_NE(snap.FindGauge("g"), nullptr);
  EXPECT_EQ(snap.FindGauge("g")->value, 0);
  ASSERT_NE(snap.FindHistogram("h"), nullptr);
  EXPECT_EQ(snap.FindHistogram("h")->count, 0u);
  // Ids survive a reset.
  EXPECT_EQ(registry.CounterId("c"), c);
  registry.Add(c, 3);
  EXPECT_EQ(registry.Snapshot().FindCounter("c")->value, 3u);
}

TEST(MetricsRegistryTest, RendersTextAndJson) {
  MetricsRegistry registry;
  registry.Add(registry.CounterId("engine.cells"), 12);
  registry.GaugeSet(registry.GaugeId("pool.workers"), 4);
  registry.Record(registry.HistogramId("ns"), 64);

  MetricsSnapshot snap = registry.Snapshot();
  std::string text = snap.ToText();
  EXPECT_NE(text.find("engine.cells"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);

  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.cells\":12"), std::string::npos);
  EXPECT_NE(json.find("\"pool.workers\":4"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// Handle classes are inert stubs under -DHARMONY_OBS=OFF; the registry
// itself (tested above) is always live.
#if HARMONY_OBS_ENABLED

TEST(MetricsRegistryTest, RegistryBoundHandlesAccumulate) {
  // Handles bound to an explicit registry — the instrumentation-site idiom
  // (the registry arrives through the caller's EngineContext).
  MetricsRegistry registry;
  Counter counter(registry, "metrics_test.counter");
  Gauge gauge(registry, "metrics_test.gauge");

  counter.Add(5);
  gauge.Set(7);
  gauge.Add(-2);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.FindCounter("metrics_test.counter"), nullptr);
  EXPECT_EQ(snap.FindCounter("metrics_test.counter")->value, 5u);
  ASSERT_NE(snap.FindGauge("metrics_test.gauge"), nullptr);
  EXPECT_EQ(snap.FindGauge("metrics_test.gauge")->value, 5);
}

TEST(MetricsRegistryTest, ScopedLatencyRecordsOneSample) {
  MetricsRegistry registry;
  Histogram hist(registry, "metrics_test.scoped_latency_ns");
  { ScopedLatency timer(hist); }
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* after =
      snap.FindHistogram("metrics_test.scoped_latency_ns");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->count, 1u);
}

#endif  // HARMONY_OBS_ENABLED

// The TSan target: N threads hammer M counters and one histogram while the
// main thread snapshots mid-flight. Snapshots must be internally sane and
// the final merged totals exact.
// Builds "c<m>" without std::string::operator+, which trips a GCC 12
// -Wrestrict false positive (PR105329) when inlined at -O3.
std::string CounterName(int m) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "c%d", m);
  return buf;
}

TEST(MetricsRegistryTest, ConcurrentAddsAndSnapshots) {
  constexpr int kThreads = 8;
  constexpr int kCounters = 16;
  constexpr uint64_t kIncrementsEach = 20000;

  MetricsRegistry registry;
  std::vector<uint32_t> ids;
  for (int m = 0; m < kCounters; ++m) {
    ids.push_back(registry.CounterId(CounterName(m)));
  }
  uint32_t hist = registry.HistogramId("concurrent.values");

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kIncrementsEach; ++i) {
        registry.Add(ids[i % kCounters]);
        registry.Record(hist, i);
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Snapshot while writers are running: totals may lag but never exceed the
  // final value, and the histogram invariant count == sum(buckets) holds.
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    for (int m = 0; m < kCounters; ++m) {
      const CounterSnapshot* c = snap.FindCounter(CounterName(m));
      ASSERT_NE(c, nullptr);
      EXPECT_LE(c->value, kThreads * kIncrementsEach / kCounters);
    }
    const HistogramSnapshot* h = snap.FindHistogram("concurrent.values");
    ASSERT_NE(h, nullptr);
    uint64_t bucket_total = 0;
    for (uint64_t b : h->buckets) bucket_total += b;
    EXPECT_EQ(h->count, bucket_total);
  }

  for (std::thread& t : threads) t.join();

  MetricsSnapshot final_snap = registry.Snapshot();
  for (int m = 0; m < kCounters; ++m) {
    const CounterSnapshot* c = final_snap.FindCounter(CounterName(m));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, kThreads * kIncrementsEach / kCounters);
  }
  const HistogramSnapshot* h = final_snap.FindHistogram("concurrent.values");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kIncrementsEach);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<uint32_t> first_id(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Everyone races to register the same names; ids must agree.
      first_id[t] = registry.CounterId("shared.counter");
      for (int i = 0; i < 100; ++i) {
        registry.Add(registry.CounterId("shared.counter"));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(first_id[t], first_id[0]);
  EXPECT_EQ(registry.Snapshot().FindCounter("shared.counter")->value,
            kThreads * 100u);
}

TEST(MetricsRegistryTest, ChildFlushToParentMergesLosslessly) {
  MetricsRegistry root;
  MetricsRegistry child(&root);
  EXPECT_EQ(child.parent(), &root);

  // Pre-existing root activity the child must add to, not overwrite.
  root.Add(root.CounterId("shared.counter"), 10);

  child.Add(child.CounterId("shared.counter"), 3);
  child.Add(child.CounterId("child.only"), 2);
  child.GaugeAdd(child.GaugeId("g"), 4);
  child.Record(child.HistogramId("h"), 100);
  child.Record(child.HistogramId("h"), 1000);

  // Child writes stay private until the flush.
  EXPECT_EQ(root.Snapshot().FindCounter("shared.counter")->value, 10u);
  EXPECT_EQ(root.Snapshot().FindCounter("child.only"), nullptr);

  MetricsSnapshot delta = child.FlushToParent();
  EXPECT_EQ(delta.FindCounter("shared.counter")->value, 3u);
  // Gauge levels ride along in the returned delta for export...
  EXPECT_EQ(delta.FindGauge("g")->value, 4);

  MetricsSnapshot merged = root.Snapshot();
  EXPECT_EQ(merged.FindCounter("shared.counter")->value, 13u);
  EXPECT_EQ(merged.FindCounter("child.only")->value, 2u);
  // ...but stay with the child: a gauge is a level owned by its writer, so
  // flushing must neither relocate it to the root nor zero it (repeated
  // flushes would otherwise double-count, and the writer's eventual
  // decrement would drive the child negative).
  EXPECT_EQ(merged.FindGauge("g"), nullptr);
  EXPECT_EQ(child.Snapshot().FindGauge("g")->value, 4);
  ASSERT_NE(merged.FindHistogram("h"), nullptr);
  EXPECT_EQ(merged.FindHistogram("h")->count, 2u);
  EXPECT_EQ(merged.FindHistogram("h")->sum, 1100u);

  // The flush drained the child: a second flush moves nothing.
  EXPECT_EQ(child.Snapshot().FindCounter("child.only")->value, 0u);
  child.FlushToParent();
  EXPECT_EQ(root.Snapshot().FindCounter("child.only")->value, 2u);

  // And the child keeps working after a flush.
  child.Add(child.CounterId("child.only"), 5);
  child.FlushToParent();
  EXPECT_EQ(root.Snapshot().FindCounter("child.only")->value, 7u);
}

// The registry-tree TSan target: writers hammer a child while another
// thread repeatedly flushes it into the root. Every increment must land in
// the root exactly once (drain is exchange-based, so nothing is lost or
// double-counted).
TEST(MetricsRegistryTest, ConcurrentFlushIsLossless) {
  constexpr int kWriters = 4;
  constexpr uint64_t kIncrementsEach = 20000;

  MetricsRegistry root;
  MetricsRegistry child(&root);
  uint32_t id = child.CounterId("flush.counter");
  uint32_t hist = child.HistogramId("flush.values");

  std::atomic<bool> done{false};
  std::thread flusher([&] {
    while (!done.load(std::memory_order_acquire)) {
      child.FlushToParent();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kIncrementsEach; ++i) {
        child.Add(id);
        child.Record(hist, i);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  flusher.join();
  child.FlushToParent();  // whatever the racing flusher missed

  MetricsSnapshot final_snap = root.Snapshot();
  ASSERT_NE(final_snap.FindCounter("flush.counter"), nullptr);
  EXPECT_EQ(final_snap.FindCounter("flush.counter")->value,
            kWriters * kIncrementsEach);
  const HistogramSnapshot* h = final_snap.FindHistogram("flush.values");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kWriters * kIncrementsEach);
  uint64_t bucket_total = 0;
  for (uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(h->count, bucket_total);
}

TEST(MetricsSnapshotTest, DeltaFromSubtractsByName) {
  MetricsRegistry registry;
  uint32_t c = registry.CounterId("c");
  uint32_t g = registry.GaugeId("g");
  uint32_t h = registry.HistogramId("h");

  registry.Add(c, 10);
  registry.GaugeSet(g, 3);
  registry.Record(h, 4);
  MetricsSnapshot baseline = registry.Snapshot();

  registry.Add(c, 7);
  registry.GaugeSet(g, 9);
  registry.Record(h, 4);
  registry.Record(h, 1000);
  registry.Add(registry.CounterId("new.counter"), 2);

  MetricsSnapshot delta = registry.DeltaSince(baseline);
  EXPECT_EQ(delta.FindCounter("c")->value, 7u);
  // Gauges are levels, not rates: the delta report carries the current value.
  EXPECT_EQ(delta.FindGauge("g")->value, 9);
  const HistogramSnapshot* hd = delta.FindHistogram("h");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, 2u);
  EXPECT_EQ(hd->sum, 1004u);
  // Metrics absent from the baseline pass through whole.
  EXPECT_EQ(delta.FindCounter("new.counter")->value, 2u);

  // A baseline from elsewhere (larger values) clamps at zero, never wraps.
  MetricsSnapshot inflated = baseline;
  inflated.counters[0].value = 1u << 30;
  MetricsSnapshot clamped = registry.DeltaSince(inflated);
  EXPECT_EQ(clamped.FindCounter("c")->value, 0u);

  // An inflated histogram baseline zeroes the whole histogram delta — a
  // half-clamped one would leave sum and count disagreeing and skew Mean().
  MetricsSnapshot inflated_hist = registry.Snapshot();
  for (auto& hist : inflated_hist.histograms) hist.sum += 5000;
  MetricsSnapshot hist_clamped = registry.DeltaSince(inflated_hist);
  const HistogramSnapshot* hc = hist_clamped.FindHistogram("h");
  ASSERT_NE(hc, nullptr);
  EXPECT_EQ(hc->sum, 0u);
  EXPECT_EQ(hc->count, 0u);
  EXPECT_EQ(hc->Mean(), 0.0);
  uint64_t bucket_total = 0;
  for (uint64_t b : hc->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 0u);
}

TEST(MetricsSnapshotTest, JsonAndTextEscapeAwkwardNames) {
  MetricsRegistry registry;
  // Names an exporter must not choke on: quotes, backslashes, newlines,
  // control characters.
  const std::string awkward = "weird\"name\\with\nnasties\x01";
  registry.Add(registry.CounterId(awkward), 1);
  registry.Record(registry.HistogramId("h\"ist"), 5);

  MetricsSnapshot snap = registry.Snapshot();
  std::string json = snap.ToJson();
  // The raw quote/newline must never appear unescaped inside the JSON.
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnasties\\u0001"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"h\\\"ist\""), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << "raw newline leaked";

  // ToText is line-oriented prose; it just needs to mention the name.
  std::string text = snap.ToText();
  EXPECT_NE(text.find("weird"), std::string::npos);
}

TEST(MetricsSnapshotTest, ToMetricsTextRendersPrometheusExposition) {
  MetricsRegistry registry;
  registry.Add(registry.CounterId("service.requests.ping"), 3);
  registry.GaugeSet(registry.GaugeId("service.sessions"), -2);
  uint32_t h = registry.HistogramId("service.handler_ns.match");
  registry.Record(h, 0);    // bucket 0, le="0"
  registry.Record(h, 5);    // bit_width 3, le="7"
  registry.Record(h, 900);  // bit_width 10, le="1023"

  std::string text = registry.Snapshot().ToMetricsText();
  // Dots sanitize to underscores; every sample line has a # TYPE header.
  EXPECT_NE(text.find("# TYPE service_requests_ping counter\n"
                      "service_requests_ping 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE service_sessions gauge\nservice_sessions -2\n"),
            std::string::npos)
      << text;
  // Histogram buckets render cumulatively with the bit-width upper bounds,
  // closed by the canonical +Inf / _sum / _count triple.
  EXPECT_NE(text.find("# TYPE service_handler_ns_match histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("service_handler_ns_match_bucket{le=\"0\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("service_handler_ns_match_bucket{le=\"7\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("service_handler_ns_match_bucket{le=\"1023\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("service_handler_ns_match_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("service_handler_ns_match_sum 905\n"), std::string::npos);
  EXPECT_NE(text.find("service_handler_ns_match_count 3\n"),
            std::string::npos);

  // A name that starts with a digit gets a guard prefix rather than
  // producing an invalid exposition identifier.
  registry.Add(registry.CounterId("9lives"), 1);
  EXPECT_NE(registry.Snapshot().ToMetricsText().find("_9lives 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, DeltaSinceStaysConsistentUnderConcurrentChildFlush) {
  // The service pattern: every request opens a child registry and flushes it
  // whole at completion, while an interval exporter tiles the timeline with
  // snapshot deltas. Each interval must be internally consistent (histogram
  // count equals its bucket mass) and the tiled intervals must sum to the
  // exact total — FlushToParent is atomic per metric, not per registry, so
  // this is the property that would break if Snapshot tore a flush apart.
  constexpr int kWriters = 3;
  constexpr int kRoundsEach = 200;
  constexpr uint64_t kSample = 6;  // constant, so sum == count * kSample

  MetricsRegistry root;
  std::atomic<bool> done{false};

  MetricsSnapshot baseline;  // empty: the first interval is everything so far
  uint64_t tiled_count = 0;
  uint64_t tiled_hist_count = 0;
  uint64_t tiled_hist_sum = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      // DeltaSince races the flushes directly; its interval must never show
      // a histogram whose count disagrees with its bucket mass (sum may
      // legitimately straddle an interval boundary by one in-flight sample,
      // so only the final telescoped totals pin it down).
      MetricsSnapshot ds = root.DeltaSince(baseline);
      if (const HistogramSnapshot* hd = ds.FindHistogram("req.ns")) {
        uint64_t bucket_total = 0;
        for (uint64_t b : hd->buckets) bucket_total += b;
        EXPECT_EQ(hd->count, bucket_total);
      }
      // Tile: snapshot once, delta against the previous snapshot, advance.
      MetricsSnapshot cur = root.Snapshot();
      MetricsSnapshot delta = cur.DeltaFrom(baseline);
      if (const CounterSnapshot* c = delta.FindCounter("req.count")) {
        tiled_count += c->value;
      }
      if (const HistogramSnapshot* hd = delta.FindHistogram("req.ns")) {
        tiled_hist_count += hd->count;
        tiled_hist_sum += hd->sum;
      }
      baseline = std::move(cur);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kRoundsEach; ++i) {
        MetricsRegistry child(&root);
        child.Add(child.CounterId("req.count"));
        child.Record(child.HistogramId("req.ns"), kSample);
        child.FlushToParent();
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // The closing interval picks up whatever the reader had not seen yet.
  MetricsSnapshot tail = root.DeltaSince(baseline);
  if (const CounterSnapshot* c = tail.FindCounter("req.count")) {
    tiled_count += c->value;
  }
  if (const HistogramSnapshot* hd = tail.FindHistogram("req.ns")) {
    tiled_hist_count += hd->count;
    tiled_hist_sum += hd->sum;
  }

  constexpr uint64_t kTotal = uint64_t(kWriters) * kRoundsEach;
  EXPECT_EQ(tiled_count, kTotal);
  EXPECT_EQ(tiled_hist_count, kTotal);
  EXPECT_EQ(tiled_hist_sum, kTotal * kSample);
}

TEST(MonotonicNanosTest, IsMonotonic) {
  uint64_t a = MonotonicNanos();
  uint64_t b = MonotonicNanos();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace harmony::obs
