// PeriodicDeltaExporter: the interval exporter behind `--stats-interval`.
// The contract under test is the shutdown tail — however short the run and
// however long the interval, Finish() emits exactly one closing delta, and
// doing so twice (Finish then destructor) emits nothing extra.

#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "obs/delta_export.h"
#include "obs/metrics.h"

namespace harmony::obs {
namespace {

std::string ReadAll(std::FILE* f) {
  std::fflush(f);
  long size = std::ftell(f);
  std::rewind(f);
  std::string out(size > 0 ? static_cast<size_t>(size) : 0, '\0');
  size_t n = std::fread(out.data(), 1, out.size(), f);
  out.resize(n);
  return out;
}

size_t CountLinesStartingWith(const std::string& text, const std::string& p) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = text.find(p, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') ++count;
    pos += p.size();
  }
  return count;
}

TEST(DeltaExporterTest, NonPositiveIntervalIsInert) {
  MetricsRegistry registry;
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  {
    PeriodicDeltaExporter exporter(registry, /*interval_ms=*/0, sink);
    registry.Add(registry.CounterId("c"), 3);
    exporter.Finish();
  }  // destructor must also stay silent
  EXPECT_EQ(ReadAll(sink), "");
  std::fclose(sink);
}

TEST(DeltaExporterTest, FinishEmitsTheTailIntervalExactlyOnce) {
  MetricsRegistry registry;
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  {
    // An interval far beyond the test's lifetime: the only way a delta line
    // can appear is the guaranteed tail at Finish().
    PeriodicDeltaExporter exporter(registry, /*interval_ms=*/3'600'000, sink);
    registry.Add(registry.CounterId("req"), 5);
    exporter.Finish();
    exporter.Finish();  // idempotent; the destructor adds a third call
  }
  std::string out = ReadAll(sink);
  EXPECT_EQ(CountLinesStartingWith(out, "stats-delta {"), 1u) << out;
  EXPECT_NE(out.find("\"req\":5"), std::string::npos) << out;
  std::fclose(sink);
}

TEST(DeltaExporterTest, TailCoversOnlyTheLastInterval) {
  MetricsRegistry registry;
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  uint32_t c = registry.CounterId("req");
  registry.Add(c, 7);  // before the exporter exists: not part of any interval
  {
    PeriodicDeltaExporter exporter(registry, /*interval_ms=*/3'600'000, sink);
    registry.Add(c, 2);
    exporter.Finish();
  }
  std::string out = ReadAll(sink);
  EXPECT_NE(out.find("\"req\":2"), std::string::npos) << out;
  std::fclose(sink);
}

}  // namespace
}  // namespace harmony::obs
