#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/match_engine.h"
#include "schema/builder.h"

namespace harmony::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON syntax checker (values, objects, arrays, strings, numbers,
// literals) — enough to prove the export is well-formed without a JSON
// dependency. Returns true iff `s` is exactly one valid JSON value.
// ---------------------------------------------------------------------------
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

#if HARMONY_OBS_ENABLED

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// Distinct values of a numeric field like "tid": across the export.
std::set<std::string> DistinctFieldValues(const std::string& json,
                                          const std::string& field) {
  std::set<std::string> values;
  std::string key = "\"" + field + "\":";
  for (size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + key.size())) {
    size_t start = pos + key.size();
    size_t end = start;
    while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
    values.insert(json.substr(start, end - start));
  }
  return values;
}

schema::Schema SmallRelational(const std::string& name) {
  schema::RelationalBuilder b(name);
  auto person = b.Table("PERSON", "A person known to the system");
  b.Column(person, "LAST_NAME", schema::DataType::kString, "Surname");
  b.Column(person, "BIRTH_DT", schema::DataType::kDate, "Date of birth");
  auto vehicle = b.Table("VEHICLE", "A ground vehicle");
  b.Column(vehicle, "VIN", schema::DataType::kString, "Vehicle id number");
  return std::move(b).Build();
}

#endif  // HARMONY_OBS_ENABLED

TEST(TracerTest, DisabledTracingEmitsNothing) {
  Tracer tracer;
  tracer.Start();
  tracer.Stop();  // clears, then disables: buffers empty from here
  size_t before = tracer.event_count();
  {
    HARMONY_TRACE_SPAN(&tracer, "trace_test/should_not_appear");
  }
  EXPECT_EQ(tracer.event_count(), before);
#if HARMONY_OBS_ENABLED
  EXPECT_FALSE(tracer.enabled());
#endif
}

#if HARMONY_OBS_ENABLED

TEST(TracerTest, ExportIsValidChromeTraceJson) {
  Tracer tracer;
  tracer.Start();
  tracer.SetThreadName("trace-test-main");
  {
    HARMONY_TRACE_SPAN(&tracer, "trace_test/outer");
    {
      HARMONY_TRACE_SPAN(&tracer, "trace_test/inner");
    }
  }
  std::thread worker([&] {
    tracer.SetThreadName("trace-test-worker");
    HARMONY_TRACE_SPAN(&tracer, "trace_test/worker_span");
  });
  worker.join();
  tracer.Stop();

  ASSERT_GE(tracer.event_count(), 3u);
  std::string json = tracer.ExportChromeTrace();

  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Chrome trace-event envelope and required per-event keys.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_GE(CountOccurrences(json, "\"ph\":\"X\""), 3u);
  EXPECT_GE(CountOccurrences(json, "\"ts\":"), 3u);
  EXPECT_GE(CountOccurrences(json, "\"dur\":"), 3u);
  EXPECT_GE(CountOccurrences(json, "\"tid\":"), 3u);
  // Two threads → two distinct tracks with their names attached.
  EXPECT_GE(DistinctFieldValues(json, "tid").size(), 2u);
  EXPECT_GE(CountOccurrences(json, "\"thread_name\""), 2u);
  EXPECT_NE(json.find("trace-test-main"), std::string::npos);
  EXPECT_NE(json.find("trace-test-worker"), std::string::npos);
  EXPECT_NE(json.find("trace_test/inner"), std::string::npos);
}

TEST(TracerTest, SpanArgsExportAsChromeTraceArgs) {
  Tracer tracer;
  tracer.Start();
  {
    // The service request span shape: id + family ride along as args, and
    // a plain span nested inside stays arg-free.
    HARMONY_TRACE_SPAN_ARGS(&tracer, "trace_test/request", 42, "match");
    {
      HARMONY_TRACE_SPAN(&tracer, "trace_test/nested");
    }
  }
  tracer.Emit("trace_test/retro", 1000, 2000, /*arg_id=*/7,
              /*arg_family=*/"ping");
  tracer.Stop();

  std::string json = tracer.ExportChromeTrace();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"args\":{\"id\":42,\"family\":\"match\"}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\":{\"id\":7,\"family\":\"ping\"}"),
            std::string::npos)
      << json;
  // Exactly the two arg-carrying events render id/family args; the nested
  // plain span must not grow one (metadata events carry their own "args").
  EXPECT_EQ(CountOccurrences(json, "\"args\":{\"id\":"), 2u);
  EXPECT_NE(json.find("trace_test/nested"), std::string::npos);
}

TEST(TracerTest, StartDiscardsEarlierEvents) {
  Tracer tracer;
  tracer.Start();
  {
    HARMONY_TRACE_SPAN(&tracer, "trace_test/stale");
  }
  EXPECT_GE(tracer.event_count(), 1u);
  tracer.Start();  // restart clears the buffers
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.ExportChromeTrace().find("trace_test/stale"),
            std::string::npos);
}

TEST(TracerTest, EnginePipelineProducesNamedSpans) {
  schema::Schema sa = SmallRelational("SA");
  schema::Schema sb = SmallRelational("SB");

  // An injected tracer: the whole pipeline's spans land here, not on the
  // global tracer.
  Tracer tracer;
  MetricsRegistry registry;
  core::EngineContext context(&registry, &tracer);
  tracer.Start();
  core::MatchEngine engine(sa, sb, {}, context);
  core::MatchMatrix refined = engine.ComputeRefinedMatrix();
  core::SelectGreedyOneToOne(refined, 0.3, engine.context());
  tracer.Stop();

  std::string json = tracer.ExportChromeTrace();
  EXPECT_TRUE(JsonChecker(json).Valid());
  // The acceptance bar: at least four distinct pipeline span names.
  EXPECT_NE(json.find("engine/preprocess"), std::string::npos);
  EXPECT_NE(json.find("engine/compute_matrix"), std::string::npos);
  EXPECT_NE(json.find("engine/score_rows"), std::string::npos);
  EXPECT_NE(json.find("engine/propagate"), std::string::npos);
  EXPECT_NE(json.find("select/greedy_1to1"), std::string::npos);
}

TEST(TracerTest, WriteChromeTraceCreatesReadableFile) {
  Tracer tracer;
  tracer.Start();
  {
    HARMONY_TRACE_SPAN(&tracer, "trace_test/file_span");
  }
  tracer.Stop();

  std::string path = ::testing::TempDir() + "/harmony_trace_test.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_EQ(contents, tracer.ExportChromeTrace());
  EXPECT_TRUE(JsonChecker(contents).Valid());
}

TEST(TracerTest, EmptyTraceIsStillValidJson) {
  Tracer tracer;
  tracer.Start();
  tracer.Stop();
  std::string json = tracer.ExportChromeTrace();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// Two live tracers on the same thread: spans go to the tracer they were
// opened on, never the other (the per-thread buffer cache is keyed by
// tracer generation).
TEST(TracerTest, ConcurrentTracersKeepEventsDisjoint) {
  Tracer a;
  Tracer b;
  a.Start();
  b.Start();
  {
    HARMONY_TRACE_SPAN(&a, "trace_test/only_in_a");
  }
  {
    HARMONY_TRACE_SPAN(&b, "trace_test/only_in_b");
    HARMONY_TRACE_SPAN(&b, "trace_test/also_in_b");
  }
  a.Stop();
  b.Stop();

  EXPECT_EQ(a.event_count(), 1u);
  EXPECT_EQ(b.event_count(), 2u);
  std::string ja = a.ExportChromeTrace();
  std::string jb = b.ExportChromeTrace();
  EXPECT_NE(ja.find("trace_test/only_in_a"), std::string::npos);
  EXPECT_EQ(ja.find("only_in_b"), std::string::npos);
  EXPECT_NE(jb.find("trace_test/only_in_b"), std::string::npos);
  EXPECT_EQ(jb.find("only_in_a"), std::string::npos);

  // Thread names are per tracer too.
  Tracer c;
  c.SetThreadName("tracer-c-main");
  c.Start();
  {
    HARMONY_TRACE_SPAN(&c, "trace_test/named_track");
  }
  c.Stop();
  EXPECT_NE(c.ExportChromeTrace().find("tracer-c-main"), std::string::npos);
  EXPECT_EQ(a.ExportChromeTrace().find("tracer-c-main"), std::string::npos);
}

// More live tracers than the thread-local buffer cache has slots (the
// concurrent-analyst scenario): two of them are guaranteed to collide on
// one cache slot. Alternating spans between the colliding pair must reuse
// each tracer's single per-thread buffer — not allocate a fresh one per
// span — so the thread keeps one named track per tracer and memory stays
// bounded.
TEST(TracerTest, CacheSlotCollisionReusesThreadBuffer) {
  // Generations are allocated sequentially, so with 9 live tracers the
  // first and the ninth are 8 apart — the cache's slot count — and collide.
  constexpr size_t kTracers = 9;
  std::vector<std::unique_ptr<Tracer>> tracers;
  for (size_t i = 0; i < kTracers; ++i) {
    tracers.push_back(std::make_unique<Tracer>());
  }
  Tracer& first = *tracers.front();
  Tracer& last = *tracers.back();
  first.SetThreadName("collision-main");
  first.Start();
  last.Start();
  constexpr size_t kAlternations = 50;
  for (size_t i = 0; i < kAlternations; ++i) {
    {
      HARMONY_TRACE_SPAN(&first, "trace_test/collide_first");
    }
    {
      HARMONY_TRACE_SPAN(&last, "trace_test/collide_last");
    }
  }
  first.Stop();
  last.Stop();

  EXPECT_EQ(first.event_count(), kAlternations);
  EXPECT_EQ(last.event_count(), kAlternations);
  // One writer thread → exactly one track (one tid, one thread_name entry)
  // per tracer, and the name set before the collisions survives them.
  std::string json_first = first.ExportChromeTrace();
  std::string json_last = last.ExportChromeTrace();
  EXPECT_EQ(DistinctFieldValues(json_first, "tid").size(), 1u) << json_first;
  EXPECT_EQ(DistinctFieldValues(json_last, "tid").size(), 1u) << json_last;
  EXPECT_EQ(CountOccurrences(json_first, "\"thread_name\""), 1u);
  EXPECT_NE(json_first.find("collision-main"), std::string::npos);
}

#endif  // HARMONY_OBS_ENABLED

}  // namespace
}  // namespace harmony::obs
