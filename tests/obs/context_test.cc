// EngineContext is the explicit seam between the match pipeline and its
// observability: two engines on separate contexts must never share a metric
// cell or a trace buffer, even when they run concurrently on the same
// thread pool — and the scores they produce must be bitwise identical to a
// serial single-engine run. These tests are TSan targets: the CI sanitizer
// matrix runs them under ThreadSanitizer.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine_context.h"
#include "core/match_engine.h"
#include "core/selection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schema/builder.h"

namespace harmony::obs {
namespace {

#if HARMONY_OBS_ENABLED

schema::Schema MakeSource() {
  schema::RelationalBuilder b("SA");
  auto person = b.Table("PERSON", "A person known to the system");
  b.Column(person, "LAST_NAME", schema::DataType::kString,
           "The surname of the person");
  b.Column(person, "FIRST_NAME", schema::DataType::kString,
           "The given name of the person");
  b.Column(person, "BIRTH_DT", schema::DataType::kDate,
           "The date on which the person was born");
  auto vehicle = b.Table("VEHICLE", "A ground vehicle");
  b.Column(vehicle, "VIN", schema::DataType::kString,
           "Vehicle identification number assigned by the maker");
  b.Column(vehicle, "FUEL_CD", schema::DataType::kString,
           "Coded fuel category");
  return std::move(b).Build();
}

schema::Schema MakeTarget() {
  schema::XmlBuilder b("SB");
  auto person = b.ComplexType("Person", "An individual tracked by the system");
  b.Element(person, "LastName", schema::DataType::kString,
            "Family name of the person");
  b.Element(person, "GivenName", schema::DataType::kString,
            "First name of the person");
  b.Element(person, "BirthDate", schema::DataType::kDate,
            "Date the person was born");
  auto veh = b.ComplexType("Conveyance", "A conveyance used for transport");
  b.Element(veh, "VehicleIdentificationNumber", schema::DataType::kString,
            "Identification number of the vehicle from the manufacturer");
  return std::move(b).Build();
}

std::vector<double> Flatten(const core::MatchMatrix& m) {
  std::vector<double> out;
  out.reserve(m.rows() * m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      out.push_back(m.GetByIndex(r, c));
    }
  }
  return out;
}

uint64_t CounterOf(const MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& c : snapshot.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

#endif  // HARMONY_OBS_ENABLED

TEST(EngineContextTest, DefaultContextBindsProcessGlobals) {
  core::EngineContext context;
  EXPECT_EQ(context.metrics, &MetricsRegistry::Global());
  EXPECT_EQ(context.tracer, &Tracer::Global());
  EXPECT_EQ(context.pool, nullptr);  // lazily resolved to ThreadPool::Shared()
}

TEST(EngineContextTest, NullMembersFallBackToGlobals) {
  common::ThreadPool pool(2);
  core::EngineContext context(nullptr, nullptr, &pool);
  EXPECT_EQ(context.metrics, &MetricsRegistry::Global());
  EXPECT_EQ(context.tracer, &Tracer::Global());
  EXPECT_EQ(&context.pool_or_shared(), &pool);

  core::EngineContext pool_only(&pool);
  EXPECT_EQ(pool_only.metrics, &MetricsRegistry::Global());
  EXPECT_EQ(pool_only.pool, &pool);
}

#if HARMONY_OBS_ENABLED

// The PR's acceptance bar: two engines on distinct contexts, run
// concurrently on a shared pool, must (a) produce bitwise-identical scores
// to a serial single-engine run, (b) keep their metric snapshots fully
// disjoint, and (c) merge losslessly into the shared root registry.
TEST(EngineContextTest, ConcurrentEnginesKeepRegistriesDisjoint) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  // Serial ground truth on its own quiet registry, single-threaded.
  MetricsRegistry baseline_registry;
  Tracer baseline_tracer;
  core::MatchOptions serial_options;
  serial_options.num_threads = 1;
  core::MatchEngine serial(
      sa, sb, serial_options,
      core::EngineContext(&baseline_registry, &baseline_tracer));
  std::vector<double> expected = Flatten(serial.ComputeMatrix());
  std::vector<double> expected_refined = Flatten(serial.ComputeRefinedMatrix());

  MetricsRegistry root;
  MetricsRegistry child_a(&root);
  MetricsRegistry child_b(&root);
  Tracer tracer_a;
  Tracer tracer_b;
  common::ThreadPool pool(4);
  core::EngineContext context_a(&child_a, &tracer_a, &pool);
  core::EngineContext context_b(&child_b, &tracer_b, &pool);

  tracer_a.Start();
  tracer_b.Start();

  core::MatchOptions options;
  options.num_threads = 4;
  std::vector<double> scores_a, scores_b;
  std::vector<double> refined_a, refined_b;
  std::thread run_a([&] {
    core::MatchEngine engine(sa, sb, options, context_a);
    scores_a = Flatten(engine.ComputeMatrix());
    refined_a = Flatten(engine.ComputeRefinedMatrix());
  });
  std::thread run_b([&] {
    core::MatchEngine engine(sa, sb, options, context_b);
    scores_b = Flatten(engine.ComputeMatrix());
    refined_b = Flatten(engine.ComputeRefinedMatrix());
  });
  run_a.join();
  run_b.join();
  tracer_a.Stop();
  tracer_b.Stop();

  // (a) Determinism: bitwise equality with the serial run.
  EXPECT_EQ(scores_a, expected);
  EXPECT_EQ(scores_b, expected);
  EXPECT_EQ(refined_a, expected_refined);
  EXPECT_EQ(refined_b, expected_refined);

  // (b) Disjoint snapshots: each child saw exactly one engine's work —
  // identical workloads, so identical (not doubled) counts.
  MetricsSnapshot snap_a = child_a.Snapshot();
  MetricsSnapshot snap_b = child_b.Snapshot();
  size_t cells = expected.size();
  // ComputeMatrix + ComputeRefinedMatrix = 2 matrices, 2·cells scored.
  EXPECT_EQ(CounterOf(snap_a, "engine.constructed"), 1u);
  EXPECT_EQ(CounterOf(snap_b, "engine.constructed"), 1u);
  EXPECT_EQ(CounterOf(snap_a, "engine.matrices_computed"), 2u);
  EXPECT_EQ(CounterOf(snap_b, "engine.matrices_computed"), 2u);
  EXPECT_EQ(CounterOf(snap_a, "engine.cells_scored"), 2 * cells);
  EXPECT_EQ(CounterOf(snap_b, "engine.cells_scored"), 2 * cells);
  // Nothing reached the root while the children held their counts.
  EXPECT_EQ(CounterOf(root.Snapshot(), "engine.cells_scored"), 0u);

  // Traces are per context too: each tracer holds its own spans.
  EXPECT_GT(tracer_a.event_count(), 0u);
  EXPECT_GT(tracer_b.event_count(), 0u);

  // (c) Lossless merge: flushing both children gives the root the sum.
  child_a.FlushToParent();
  child_b.FlushToParent();
  MetricsSnapshot merged = root.Snapshot();
  EXPECT_EQ(CounterOf(merged, "engine.constructed"), 2u);
  EXPECT_EQ(CounterOf(merged, "engine.matrices_computed"), 4u);
  EXPECT_EQ(CounterOf(merged, "engine.cells_scored"), 4 * cells);
  // And the children are drained: a second flush adds nothing.
  MetricsSnapshot second = child_a.FlushToParent();
  EXPECT_EQ(CounterOf(second, "engine.cells_scored"), 0u);
}

// Selection and the full pipeline honor the engine's context: no counter
// from a context-scoped run leaks into an unrelated registry.
TEST(EngineContextTest, PipelineWritesOnlyToItsContextRegistry) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  MetricsRegistry mine;
  MetricsRegistry other;
  Tracer tracer;
  core::EngineContext context(&mine, &tracer);

  core::MatchEngine engine(sa, sb, {}, context);
  auto links = core::SelectGreedyOneToOne(engine.ComputeRefinedMatrix(), 0.3,
                                          engine.context());
  (void)links;

  MetricsSnapshot snap = mine.Snapshot();
  EXPECT_GE(CounterOf(snap, "engine.matrices_computed"), 1u);
  EXPECT_GT(CounterOf(snap, "engine.cells_scored"), 0u);
  EXPECT_GE(CounterOf(snap, "propagation.sweeps"), 1u);

  MetricsSnapshot other_snap = other.Snapshot();
  EXPECT_EQ(other_snap.counters.size(), 0u);
}

#endif  // HARMONY_OBS_ENABLED

}  // namespace
}  // namespace harmony::obs
