// Instrumentation must be a pure observer: tracing and stats collection may
// read clocks and bump counters, but the scores coming out of the engine have
// to be bitwise identical with observability on, off, or mid-flight.

#include <gtest/gtest.h>

#include <vector>

#include "core/match_engine.h"
#include "core/selection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schema/builder.h"

namespace harmony::obs {
namespace {

schema::Schema MakeSource() {
  schema::RelationalBuilder b("SA");
  auto person = b.Table("PERSON", "A person known to the system");
  b.Column(person, "LAST_NAME", schema::DataType::kString,
           "The surname of the person");
  b.Column(person, "FIRST_NAME", schema::DataType::kString,
           "The given name of the person");
  b.Column(person, "BIRTH_DT", schema::DataType::kDate,
           "The date on which the person was born");
  auto vehicle = b.Table("VEHICLE", "A ground vehicle");
  b.Column(vehicle, "VIN", schema::DataType::kString,
           "Vehicle identification number assigned by the maker");
  b.Column(vehicle, "FUEL_CD", schema::DataType::kString,
           "Coded fuel category");
  return std::move(b).Build();
}

schema::Schema MakeTarget() {
  schema::XmlBuilder b("SB");
  auto person = b.ComplexType("Person", "An individual tracked by the system");
  b.Element(person, "LastName", schema::DataType::kString,
            "Family name of the person");
  b.Element(person, "GivenName", schema::DataType::kString,
            "First name of the person");
  b.Element(person, "BirthDate", schema::DataType::kDate,
            "Date the person was born");
  auto veh = b.ComplexType("Conveyance", "A conveyance used for transport");
  b.Element(veh, "VehicleIdentificationNumber", schema::DataType::kString,
            "Identification number of the vehicle from the manufacturer");
  return std::move(b).Build();
}

std::vector<double> Flatten(const core::MatchMatrix& m) {
  std::vector<double> out;
  out.reserve(m.rows() * m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      out.push_back(m.GetByIndex(r, c));
    }
  }
  return out;
}

TEST(ObsDeterminismTest, TracingDoesNotChangeScores) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  Tracer& tracer = Tracer::Global();
  tracer.Stop();
  core::MatchEngine plain(sa, sb);
  std::vector<double> baseline = Flatten(plain.ComputeMatrix());
  std::vector<double> refined_baseline = Flatten(plain.ComputeRefinedMatrix());

  tracer.Start();
  core::MatchEngine traced(sa, sb);
  std::vector<double> traced_scores = Flatten(traced.ComputeMatrix());
  std::vector<double> traced_refined = Flatten(traced.ComputeRefinedMatrix());
  tracer.Stop();

  // Bitwise equality, not near-equality: the instrumented kernel must run
  // the exact same arithmetic.
  EXPECT_EQ(baseline, traced_scores);
  EXPECT_EQ(refined_baseline, traced_refined);
}

TEST(ObsDeterminismTest, CollectStatsDoesNotChangeScores) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  core::MatchEngine plain(sa, sb);
  core::MatchOptions timed_options;
  timed_options.collect_stats = true;
  core::MatchEngine timed(sa, sb, timed_options);

  EXPECT_EQ(Flatten(plain.ComputeMatrix()), Flatten(timed.ComputeMatrix()));

  // And the selected links agree too.
  auto plain_links = core::SelectGreedyOneToOne(plain.ComputeMatrix(), 0.3);
  auto timed_links = core::SelectGreedyOneToOne(timed.ComputeMatrix(), 0.3);
  ASSERT_EQ(plain_links.size(), timed_links.size());
  for (size_t i = 0; i < plain_links.size(); ++i) {
    EXPECT_EQ(plain_links[i].source, timed_links[i].source);
    EXPECT_EQ(plain_links[i].target, timed_links[i].target);
    EXPECT_EQ(plain_links[i].score, timed_links[i].score);
  }
}

// The batched kernel (one row per voter, SoA views, reused metric scratch)
// must reproduce the per-cell dispatch path bit for bit — for every voter
// configuration, with and without timing, serial and refined.
TEST(ObsDeterminismTest, BatchedKernelMatchesPerCellForAllVoterConfigs) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  auto solo = [](double core::VoterConfig::* field) {
    core::VoterConfig config;
    config.name_string_weight = 0.0;
    config.name_token_weight = 0.0;
    config.documentation_weight = 0.0;
    config.data_type_weight = 0.0;
    config.structural_weight = 0.0;
    config.acronym_weight = 0.0;
    config.*field = 1.0;
    return config;
  };
  std::vector<std::pair<const char*, core::VoterConfig>> configs;
  configs.emplace_back("all_voters", core::VoterConfig{});
  configs.emplace_back("name_string", solo(&core::VoterConfig::name_string_weight));
  configs.emplace_back("name_token", solo(&core::VoterConfig::name_token_weight));
  configs.emplace_back("documentation",
                       solo(&core::VoterConfig::documentation_weight));
  configs.emplace_back("data_type", solo(&core::VoterConfig::data_type_weight));
  configs.emplace_back("structural", solo(&core::VoterConfig::structural_weight));
  configs.emplace_back("acronym", solo(&core::VoterConfig::acronym_weight));
  core::VoterConfig names_only;
  names_only.documentation_weight = 0.0;
  names_only.data_type_weight = 0.0;
  configs.emplace_back("names_and_structure", names_only);

  for (const auto& [name, config] : configs) {
    core::MatchOptions batched;
    batched.voters = config;
    batched.batch_rows = true;
    core::MatchOptions per_cell = batched;
    per_cell.batch_rows = false;

    core::MatchEngine batched_engine(sa, sb, batched);
    core::MatchEngine per_cell_engine(sa, sb, per_cell);
    // Bitwise equality, not near-equality: VoteRow overrides must run the
    // exact arithmetic of their per-cell Vote on the same feature bytes.
    EXPECT_EQ(Flatten(batched_engine.ComputeMatrix()),
              Flatten(per_cell_engine.ComputeMatrix()))
        << "voter config: " << name;
    EXPECT_EQ(Flatten(batched_engine.ComputeRefinedMatrix()),
              Flatten(per_cell_engine.ComputeRefinedMatrix()))
        << "voter config: " << name;
  }

  // Per-voter timing must not perturb the batched path either.
  core::MatchOptions timed;
  timed.collect_stats = true;
  core::MatchEngine timed_batched(sa, sb, timed);
  timed.batch_rows = false;
  core::MatchEngine timed_per_cell(sa, sb, timed);
  EXPECT_EQ(Flatten(timed_batched.ComputeMatrix()),
            Flatten(timed_per_cell.ComputeMatrix()));
}

TEST(ObsDeterminismTest, StatsReportCountsCells) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  core::MatchOptions options;
  options.collect_stats = true;
  core::MatchEngine engine(sa, sb, options);

  core::MatchMatrix m = engine.ComputeMatrix();
  core::EngineStats stats = engine.StatsReport();

  EXPECT_EQ(stats.matrices_computed, 1u);
  EXPECT_EQ(stats.cells_scored, m.rows() * m.cols());
  EXPECT_GT(stats.preprocess_seconds, 0.0);
  EXPECT_TRUE(stats.voter_timing);
  ASSERT_FALSE(stats.voters.empty());
  for (const core::VoterStat& v : stats.voters) {
    // Every voter sees every cell exactly once per matrix.
    EXPECT_EQ(v.calls, stats.cells_scored) << v.name;
  }

  engine.ComputeMatrix();
  core::EngineStats again = engine.StatsReport();
  EXPECT_EQ(again.matrices_computed, 2u);
  EXPECT_EQ(again.cells_scored, 2 * m.rows() * m.cols());
}

TEST(ObsDeterminismTest, StatsWithoutTimingStillCountsAggregates) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  core::MatchEngine engine(sa, sb);  // collect_stats defaults off
  core::MatchMatrix m = engine.ComputeMatrix();
  core::EngineStats stats = engine.StatsReport();

  EXPECT_FALSE(stats.voter_timing);
  EXPECT_EQ(stats.matrices_computed, 1u);
  EXPECT_EQ(stats.cells_scored, m.rows() * m.cols());
  for (const core::VoterStat& v : stats.voters) {
    EXPECT_EQ(v.total_ns, 0u) << v.name;
  }

  // The renderers must cope with both modes.
  EXPECT_FALSE(core::RenderStatsText(stats).empty());
  EXPECT_FALSE(core::RenderStatsJson(stats).empty());
  core::EngineStats timed_stats;
  timed_stats.voter_timing = true;
  timed_stats.voters.push_back({"name_string", 10, 1000});
  EXPECT_FALSE(core::RenderStatsText(timed_stats).empty());
}

}  // namespace
}  // namespace harmony::obs
