// Instrumentation must be a pure observer: tracing and stats collection may
// read clocks and bump counters, but the scores coming out of the engine have
// to be bitwise identical with observability on, off, or mid-flight.

#include <gtest/gtest.h>

#include <vector>

#include "core/match_engine.h"
#include "core/selection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schema/builder.h"

namespace harmony::obs {
namespace {

schema::Schema MakeSource() {
  schema::RelationalBuilder b("SA");
  auto person = b.Table("PERSON", "A person known to the system");
  b.Column(person, "LAST_NAME", schema::DataType::kString,
           "The surname of the person");
  b.Column(person, "FIRST_NAME", schema::DataType::kString,
           "The given name of the person");
  b.Column(person, "BIRTH_DT", schema::DataType::kDate,
           "The date on which the person was born");
  auto vehicle = b.Table("VEHICLE", "A ground vehicle");
  b.Column(vehicle, "VIN", schema::DataType::kString,
           "Vehicle identification number assigned by the maker");
  b.Column(vehicle, "FUEL_CD", schema::DataType::kString,
           "Coded fuel category");
  return std::move(b).Build();
}

schema::Schema MakeTarget() {
  schema::XmlBuilder b("SB");
  auto person = b.ComplexType("Person", "An individual tracked by the system");
  b.Element(person, "LastName", schema::DataType::kString,
            "Family name of the person");
  b.Element(person, "GivenName", schema::DataType::kString,
            "First name of the person");
  b.Element(person, "BirthDate", schema::DataType::kDate,
            "Date the person was born");
  auto veh = b.ComplexType("Conveyance", "A conveyance used for transport");
  b.Element(veh, "VehicleIdentificationNumber", schema::DataType::kString,
            "Identification number of the vehicle from the manufacturer");
  return std::move(b).Build();
}

std::vector<double> Flatten(const core::MatchMatrix& m) {
  std::vector<double> out;
  out.reserve(m.rows() * m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      out.push_back(m.GetByIndex(r, c));
    }
  }
  return out;
}

TEST(ObsDeterminismTest, TracingDoesNotChangeScores) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  Tracer& tracer = Tracer::Global();
  tracer.Stop();
  core::MatchEngine plain(sa, sb);
  std::vector<double> baseline = Flatten(plain.ComputeMatrix());
  std::vector<double> refined_baseline = Flatten(plain.ComputeRefinedMatrix());

  tracer.Start();
  core::MatchEngine traced(sa, sb);
  std::vector<double> traced_scores = Flatten(traced.ComputeMatrix());
  std::vector<double> traced_refined = Flatten(traced.ComputeRefinedMatrix());
  tracer.Stop();

  // Bitwise equality, not near-equality: the instrumented kernel must run
  // the exact same arithmetic.
  EXPECT_EQ(baseline, traced_scores);
  EXPECT_EQ(refined_baseline, traced_refined);
}

TEST(ObsDeterminismTest, CollectStatsDoesNotChangeScores) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  core::MatchEngine plain(sa, sb);
  core::MatchOptions timed_options;
  timed_options.collect_stats = true;
  core::MatchEngine timed(sa, sb, timed_options);

  EXPECT_EQ(Flatten(plain.ComputeMatrix()), Flatten(timed.ComputeMatrix()));

  // And the selected links agree too.
  auto plain_links = core::SelectGreedyOneToOne(plain.ComputeMatrix(), 0.3);
  auto timed_links = core::SelectGreedyOneToOne(timed.ComputeMatrix(), 0.3);
  ASSERT_EQ(plain_links.size(), timed_links.size());
  for (size_t i = 0; i < plain_links.size(); ++i) {
    EXPECT_EQ(plain_links[i].source, timed_links[i].source);
    EXPECT_EQ(plain_links[i].target, timed_links[i].target);
    EXPECT_EQ(plain_links[i].score, timed_links[i].score);
  }
}

TEST(ObsDeterminismTest, StatsReportCountsCells) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  core::MatchOptions options;
  options.collect_stats = true;
  core::MatchEngine engine(sa, sb, options);

  core::MatchMatrix m = engine.ComputeMatrix();
  core::EngineStats stats = engine.StatsReport();

  EXPECT_EQ(stats.matrices_computed, 1u);
  EXPECT_EQ(stats.cells_scored, m.rows() * m.cols());
  EXPECT_GT(stats.preprocess_seconds, 0.0);
  EXPECT_TRUE(stats.voter_timing);
  ASSERT_FALSE(stats.voters.empty());
  for (const core::VoterStat& v : stats.voters) {
    // Every voter sees every cell exactly once per matrix.
    EXPECT_EQ(v.calls, stats.cells_scored) << v.name;
  }

  engine.ComputeMatrix();
  core::EngineStats again = engine.StatsReport();
  EXPECT_EQ(again.matrices_computed, 2u);
  EXPECT_EQ(again.cells_scored, 2 * m.rows() * m.cols());
}

TEST(ObsDeterminismTest, StatsWithoutTimingStillCountsAggregates) {
  schema::Schema sa = MakeSource();
  schema::Schema sb = MakeTarget();

  core::MatchEngine engine(sa, sb);  // collect_stats defaults off
  core::MatchMatrix m = engine.ComputeMatrix();
  core::EngineStats stats = engine.StatsReport();

  EXPECT_FALSE(stats.voter_timing);
  EXPECT_EQ(stats.matrices_computed, 1u);
  EXPECT_EQ(stats.cells_scored, m.rows() * m.cols());
  for (const core::VoterStat& v : stats.voters) {
    EXPECT_EQ(v.total_ns, 0u) << v.name;
  }

  // The renderers must cope with both modes.
  EXPECT_FALSE(core::RenderStatsText(stats).empty());
  EXPECT_FALSE(core::RenderStatsJson(stats).empty());
  core::EngineStats timed_stats;
  timed_stats.voter_timing = true;
  timed_stats.voters.push_back({"name_string", 10, 1000});
  EXPECT_FALSE(core::RenderStatsText(timed_stats).empty());
}

}  // namespace
}  // namespace harmony::obs
