#include "synth/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "schema/schema_io.h"
#include "synth/vocabulary.h"

namespace harmony::synth {
namespace {

TEST(VocabularyTest, MilitaryVocabularyIsSubstantial) {
  const DomainVocabulary& v = DomainVocabulary::Military();
  EXPECT_GE(v.concepts.size(), 20u);
  EXPECT_GE(v.aspects.size(), 8u);
  EXPECT_GE(v.common_fields.size(), 6u);
  EXPECT_GE(v.CombinationCount(), 200u);
  for (const auto& c : v.concepts) {
    EXPECT_FALSE(c.name_alts.empty());
    EXPECT_GE(c.fields.size(), 5u) << c.name_alts[0];
    for (const auto& f : c.fields) {
      EXPECT_FALSE(f.words.empty());
      EXPECT_FALSE(f.doc_variants.empty());
    }
  }
}

TEST(GeneratePairTest, DeterministicInSeed) {
  PairSpec spec;
  spec.source_concepts = 20;
  spec.target_concepts = 12;
  spec.shared_concepts = 6;
  auto a = GeneratePair(spec);
  auto b = GeneratePair(spec);
  EXPECT_EQ(schema::SerializeSchema(a.source), schema::SerializeSchema(b.source));
  EXPECT_EQ(schema::SerializeSchema(a.target), schema::SerializeSchema(b.target));
  EXPECT_EQ(a.truth.element_matches, b.truth.element_matches);

  spec.seed = 999;
  auto c = GeneratePair(spec);
  EXPECT_NE(schema::SerializeSchema(a.source), schema::SerializeSchema(c.source));
}

TEST(GeneratePairTest, ShapesMatchSpec) {
  PairSpec spec;
  spec.source_concepts = 30;
  spec.target_concepts = 15;
  spec.shared_concepts = 8;
  auto pair = GeneratePair(spec);
  EXPECT_EQ(pair.source.IdsAtDepth(1).size(), 30u);
  EXPECT_EQ(pair.target.IdsAtDepth(1).size(), 15u);
  EXPECT_EQ(pair.truth.concept_matches.size(), 8u);
  EXPECT_EQ(pair.source.flavor(), schema::SchemaFlavor::kRelational);
  EXPECT_EQ(pair.target.flavor(), schema::SchemaFlavor::kXml);
  EXPECT_EQ(pair.truth.source_concept_labels.size(), 30u);
  EXPECT_EQ(pair.truth.target_concept_labels.size(), 15u);
  EXPECT_TRUE(pair.source.Validate().ok());
  EXPECT_TRUE(pair.target.Validate().ok());
}

TEST(GeneratePairTest, PaperScaleSpecProducesPaperShapes) {
  PairSpec spec;  // Defaults: 140/51/24.
  auto pair = GeneratePair(spec);
  EXPECT_EQ(pair.source.IdsAtDepth(1).size(), 140u);
  EXPECT_EQ(pair.target.IdsAtDepth(1).size(), 51u);
  EXPECT_EQ(pair.truth.concept_matches.size(), 24u);
  // Paper scale: on the order of 10^3 elements per schema.
  EXPECT_GT(pair.source.element_count(), 800u);
  EXPECT_GT(pair.target.element_count(), 300u);
}

TEST(GeneratePairTest, TruthPathsResolve) {
  PairSpec spec;
  spec.source_concepts = 20;
  spec.target_concepts = 12;
  spec.shared_concepts = 6;
  auto pair = GeneratePair(spec);
  ASSERT_FALSE(pair.truth.element_matches.empty());
  for (const auto& [sp, tp] : pair.truth.element_matches) {
    EXPECT_TRUE(pair.source.FindByPath(sp).ok()) << sp;
    EXPECT_TRUE(pair.target.FindByPath(tp).ok()) << tp;
  }
  for (const auto& [sp, tp] : pair.truth.concept_matches) {
    auto s = pair.source.FindByPath(sp);
    auto t = pair.target.FindByPath(tp);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(pair.source.element(*s).depth, 1u);
    EXPECT_EQ(pair.target.element(*t).depth, 1u);
  }
}

TEST(GeneratePairTest, ConceptLabelsSharedAcrossMatchedConcepts) {
  PairSpec spec;
  spec.source_concepts = 20;
  spec.target_concepts = 12;
  spec.shared_concepts = 6;
  auto pair = GeneratePair(spec);
  for (const auto& [sp, tp] : pair.truth.concept_matches) {
    EXPECT_EQ(pair.truth.source_concept_labels.at(sp),
              pair.truth.target_concept_labels.at(tp));
  }
}

TEST(GeneratePairTest, SiblingNamesUniquePerParent) {
  PairSpec spec;
  auto pair = GeneratePair(spec);
  for (const schema::Schema* s : {&pair.source, &pair.target}) {
    for (schema::ElementId id : s->PreOrder()) {
      std::set<std::string> names;
      for (schema::ElementId child : s->element(id).children) {
        EXPECT_TRUE(names.insert(s->element(child).name).second)
            << "duplicate sibling name " << s->element(child).name;
      }
    }
  }
}

TEST(GenerateSchemaTest, SizeAndDeterminism) {
  SchemaSpec spec;
  spec.concepts = 25;
  auto a = GenerateSchema(spec);
  auto b = GenerateSchema(spec);
  EXPECT_EQ(a.IdsAtDepth(1).size(), 25u);
  EXPECT_EQ(schema::SerializeSchema(a), schema::SerializeSchema(b));
  EXPECT_TRUE(a.Validate().ok());
}

TEST(GenerateNWayTest, ShapesAndSemantics) {
  NWaySpec spec;
  spec.schema_count = 4;
  spec.universe_concepts = 20;
  spec.concepts_per_schema = 8;
  spec.names = {"SA", "SC", "SD"};
  auto result = GenerateNWay(spec);
  ASSERT_EQ(result.schemas.size(), 4u);
  ASSERT_EQ(result.semantics.size(), 4u);
  EXPECT_EQ(result.schemas[0].name(), "SA");
  EXPECT_EQ(result.schemas[3].name(), "S4");  // Default naming.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.schemas[i].IdsAtDepth(1).size(), 8u);
    // Every element path appears in the semantics map.
    for (schema::ElementId id : result.schemas[i].AllElementIds()) {
      EXPECT_TRUE(result.semantics[i].count(result.schemas[i].Path(id)))
          << result.schemas[i].Path(id);
    }
  }
}

TEST(GenerateNWayTest, SharedConceptsProduceSharedSemantics) {
  NWaySpec spec;
  spec.schema_count = 3;
  spec.universe_concepts = 10;
  spec.concepts_per_schema = 8;  // Heavy overlap forced by pigeonhole.
  auto result = GenerateNWay(spec);
  std::set<std::string> sems0, sems1;
  for (const auto& [path, sem] : result.semantics[0]) sems0.insert(sem);
  for (const auto& [path, sem] : result.semantics[1]) sems1.insert(sem);
  size_t shared = 0;
  for (const auto& s : sems0) {
    if (sems1.count(s)) ++shared;
  }
  EXPECT_GT(shared, 0u);
}

TEST(GenerateRepositoryTest, FamiliesAndSizes) {
  RepositorySpec spec;
  spec.families = 3;
  spec.schemas_per_family = 4;
  spec.concepts_per_schema = 6;
  spec.family_pool_concepts = 10;
  auto repo = GenerateRepository(spec);
  ASSERT_EQ(repo.size(), 12u);
  std::set<std::string> names;
  for (const auto& rs : repo) {
    EXPECT_LT(rs.family, 3u);
    EXPECT_EQ(rs.schema.IdsAtDepth(1).size(), 6u);
    EXPECT_TRUE(names.insert(rs.schema.name()).second) << "duplicate name";
  }
}

}  // namespace
}  // namespace harmony::synth
