// Wire-protocol robustness tests for the harmonyd framing layer: the
// encode/decode codecs never trust embedded lengths, and ReadFrame rejects
// hostile framing (zero-length body, oversized length prefix, truncation)
// from the smallest possible evidence — the oversized case from the four
// prefix bytes alone, before any payload buffer exists.

#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>

#include "gtest/gtest.h"

namespace harmony::service {
namespace {

// ---------------------------------------------------------------------------
// Primitives

TEST(WireCodec, PrimitivesRoundTrip) {
  WireWriter w;
  w.PutU8(0x7F);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutF64(0.1 + 0.2);  // a value with an inexact decimal expansion
  w.PutString("customer_id");
  w.PutString("");

  WireReader r(w.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  double f64;
  std::string s1, s2;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetF64(&f64));
  ASSERT_TRUE(r.GetString(&s1));
  ASSERT_TRUE(r.GetString(&s2));
  EXPECT_TRUE(r.Done());

  EXPECT_EQ(u8, 0x7F);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  // Bitwise identity, not approximate: doubles travel as IEEE-754 bits.
  uint64_t sent_bits, got_bits;
  double sent = 0.1 + 0.2;
  std::memcpy(&sent_bits, &sent, sizeof(sent_bits));
  std::memcpy(&got_bits, &f64, sizeof(got_bits));
  EXPECT_EQ(sent_bits, got_bits);
  EXPECT_EQ(s1, "customer_id");
  EXPECT_EQ(s2, "");
}

TEST(WireCodec, ReaderRefusesToOverrun) {
  WireReader empty("");
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  double f64;
  std::string s;
  EXPECT_FALSE(empty.GetU8(&u8));
  EXPECT_FALSE(empty.GetU32(&u32));
  EXPECT_FALSE(empty.GetU64(&u64));
  EXPECT_FALSE(empty.GetF64(&f64));
  EXPECT_FALSE(empty.GetString(&s));

  // A string header whose length claims more bytes than the buffer holds.
  WireWriter w;
  w.PutU32(1000);
  w.PutU8('x');
  WireReader lying(w.bytes());
  EXPECT_FALSE(lying.GetString(&s));
}

TEST(WireCodec, SpecialDoublesSurviveTheWire) {
  const double values[] = {0.0, -0.0, 1e-308,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (double v : values) {
    WireWriter w;
    w.PutF64(v);
    WireReader r(w.bytes());
    double out;
    ASSERT_TRUE(r.GetF64(&out));
    uint64_t vb, ob;
    std::memcpy(&vb, &v, sizeof(vb));
    std::memcpy(&ob, &out, sizeof(ob));
    EXPECT_EQ(vb, ob);
  }
}

// ---------------------------------------------------------------------------
// Request / response codecs

TEST(WireCodec, MatchRequestRoundTrip) {
  MatchRequest req;
  req.source_name = "orders.sql";
  req.source_text = "CREATE TABLE t (a INT);";
  req.target_name = "S2";
  req.threshold = 0.4375;
  req.one_to_one = true;
  req.refined = true;
  req.by_name = true;

  auto decoded = DecodeMatchRequest(EncodeMatchRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->source_name, req.source_name);
  EXPECT_EQ(decoded->source_text, req.source_text);
  EXPECT_EQ(decoded->target_name, req.target_name);
  EXPECT_EQ(decoded->target_text, "");
  EXPECT_EQ(decoded->threshold, req.threshold);
  EXPECT_TRUE(decoded->one_to_one);
  EXPECT_TRUE(decoded->refined);
  EXPECT_TRUE(decoded->by_name);
}

TEST(WireCodec, MatchResponseRoundTripPreservesScoreBits) {
  MatchResponse resp;
  resp.links.push_back({"CUSTOMER.NAME", "CLIENT.FULL_NAME", 0.1 + 0.2});
  resp.links.push_back({"A.B", "C.D", 1.0 / 3.0});

  auto decoded = DecodeMatchResponse(EncodeMatchResponse(resp));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->links.size(), 2u);
  for (size_t i = 0; i < resp.links.size(); ++i) {
    EXPECT_EQ(decoded->links[i].source_path, resp.links[i].source_path);
    EXPECT_EQ(decoded->links[i].target_path, resp.links[i].target_path);
    uint64_t a, b;
    std::memcpy(&a, &resp.links[i].score, sizeof(a));
    std::memcpy(&b, &decoded->links[i].score, sizeof(b));
    EXPECT_EQ(a, b);
  }
}

TEST(WireCodec, SearchAndVocabRoundTrip) {
  SearchRequest sreq{"customer address", 25, true};
  auto sdec = DecodeSearchRequest(EncodeSearchRequest(sreq));
  ASSERT_TRUE(sdec.ok());
  EXPECT_EQ(sdec->query, sreq.query);
  EXPECT_EQ(sdec->k, 25u);
  EXPECT_TRUE(sdec->fragments);

  SearchResponse sresp;
  sresp.hits.push_back({"S1", "CUSTOMER.EMAIL", 0.75});
  sresp.hits.push_back({"S2", "", 0.25});
  auto rdec = DecodeSearchResponse(EncodeSearchResponse(sresp));
  ASSERT_TRUE(rdec.ok());
  ASSERT_EQ(rdec->hits.size(), 2u);
  EXPECT_EQ(rdec->hits[0].element_path, "CUSTOMER.EMAIL");
  EXPECT_EQ(rdec->hits[1].schema_name, "S2");

  VocabRequest vreq{"phone", 3};
  auto vdec = DecodeVocabRequest(EncodeVocabRequest(vreq));
  ASSERT_TRUE(vdec.ok());
  EXPECT_EQ(vdec->term, "phone");
  EXPECT_EQ(vdec->k, 3u);
}

TEST(WireCodec, ErrorPayloadRoundTrip) {
  Status original = Status::NotFound("no schema named 'X'");
  Status decoded = DecodeErrorPayload(EncodeErrorPayload(original));
  EXPECT_TRUE(decoded.IsNotFound());
  EXPECT_EQ(decoded.message(), original.message());
}

TEST(WireCodec, DecodersRejectTruncationAndTrailingGarbage) {
  std::string encoded = EncodeMatchRequest(MatchRequest{});
  EXPECT_FALSE(DecodeMatchRequest(encoded.substr(0, 5)).ok());
  EXPECT_FALSE(DecodeMatchRequest(encoded + "x").ok());

  std::string sresp = EncodeSearchResponse(SearchResponse{});
  EXPECT_FALSE(DecodeSearchResponse(sresp.substr(0, 2)).ok());
  EXPECT_FALSE(DecodeSearchResponse(sresp + "junk").ok());
}

TEST(WireCodec, LyingElementCountFailsFastWithoutAllocating) {
  // count claims a billion links but the payload holds four bytes total; the
  // decoder sizes its reserve by what the payload can hold and errors on the
  // first missing field instead of trusting the count.
  WireWriter w;
  w.PutU32(1000000000u);
  auto decoded = DecodeMatchResponse(w.bytes());
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsParseError());
}

TEST(WireCodec, StatsRequestRoundTrip) {
  auto full = DecodeStatsRequest(EncodeStatsRequest(StatsRequest{false}));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->delta);
  auto delta = DecodeStatsRequest(EncodeStatsRequest(StatsRequest{true}));
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->delta);

  // An empty payload is the *legacy* stats form handled by the server before
  // decoding, never by this decoder — and trailing garbage is rejected.
  EXPECT_FALSE(DecodeStatsRequest("").ok());
  EXPECT_FALSE(DecodeStatsRequest(EncodeStatsRequest({}) + "x").ok());
}

TEST(WireCodec, StatsResponseRoundTripPreservesSnapshot) {
  StatsResponse original;
  original.delta = true;
  original.interval_ns = 1'500'000'000u;
  original.snapshot.counters.push_back({"service.requests.ping", 42});
  original.snapshot.counters.push_back({"service.rejected", 0});
  original.snapshot.gauges.push_back({"service.sessions", -3});
  obs::HistogramSnapshot h;
  h.name = "service.handler_ns.match";
  h.buckets[0] = 2;          // two zero-valued samples
  h.buckets[14] = 5;         // five samples in (2^13, 2^14-1]
  h.buckets[64] = 1;         // one sample above 2^63
  h.count = 8;
  h.sum = 123456789u;
  original.snapshot.histograms.push_back(h);

  auto decoded = DecodeStatsResponse(EncodeStatsResponse(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->delta);
  EXPECT_EQ(decoded->interval_ns, original.interval_ns);
  ASSERT_EQ(decoded->snapshot.counters.size(), 2u);
  EXPECT_EQ(decoded->snapshot.counters[0].name, "service.requests.ping");
  EXPECT_EQ(decoded->snapshot.counters[0].value, 42u);
  ASSERT_EQ(decoded->snapshot.gauges.size(), 1u);
  EXPECT_EQ(decoded->snapshot.gauges[0].value, -3);
  ASSERT_EQ(decoded->snapshot.histograms.size(), 1u);
  const auto& hd = decoded->snapshot.histograms[0];
  EXPECT_EQ(hd.name, h.name);
  EXPECT_EQ(hd.sum, h.sum);
  EXPECT_EQ(hd.count, 8u);  // derived from the sparse bucket encoding
  EXPECT_EQ(hd.buckets, h.buckets);
}

TEST(WireCodec, StatsResponseRejectsTruncationAndBadBucketIndex) {
  StatsResponse original;
  original.snapshot.counters.push_back({"c", 1});
  obs::HistogramSnapshot h;
  h.name = "h";
  h.buckets[3] = 7;
  h.count = 7;
  original.snapshot.histograms.push_back(h);
  std::string encoded = EncodeStatsResponse(original);

  EXPECT_FALSE(DecodeStatsResponse(encoded.substr(0, 4)).ok());
  EXPECT_FALSE(DecodeStatsResponse(encoded + "x").ok());

  // A bucket index past the histogram array must be a parse error, not an
  // out-of-bounds write: flip the index byte (last 9 bytes are idx + count).
  std::string corrupt = encoded;
  corrupt[corrupt.size() - 9] = char(200);
  auto bad = DecodeStatsResponse(corrupt);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsParseError());
}

// ---------------------------------------------------------------------------
// Frame I/O over a real socket pair

class FramePipe : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    CloseWrite();
    CloseRead();
  }
  void CloseWrite() {
    if (fds_[1] >= 0) {
      ::close(fds_[1]);
      fds_[1] = -1;
    }
  }
  void CloseRead() {
    if (fds_[0] >= 0) {
      ::close(fds_[0]);
      fds_[0] = -1;
    }
  }
  void SendRaw(std::string_view bytes) {
    ASSERT_EQ(::write(fds_[1], bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }

  int fds_[2] = {-1, -1};
};

TEST_F(FramePipe, WriteThenReadRoundTrips) {
  std::string payload = EncodeVocabRequest({"customer", 5});
  ASSERT_TRUE(
      WriteFrame(fds_[1], static_cast<uint8_t>(RequestTag::kVocab), payload)
          .ok());
  auto frame = ReadFrame(fds_[0]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->tag, static_cast<uint8_t>(RequestTag::kVocab));
  EXPECT_EQ(frame->payload, payload);
}

TEST_F(FramePipe, CleanCloseAtBoundaryIsNotFound) {
  CloseWrite();
  auto frame = ReadFrame(fds_[0]);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsNotFound());
}

TEST_F(FramePipe, TruncatedHeaderIsParseError) {
  SendRaw(std::string("\x09\x00", 2));  // half a length prefix, then gone
  CloseWrite();
  auto frame = ReadFrame(fds_[0]);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsParseError());
  EXPECT_NE(frame.status().message().find("truncated"), std::string::npos);
}

TEST_F(FramePipe, TruncatedPayloadIsParseError) {
  WireWriter w;
  w.PutU32(100);  // promises 99 payload bytes
  w.PutU8(static_cast<uint8_t>(RequestTag::kMatch));
  SendRaw(w.bytes());
  SendRaw("only a few bytes");
  CloseWrite();
  auto frame = ReadFrame(fds_[0]);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsParseError());
  EXPECT_NE(frame.status().message().find("truncated"), std::string::npos);
}

TEST_F(FramePipe, ZeroLengthBodyIsParseError) {
  SendRaw(std::string(4, '\0'));  // body_length = 0: no room for a tag
  auto frame = ReadFrame(fds_[0]);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsParseError());
  EXPECT_NE(frame.status().message().find("zero-length"), std::string::npos);
}

TEST_F(FramePipe, OversizedPrefixRejectedBeforeAnyPayloadArrives) {
  // Only the hostile 4-byte prefix is ever sent. ReadFrame must reject from
  // the prefix alone — if it tried to allocate or read the claimed body it
  // would block here forever (the writer sends nothing more).
  WireWriter w;
  w.PutU32(0xFFFFFFFFu);
  SendRaw(w.bytes());
  auto frame = ReadFrame(fds_[0]);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsParseError());
  EXPECT_NE(frame.status().message().find("frame too large"),
            std::string::npos);
}

TEST_F(FramePipe, CustomMaxBodyIsEnforced) {
  std::string payload(2048, 'x');
  ASSERT_TRUE(WriteFrame(fds_[1], 0x01, payload).ok());
  auto frame = ReadFrame(fds_[0], /*max_body=*/1024);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsParseError());
}

TEST_F(FramePipe, CancelBeforeNextFrameIsNotFound) {
  std::atomic<bool> cancel{true};
  auto frame = ReadFrame(fds_[0], kDefaultMaxBody, &cancel);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsNotFound());
}

TEST_F(FramePipe, InFlightFrameCompletesDespiteCancel) {
  // Drain contract: a frame whose bytes are arriving is read to completion —
  // cancel only refuses to *wait* for a new frame.
  std::atomic<bool> cancel{false};
  std::string payload = EncodeVocabRequest({"addr", 2});
  ASSERT_TRUE(WriteFrame(fds_[1], static_cast<uint8_t>(RequestTag::kVocab),
                         payload)
                  .ok());
  cancel.store(true);
  auto frame = ReadFrame(fds_[0], kDefaultMaxBody, &cancel);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->payload, payload);
}

TEST_F(FramePipe, CancelFdWakesBlockedReaderEventDriven) {
  // With a cancel fd the reader blocks with no timeout — there is no 50 ms
  // tick to lean on. The only things that can wake it are frame bytes or the
  // cancel fd becoming readable; this test proves the latter suffices.
  int cancel_pipe[2];
  ASSERT_EQ(::pipe(cancel_pipe), 0);
  std::atomic<bool> cancel{false};
  Status observed = Status::OK();
  std::thread reader([&] {
    auto frame = ReadFrame(fds_[0], kDefaultMaxBody, &cancel, cancel_pipe[0]);
    observed = frame.ok() ? Status::OK() : frame.status();
  });
  cancel.store(true);
  char byte = 'd';
  ASSERT_EQ(::write(cancel_pipe[1], &byte, 1), 1);
  reader.join();
  EXPECT_TRUE(observed.IsNotFound()) << observed.ToString();
  ::close(cancel_pipe[0]);
  ::close(cancel_pipe[1]);
}

TEST_F(FramePipe, PendingDataWinsOverCancelFd) {
  // Same contract as the flag variant: a frame that already arrived is
  // served even when cancellation is simultaneously signalled on the fd.
  int cancel_pipe[2];
  ASSERT_EQ(::pipe(cancel_pipe), 0);
  std::string payload = EncodeVocabRequest({"addr", 2});
  ASSERT_TRUE(WriteFrame(fds_[1], static_cast<uint8_t>(RequestTag::kVocab),
                         payload)
                  .ok());
  char byte = 'd';
  ASSERT_EQ(::write(cancel_pipe[1], &byte, 1), 1);
  auto frame =
      ReadFrame(fds_[0], kDefaultMaxBody, /*cancel=*/nullptr, cancel_pipe[0]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->payload, payload);
  ::close(cancel_pipe[0]);
  ::close(cancel_pipe[1]);
}

// ---------------------------------------------------------------------------
// Tag handling

TEST(Tags, KnownSetsAreExact) {
  EXPECT_TRUE(IsKnownRequestTag(static_cast<uint8_t>(RequestTag::kPing)));
  EXPECT_TRUE(IsKnownRequestTag(static_cast<uint8_t>(RequestTag::kShutdown)));
  EXPECT_FALSE(IsKnownRequestTag(0x00));
  EXPECT_FALSE(IsKnownRequestTag(0x07));
  EXPECT_FALSE(IsKnownRequestTag(0x81));
  EXPECT_TRUE(IsKnownResponseTag(static_cast<uint8_t>(ResponseTag::kOk)));
  EXPECT_FALSE(IsKnownResponseTag(0x01));
}

TEST(Tags, NamesForEveryMember) {
  EXPECT_STREQ(RequestTagName(RequestTag::kMatch), "match");
  EXPECT_STREQ(ResponseTagName(ResponseTag::kRejected), "rejected");
}

using TagsDeathTest = ::testing::Test;

TEST(TagsDeathTest, MalformedRequestTagFailsCheck) {
  EXPECT_DEATH(RequestTagName(static_cast<RequestTag>(0x6B)),
               "malformed request tag");
}

TEST(TagsDeathTest, MalformedResponseTagFailsCheck) {
  EXPECT_DEATH(ResponseTagName(static_cast<ResponseTag>(0x00)),
               "malformed response tag");
}

}  // namespace
}  // namespace harmony::service
