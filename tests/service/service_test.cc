// End-to-end tests for the resident match service: a real Server on an
// ephemeral loopback port, real Clients, and the acceptance property of the
// service-smoke gate — a served match is *bitwise* identical to running the
// engine locally on the same inputs.

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/match_engine.h"
#include "core/selection.h"
#include "gtest/gtest.h"
#include "repository/metadata_repository.h"
#include "service/client.h"
#include "service/server.h"
#include "service/state.h"
#include "synth/generator.h"

namespace harmony::service {
namespace {

constexpr const char* kSourceDdl =
    "CREATE TABLE customer (\n"
    "  customer_id INT PRIMARY KEY,\n"
    "  full_name VARCHAR(80),\n"
    "  email_addr VARCHAR(120),\n"
    "  phone_num VARCHAR(32)\n"
    ");\n";

constexpr const char* kTargetDdl =
    "CREATE TABLE client (\n"
    "  client_id INT PRIMARY KEY,\n"
    "  name VARCHAR(80),\n"
    "  email VARCHAR(120)\n"
    ");\n";

std::shared_ptr<ServiceState> BuildTestState() {
  synth::NWaySpec spec;
  spec.seed = 23;
  spec.schema_count = 3;
  spec.universe_concepts = 10;
  spec.concepts_per_schema = 6;
  auto generated = synth::GenerateNWay(spec);
  repository::MetadataRepository repo;
  for (auto& schema : generated.schemas) {
    auto id = repo.RegisterSchema(std::move(schema));
    HARMONY_CHECK(id.ok());
  }
  auto state = ServiceState::Build(std::move(repo));
  HARMONY_CHECK(state.ok()) << state.status().ToString();
  return std::shared_ptr<ServiceState>(std::move(*state));
}

// One warm state + server for the whole suite: vocabulary construction is
// the expensive part and every test here only reads.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new std::shared_ptr<ServiceState>(BuildTestState());
    ServerOptions options;
    options.port = 0;
    options.num_workers = 2;
    auto server = Server::Start(*state_, options);
    HARMONY_CHECK(server.ok()) << server.status().ToString();
    server_ = server->release();
  }

  static void TearDownTestSuite() {
    delete server_;  // destructor drains
    server_ = nullptr;
    delete state_;
    state_ = nullptr;
  }

  static Client MustConnect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    HARMONY_CHECK(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  static std::shared_ptr<ServiceState>* state_;
  static Server* server_;
};

std::shared_ptr<ServiceState>* ServiceTest::state_ = nullptr;
Server* ServiceTest::server_ = nullptr;

TEST_F(ServiceTest, PingPong) {
  Client client = MustConnect();
  auto reply = client.Ping();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "pong");
}

TEST_F(ServiceTest, ServedInlineMatchIsBitwiseIdenticalToLocalEngine) {
  // Local half: parse and match in-process, exactly as the batch CLI does.
  auto source = ParseSchemaAuto(kSourceDdl, "a.sql");
  auto target = ParseSchemaAuto(kTargetDdl, "b.sql");
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(target.ok());
  // Two small single-table schemas score low in absolute terms (TF-IDF has
  // little text to work with), so the threshold sits well under the CLI
  // default — what matters here is identity, not magnitude.
  core::MatchEngine local(*source, *target);
  auto local_links = core::SelectGreedyOneToOne(local.ComputeRefinedMatrix(),
                                                /*threshold=*/0.005);

  // Served half: ship the same text to the daemon.
  MatchRequest request;
  request.source_name = "a.sql";
  request.source_text = kSourceDdl;
  request.target_name = "b.sql";
  request.target_text = kTargetDdl;
  request.threshold = 0.005;
  request.one_to_one = true;
  request.refined = true;
  Client client = MustConnect();
  auto served = client.Match(request);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  ASSERT_EQ(served->links.size(), local_links.size());
  ASSERT_GT(served->links.size(), 0u);  // the inputs overlap by construction
  for (size_t i = 0; i < local_links.size(); ++i) {
    EXPECT_EQ(served->links[i].source_path,
              local.source().Path(local_links[i].source));
    EXPECT_EQ(served->links[i].target_path,
              local.target().Path(local_links[i].target));
    uint64_t local_bits, served_bits;
    std::memcpy(&local_bits, &local_links[i].score, sizeof(local_bits));
    std::memcpy(&served_bits, &served->links[i].score, sizeof(served_bits));
    EXPECT_EQ(local_bits, served_bits) << "score differs at link " << i;
  }
}

TEST_F(ServiceTest, ByNameMatchUsesResidentSchemas) {
  const auto& repo = (*state_)->repo();
  ASSERT_GE(repo.schema_count(), 2u);
  const std::string source_name = repo.schema(0).name();
  const std::string target_name = repo.schema(1).name();

  core::MatchEngine local(repo.schema(0), repo.schema(1));
  auto local_links = core::SelectByThreshold(local.ComputeMatrix(), 0.35);

  MatchRequest request;
  request.by_name = true;
  request.source_name = source_name;
  request.target_name = target_name;
  request.threshold = 0.35;
  Client client = MustConnect();
  auto served = client.Match(request);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_EQ(served->links.size(), local_links.size());
  for (size_t i = 0; i < local_links.size(); ++i) {
    uint64_t local_bits, served_bits;
    std::memcpy(&local_bits, &local_links[i].score, sizeof(local_bits));
    std::memcpy(&served_bits, &served->links[i].score, sizeof(served_bits));
    EXPECT_EQ(local_bits, served_bits);
  }

  // Unknown schema names surface as a typed remote error, not a dead session.
  request.source_name = "no-such-schema";
  auto missing = client.Match(request);
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServiceTest, SearchServesSchemaAndFragmentHits) {
  // Query with words actually present in the resident schemata: the names of
  // the first schema's first leaf elements.
  const auto& schema = (*state_)->repo().schema(0);
  auto leaves = schema.LeafIds();
  ASSERT_GE(leaves.size(), 2u);
  std::string query = schema.element(leaves[0]).name + " " +
                      schema.element(leaves[1]).name;

  Client client = MustConnect();
  auto schema_hits = client.Search({query, 5, false});
  ASSERT_TRUE(schema_hits.ok()) << schema_hits.status().ToString();
  EXPECT_GT(schema_hits->hits.size(), 0u);
  for (const auto& hit : schema_hits->hits) {
    EXPECT_TRUE(hit.element_path.empty());
  }

  auto fragment_hits = client.Search({query, 5, true});
  ASSERT_TRUE(fragment_hits.ok());
  EXPECT_GT(fragment_hits->hits.size(), 0u);
  for (const auto& hit : fragment_hits->hits) {
    EXPECT_FALSE(hit.element_path.empty());
  }
}

TEST_F(ServiceTest, VocabSummaryAndTermLookup) {
  Client client = MustConnect();
  auto summary = client.Vocab({"", 8});
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_NE(summary->find("comprehensive vocabulary"), std::string::npos);
  EXPECT_NE(summary->find("full-overlap terms"), std::string::npos);

  auto missing = client.Vocab({"zzz-no-such-term-zzz", 8});
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(missing->find("no vocabulary term matches"), std::string::npos);
}

TEST_F(ServiceTest, StatsReportIncludesServiceCounters) {
  Client client = MustConnect();
  ASSERT_TRUE(client.Ping().ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
#if HARMONY_OBS_ENABLED
  EXPECT_NE(stats->find("service.requests"), std::string::npos);
#endif
}

TEST_F(ServiceTest, UnknownTagGetsErrorAndSessionSurvives) {
  Client client = MustConnect();
  auto reply = client.RoundTrip(0x5A, "payload");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, static_cast<uint8_t>(ResponseTag::kError));
  Status remote = DecodeErrorPayload(reply->payload);
  EXPECT_NE(remote.message().find("unknown request tag"), std::string::npos);
  // A well-formed frame with a bad tag is client error, not desync: the
  // session keeps working.
  auto ping = client.Ping();
  EXPECT_TRUE(ping.ok()) << ping.status().ToString();
}

TEST_F(ServiceTest, MalformedPayloadGetsTypedError) {
  Client client = MustConnect();
  auto reply =
      client.RoundTrip(static_cast<uint8_t>(RequestTag::kMatch), "garbage");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->tag, static_cast<uint8_t>(ResponseTag::kError));
  EXPECT_TRUE(DecodeErrorPayload(reply->payload).IsParseError());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServiceTest, OversizedFramePrefixRejectedAndConnectionDropped) {
  Client client = MustConnect();
  WireWriter w;
  w.PutU32(0xFFFFFFFFu);
  w.PutU8(static_cast<uint8_t>(RequestTag::kMatch));
  ASSERT_TRUE(client.SendRaw(w.bytes()).ok());
  auto reply = client.ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, static_cast<uint8_t>(ResponseTag::kError));
  Status remote = DecodeErrorPayload(reply->payload);
  EXPECT_NE(remote.message().find("frame too large"), std::string::npos);
  // Framing errors desynchronize the stream, so the server hangs up.
  auto next = client.ReadReply();
  EXPECT_FALSE(next.ok());
}

TEST_F(ServiceTest, ConcurrentClientsEachGetTheirOwnResponses) {
  // Reference answer computed over one connection, serially.
  Client reference = MustConnect();
  auto expected = reference.Search({"customer", 5, false});
  ASSERT_TRUE(expected.ok());

  constexpr int kClients = 6;
  constexpr int kRequestsEach = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequestsEach; ++i) {
        auto ping = client->Ping();
        if (!ping.ok() || *ping != "pong") {
          failures.fetch_add(1);
          return;
        }
        auto hits = client->Search({"customer", 5, false});
        if (!hits.ok() || hits->hits.size() != expected->hits.size()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t h = 0; h < hits->hits.size(); ++h) {
          uint64_t a, b;
          std::memcpy(&a, &hits->hits[h].score, sizeof(a));
          std::memcpy(&b, &expected->hits[h].score, sizeof(b));
          if (hits->hits[h].schema_name != expected->hits[h].schema_name ||
              a != b) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServiceTest, ClientReplySizeBoundIsConfigurable) {
  // A deliberately tiny bound: "pong" (5-byte body) fits, the vocabulary
  // summary does not — the client reports the oversize instead of trusting
  // the length prefix.
  auto small =
      Client::Connect("127.0.0.1", server_->port(), /*max_reply_bytes=*/8);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  ASSERT_TRUE(small->Ping().ok());
  auto summary = small->Vocab({"", 8});
  ASSERT_FALSE(summary.ok());
  EXPECT_TRUE(summary.status().IsParseError());
  EXPECT_NE(summary.status().message().find("frame too large"),
            std::string::npos);
  // The stream is desynchronized past the unread body, so callers reconnect
  // with a roomier bound rather than reuse this connection.
  auto roomy = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(roomy.ok());
  EXPECT_EQ(roomy->max_reply_bytes(), kDefaultMaxBody);
  roomy->set_max_reply_bytes(1u << 20);
  EXPECT_TRUE(roomy->Vocab({"", 8}).ok());
}

// Admission control and drain need their own server (they change its state),
// so they run outside the shared fixture.

TEST(ServiceLifecycle, StartOnBusyPortFailsFastWithoutHanging) {
  auto state = BuildTestState();
  ServerOptions options;
  options.port = 0;
  options.num_workers = 1;
  auto first = Server::Start(state, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Binding the port the first server holds must come back as the IOError
  // from bind(), and destroying the half-constructed server must not hang
  // waiting for an accept thread that was never spawned.
  options.port = (*first)->port();
  auto second = Server::Start(state, options);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsIOError()) << second.status().ToString();
  EXPECT_NE(second.status().message().find("bind"), std::string::npos);

  // The survivor is unaffected.
  auto client = Client::Connect("127.0.0.1", (*first)->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
}

TEST(ServiceLifecycle, StartWithBadHostFailsFastWithoutHanging) {
  auto state = BuildTestState();
  ServerOptions options;
  options.host = "not-an-address";
  auto server = Server::Start(state, options);
  ASSERT_FALSE(server.ok());
  EXPECT_TRUE(server.status().IsInvalidArgument())
      << server.status().ToString();
}

TEST(ServiceLifecycle, AdmissionControlRejectsBeyondQueueDepth) {
  auto state = BuildTestState();
  ServerOptions options;
  options.port = 0;
  options.num_workers = 1;
  options.queue_depth = 1;
  auto server = Server::Start(state, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Occupy the only worker: after this ping round-trips, the worker is
  // parked in this session's ReadFrame and cannot pop the queue.
  auto busy = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(busy.ok());
  ASSERT_TRUE(busy->Ping().ok());

  // Fills the depth-1 queue. No request sent — it just waits for a worker.
  auto queued = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(queued.ok());

  // Deterministically one past capacity → kRejected, surfaced by the client
  // library as a retryable error. Accept order follows connect order, so
  // this connection is the one that overflows.
  auto rejected = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(rejected.ok());
  auto reply = rejected->Ping();
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("rejected"), std::string::npos)
      << reply.status().ToString();

  busy->Close();  // frees the worker for the queued session
  ASSERT_TRUE(queued->Ping().ok());

  Server::Counters counters = (*server)->CountersNow();
  EXPECT_EQ(counters.rejected, 1u);
  EXPECT_EQ(counters.accepted, 3u);
  EXPECT_EQ(counters.protocol_errors, 0u);

  // Free the lone worker again (it is parked in queued's ReadFrame), then
  // probe the two framing-error causes. Each must land in its own counter
  // while protocol_errors stays the umbrella total.
  queued->Close();

  auto oversized = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(oversized.ok());
  {
    WireWriter w;
    w.PutU32(0xFFFFFFFFu);  // length prefix far beyond max_frame_bytes
    ASSERT_TRUE(oversized->SendRaw(w.bytes()).ok());
    auto reply = oversized->ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->tag, static_cast<uint8_t>(ResponseTag::kError));
    EXPECT_NE(DecodeErrorPayload(reply->payload).message().find(
                  "frame too large"),
              std::string::npos);
  }
  oversized->Close();

  auto malformed = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(malformed.ok());
  {
    WireWriter w;
    w.PutU32(0);  // zero-length body: no tag byte, structurally malformed
    ASSERT_TRUE(malformed->SendRaw(w.bytes()).ok());
    auto reply = malformed->ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->tag, static_cast<uint8_t>(ResponseTag::kError));
    EXPECT_NE(DecodeErrorPayload(reply->payload).message().find(
                  "zero-length frame"),
              std::string::npos);
  }

  // Both causes counted before the error reply is written, so reading the
  // replies above is enough synchronization.
  counters = (*server)->CountersNow();
  EXPECT_EQ(counters.oversized_frames, 1u);
  EXPECT_EQ(counters.malformed_frames, 1u);
  EXPECT_EQ(counters.protocol_errors, 2u);
  EXPECT_EQ(counters.rejected, 1u);
}

TEST(ServiceLifecycle, StatsSnapshotFullAndDeltaTileTheTimeline) {
  auto state = BuildTestState();
  ServerOptions options;
  options.port = 0;
  options.num_workers = 1;
  // A private registry: the default context shares the process-global one,
  // whose counters carry every other test's traffic.
  obs::MetricsRegistry registry;
  core::EngineContext context(&registry, nullptr);
  auto server = Server::Start(state, options, context);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());

  auto full = client->StatsSnapshot(/*delta=*/false);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->delta);
  EXPECT_GT(full->interval_ns, 0u);  // time since server start

#if HARMONY_OBS_ENABLED
  const auto* ping_total = full->snapshot.FindCounter("service.requests.ping");
  ASSERT_NE(ping_total, nullptr);
  EXPECT_EQ(ping_total->value, 1u);
#endif

  // Open a delta window: the first delta request resets the server-side
  // baseline, the second one closes the window.
  auto opener = client->StatsSnapshot(/*delta=*/true);
  ASSERT_TRUE(opener.ok()) << opener.status().ToString();
  EXPECT_TRUE(opener->delta);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(client->Ping().ok());
  auto window = client->StatsSnapshot(/*delta=*/true);
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  EXPECT_TRUE(window->delta);
  EXPECT_GT(window->interval_ns, 0u);

#if HARMONY_OBS_ENABLED
  // The baseline snapshot is taken while the opener request is in flight
  // (before its own counters land), so the window sees the opener's stats
  // increment but not the closer's: pings are exact, stats is >= 1.
  const auto* ping_delta =
      window->snapshot.FindCounter("service.requests.ping");
  ASSERT_NE(ping_delta, nullptr);
  EXPECT_EQ(ping_delta->value, 3u);
  const auto* stats_delta =
      window->snapshot.FindCounter("service.requests.stats");
  ASSERT_NE(stats_delta, nullptr);
  EXPECT_GE(stats_delta->value, 1u);
  const auto* ping_hist =
      window->snapshot.FindHistogram("service.handler_ns.ping");
  ASSERT_NE(ping_hist, nullptr);
  EXPECT_EQ(ping_hist->count, 3u);
  EXPECT_GT(ping_hist->sum, 0u);
#endif
}

TEST(ServiceLifecycle, RecentRequestRingKeepsLastNSummaries) {
  auto state = BuildTestState();
  ServerOptions options;
  options.port = 0;
  options.num_workers = 1;
  options.request_log_capacity = 4;
  auto server = Server::Start(state, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(client->Ping().ok());

  // The summary is pushed after the reply is written, so the last ping's
  // entry may trail its pong by an instant — poll briefly.
  std::vector<RequestSummary> recent;
  for (int spin = 0; spin < 200; ++spin) {
    recent = (*server)->RecentRequests();
    if (recent.size() == 4u && recent.back().id == 6u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(recent.size(), 4u);  // capacity bounds the ring
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].id, 3u + i);  // ids 1..2 evicted, 3..6 retained
    EXPECT_STREQ(recent[i].family, "ping");
    EXPECT_EQ(recent[i].reply_tag, static_cast<uint8_t>(ResponseTag::kOk));
    EXPECT_GE(recent[i].total_ns, recent[i].handler_ns);
    EXPECT_EQ(recent[i].reply_bytes, 4u);  // "pong"
  }
}

TEST(ServiceLifecycle, ShutdownFrameDrainsTheServer) {
  auto state = BuildTestState();
  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  auto server = Server::Start(state, options);
  ASSERT_TRUE(server.ok());

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  auto reply = client->Shutdown();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "draining");

  (*server)->Wait();  // returns only when the drain completes
  EXPECT_TRUE((*server)->draining());
  Server::Counters counters = (*server)->CountersNow();
  EXPECT_GE(counters.served_requests, 2u);
  EXPECT_EQ(counters.protocol_errors, 0u);
}

TEST(ServiceLifecycle, RequestDrainUnblocksWait) {
  auto state = BuildTestState();
  ServerOptions options;
  options.port = 0;
  options.num_workers = 1;
  auto server = Server::Start(state, options);
  ASSERT_TRUE(server.ok());
  // Two concurrent waiters plus the destructor's own Wait(): the join
  // sequence must run exactly once, with the other callers blocking until
  // it finishes rather than racing on the worker pool teardown.
  std::thread waiter_a([&] { (*server)->Wait(); });
  std::thread waiter_b([&] { (*server)->Wait(); });
  (*server)->RequestDrain();
  waiter_a.join();  // deadlocks here if drain does not propagate
  waiter_b.join();
  EXPECT_TRUE((*server)->draining());
}

TEST(ServiceState, EngineCacheLruEviction) {
  // engine_cache_max=2 over 3 distinct pairs: the least recently used
  // engine must be evicted, the eviction must be counted, and a request
  // still holding the evicted engine's shared_ptr must keep computing on it
  // safely.
  synth::NWaySpec spec;
  spec.seed = 31;
  spec.schema_count = 4;
  spec.universe_concepts = 10;
  spec.concepts_per_schema = 5;
  auto generated = synth::GenerateNWay(spec);
  repository::MetadataRepository repo;
  for (auto& schema : generated.schemas) {
    auto id = repo.RegisterSchema(std::move(schema));
    HARMONY_CHECK(id.ok());
  }
  StateOptions options;
  options.engine_cache_max = 2;
  options.build_vocabulary = false;
  obs::MetricsRegistry registry(nullptr);
  core::EngineContext context(&registry, nullptr);
  auto built = ServiceState::Build(std::move(repo), options, context);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ServiceState& state = **built;

  auto first = state.EngineFor("S1", "S2");
  ASSERT_TRUE(first.ok());
  std::shared_ptr<const core::MatchEngine> held = *first;
  ASSERT_TRUE(state.EngineFor("S1", "S3").ok());
  EXPECT_EQ(state.EngineCacheSize(), 2u);

  // Third distinct pair evicts (S1, S2) — the LRU back.
  ASSERT_TRUE(state.EngineFor("S1", "S4").ok());
  EXPECT_EQ(state.EngineCacheSize(), 2u);
  const auto* evictions =
      registry.Snapshot().FindCounter("service.engine_cache.evictions");
  ASSERT_NE(evictions, nullptr);
  EXPECT_EQ(evictions->value, 1u);

  // The evicted engine stays valid through our shared_ptr.
  EXPECT_GT(held->ComputeMatrix().pair_count(), 0u);

  // Re-requesting the evicted pair rebuilds (a distinct engine instance)
  // and evicts the new LRU back, (S1, S3).
  auto rebuilt = state.EngineFor("S1", "S2");
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_NE(rebuilt->get(), held.get());
  EXPECT_EQ(state.EngineCacheSize(), 2u);

  // A cache hit refreshes recency: touch (S1, S4), add a new pair, and the
  // untouched (S1, S2) is the one evicted.
  ASSERT_TRUE(state.EngineFor("S1", "S4").ok());
  ASSERT_TRUE(state.EngineFor("S2", "S3").ok());
  auto after = state.EngineFor("S1", "S4");
  ASSERT_TRUE(after.ok());
  // (S1, S4) survived both rounds as a hit — same instance throughout.
  const auto* evictions_after =
      registry.Snapshot().FindCounter("service.engine_cache.evictions");
  ASSERT_NE(evictions_after, nullptr);
  EXPECT_EQ(evictions_after->value, 3u);
}

TEST(ServiceState, RefusesEmptyRepository) {
  auto state = ServiceState::Build(repository::MetadataRepository());
  EXPECT_FALSE(state.ok());
  EXPECT_TRUE(state.status().IsInvalidArgument());
}

}  // namespace
}  // namespace harmony::service
