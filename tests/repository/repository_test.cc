#include "repository/metadata_repository.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/string_util.h"
#include "schema/builder.h"

namespace harmony::repository {
namespace {

schema::Schema MakeSchema(const std::string& name) {
  schema::RelationalBuilder b(name);
  auto t = b.Table("T", "A table in " + name);
  b.Column(t, "C1", schema::DataType::kString, "First column");
  b.Column(t, "C2", schema::DataType::kInteger);
  return std::move(b).Build();
}

Provenance MakeProv(const std::string& context) {
  Provenance p;
  p.author = "kps";
  p.tool = "harmony/1.0";
  p.created_at = "2009-01-04T09:00:00Z";
  p.context = context;
  p.threshold = 0.4;
  return p;
}

TEST(RepositoryTest, RegisterAndLookup) {
  MetadataRepository repo;
  auto id = repo.RegisterSchema(MakeSchema("SA"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(repo.schema_count(), 1u);
  EXPECT_EQ(repo.schema(*id).name(), "SA");
  auto found = repo.FindSchema("SA");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *id);
  EXPECT_TRUE(repo.FindSchema("SB").status().IsNotFound());
}

TEST(RepositoryTest, DuplicateNameRejected) {
  MetadataRepository repo;
  ASSERT_TRUE(repo.RegisterSchema(MakeSchema("SA")).ok());
  EXPECT_TRUE(repo.RegisterSchema(MakeSchema("SA")).status().IsAlreadyExists());
}

TEST(RepositoryTest, StoreMatchValidatesEndpoints) {
  MetadataRepository repo;
  auto a = *repo.RegisterSchema(MakeSchema("SA"));
  auto b = *repo.RegisterSchema(MakeSchema("SB"));

  std::vector<core::Correspondence> good = {{1, 1, 0.8}};
  EXPECT_TRUE(repo.StoreMatch(a, b, good, MakeProv("planning")).ok());

  std::vector<core::Correspondence> bad_schema = {{1, 1, 0.8}};
  EXPECT_TRUE(repo.StoreMatch(a, 99, bad_schema, MakeProv("planning"))
                  .status()
                  .IsInvalidArgument());

  std::vector<core::Correspondence> bad_element = {{999, 1, 0.8}};
  EXPECT_TRUE(repo.StoreMatch(a, b, bad_element, MakeProv("planning"))
                  .status()
                  .IsInvalidArgument());

  std::vector<core::Correspondence> root_element = {{0, 1, 0.8}};
  EXPECT_TRUE(repo.StoreMatch(a, b, root_element, MakeProv("planning"))
                  .status()
                  .IsInvalidArgument());
}

TEST(RepositoryTest, MatchQueries) {
  MetadataRepository repo;
  auto a = *repo.RegisterSchema(MakeSchema("SA"));
  auto b = *repo.RegisterSchema(MakeSchema("SB"));
  auto c = *repo.RegisterSchema(MakeSchema("SC"));
  ASSERT_TRUE(repo.StoreMatch(a, b, {{1, 1, 0.8}}, MakeProv("search")).ok());
  ASSERT_TRUE(repo.StoreMatch(b, c, {{2, 2, 0.7}}, MakeProv("bi")).ok());

  EXPECT_EQ(repo.MatchesFor(a).size(), 1u);
  EXPECT_EQ(repo.MatchesFor(b).size(), 2u);
  EXPECT_EQ(repo.MatchesBetween(a, b).size(), 1u);
  EXPECT_EQ(repo.MatchesBetween(b, a).size(), 1u);  // Either direction.
  EXPECT_EQ(repo.MatchesBetween(a, c).size(), 0u);
  // Context-dependence: search-grade matches are not BI-grade.
  EXPECT_EQ(repo.MatchesInContext("search").size(), 1u);
  EXPECT_EQ(repo.MatchesInContext("bi").size(), 1u);
  EXPECT_EQ(repo.MatchesInContext("code_generation").size(), 0u);
}

TEST(RepositoryTest, SaveLoadRoundTrip) {
  std::string dir = ::testing::TempDir() + "/harmony_repo_test";
  std::filesystem::remove_all(dir);
  {
    MetadataRepository repo;
    auto a = *repo.RegisterSchema(MakeSchema("SA"));
    auto b = *repo.RegisterSchema(MakeSchema("SB"));
    ASSERT_TRUE(
        repo.StoreMatch(a, b, {{1, 1, 0.8}, {2, 3, 0.55}}, MakeProv("planning"))
            .ok());
    ASSERT_TRUE(repo.SaveTo(dir).ok());
  }
  auto loaded = MetadataRepository::LoadFrom(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->schema_count(), 2u);
  EXPECT_EQ(loaded->match_count(), 1u);
  const MatchArtifact& m = loaded->match(0);
  EXPECT_EQ(m.links.size(), 2u);
  EXPECT_EQ(m.provenance.author, "kps");
  EXPECT_EQ(m.provenance.context, "planning");
  EXPECT_NEAR(m.provenance.threshold, 0.4, 1e-9);
  EXPECT_NEAR(m.links[1].score, 0.55, 1e-9);
  EXPECT_EQ(loaded->schema(0).name(), "SA");
  EXPECT_EQ(loaded->schema(0).element(1).documentation, "A table in SA");
  std::filesystem::remove_all(dir);
}

TEST(RepositoryTest, LoadFromMissingDirIsIOError) {
  EXPECT_TRUE(
      MetadataRepository::LoadFrom("/nonexistent/nowhere").status().IsIOError());
}

TEST(RepositoryTest, BuildSearchIndexOverContents) {
  MetadataRepository repo;
  ASSERT_TRUE(repo.RegisterSchema(MakeSchema("SA")).ok());
  ASSERT_TRUE(repo.RegisterSchema(MakeSchema("SB")).ok());
  auto index = repo.BuildSearchIndex();
  EXPECT_EQ(index.size(), 2u);
  auto hits = index.SearchKeywords("first column", 5);
  EXPECT_FALSE(hits.empty());
}

TEST(RepositoryTest, AllSchemasStablePointers) {
  MetadataRepository repo;
  ASSERT_TRUE(repo.RegisterSchema(MakeSchema("S1")).ok());
  auto before = repo.AllSchemas();
  for (int i = 2; i <= 20; ++i) {
    ASSERT_TRUE(repo.RegisterSchema(MakeSchema(StringFormat("S%d", i))).ok());
  }
  // The first schema's address must not have moved.
  EXPECT_EQ(repo.AllSchemas()[0], before[0]);
  EXPECT_EQ(repo.AllSchemas().size(), 20u);
}

}  // namespace
}  // namespace harmony::repository
