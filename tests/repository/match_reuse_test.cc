#include "repository/match_reuse.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::repository {
namespace {

schema::Schema MakeSchema(const std::string& name) {
  schema::RelationalBuilder b(name);
  auto t = b.Table("T");
  b.Column(t, "C1");
  b.Column(t, "C2");
  b.Column(t, "C3");
  return std::move(b).Build();
}

Provenance Prov(const std::string& context = "planning") {
  Provenance p;
  p.author = "eng";
  p.tool = "harmony";
  p.created_at = "2009-01-05";
  p.context = context;
  return p;
}

struct Fixture {
  MetadataRepository repo;
  SchemaId a, b, c;

  Fixture() {
    a = *repo.RegisterSchema(MakeSchema("A"));
    b = *repo.RegisterSchema(MakeSchema("B"));
    c = *repo.RegisterSchema(MakeSchema("C"));
  }
};

TEST(MatchReuseTest, ComposesThroughIntermediate) {
  Fixture f;
  // A.C1(id 2) ↔ C.C1(2) and C.C1(2) ↔ B.C2(3).
  ASSERT_TRUE(f.repo.StoreMatch(f.a, f.c, {{2, 2, 0.9}}, Prov()).ok());
  ASSERT_TRUE(f.repo.StoreMatch(f.c, f.b, {{2, 3, 0.8}}, Prov()).ok());
  auto composed = ComposePriorMatches(f.repo, f.a, f.b);
  ASSERT_EQ(composed.size(), 1u);
  EXPECT_EQ(composed[0].source, 2u);
  EXPECT_EQ(composed[0].target, 3u);
  EXPECT_NEAR(composed[0].score, 0.8 * 0.85, 1e-9);  // min(0.9,0.8)·decay.
}

TEST(MatchReuseTest, HandlesReversedArtifactDirection) {
  Fixture f;
  // Stored as C↔A and B↔C; composition A→B must still work.
  ASSERT_TRUE(f.repo.StoreMatch(f.c, f.a, {{2, 2, 0.9}}, Prov()).ok());
  ASSERT_TRUE(f.repo.StoreMatch(f.b, f.c, {{4, 2, 0.7}}, Prov()).ok());
  auto composed = ComposePriorMatches(f.repo, f.a, f.b);
  ASSERT_EQ(composed.size(), 1u);
  EXPECT_EQ(composed[0].source, 2u);
  EXPECT_EQ(composed[0].target, 4u);
}

TEST(MatchReuseTest, NoIntermediateMeansNoProposals) {
  Fixture f;
  ASSERT_TRUE(f.repo.StoreMatch(f.a, f.c, {{2, 2, 0.9}}, Prov()).ok());
  EXPECT_TRUE(ComposePriorMatches(f.repo, f.a, f.b).empty());
}

TEST(MatchReuseTest, MinScoreFilters) {
  Fixture f;
  ASSERT_TRUE(f.repo.StoreMatch(f.a, f.c, {{2, 2, 0.3}}, Prov()).ok());
  ASSERT_TRUE(f.repo.StoreMatch(f.c, f.b, {{2, 3, 0.3}}, Prov()).ok());
  ReuseOptions strict;
  strict.min_score = 0.5;
  EXPECT_TRUE(ComposePriorMatches(f.repo, f.a, f.b, strict).empty());
  ReuseOptions loose;
  loose.min_score = 0.1;
  EXPECT_EQ(ComposePriorMatches(f.repo, f.a, f.b, loose).size(), 1u);
}

TEST(MatchReuseTest, ContextFilterRespectsFitnessForPurpose) {
  Fixture f;
  ASSERT_TRUE(f.repo.StoreMatch(f.a, f.c, {{2, 2, 0.9}}, Prov("search")).ok());
  ASSERT_TRUE(f.repo.StoreMatch(f.c, f.b, {{2, 3, 0.9}}, Prov("bi")).ok());
  ReuseOptions bi_only;
  bi_only.required_context = "bi";
  // The A↔C hop is search-grade, so the BI-grade composition fails.
  EXPECT_TRUE(ComposePriorMatches(f.repo, f.a, f.b, bi_only).empty());
  ReuseOptions any;
  EXPECT_EQ(ComposePriorMatches(f.repo, f.a, f.b, any).size(), 1u);
}

TEST(MatchReuseTest, DuplicateCompositionsKeepBestScore) {
  Fixture f;
  SchemaId d = *f.repo.RegisterSchema(MakeSchema("D"));
  // Two intermediate routes A→C→B (weak) and A→D→B (strong) to the same pair.
  ASSERT_TRUE(f.repo.StoreMatch(f.a, f.c, {{2, 2, 0.4}}, Prov()).ok());
  ASSERT_TRUE(f.repo.StoreMatch(f.c, f.b, {{2, 3, 0.4}}, Prov()).ok());
  ASSERT_TRUE(f.repo.StoreMatch(f.a, d, {{2, 2, 0.9}}, Prov()).ok());
  ASSERT_TRUE(f.repo.StoreMatch(d, f.b, {{2, 3, 0.9}}, Prov()).ok());
  auto composed = ComposePriorMatches(f.repo, f.a, f.b);
  ASSERT_EQ(composed.size(), 1u);
  EXPECT_NEAR(composed[0].score, 0.9 * 0.85, 1e-9);
}

TEST(MatchReuseTest, ResultsSortedByScore) {
  Fixture f;
  ASSERT_TRUE(
      f.repo.StoreMatch(f.a, f.c, {{1, 1, 0.9}, {2, 2, 0.5}}, Prov()).ok());
  ASSERT_TRUE(
      f.repo.StoreMatch(f.c, f.b, {{1, 1, 0.9}, {2, 2, 0.5}}, Prov()).ok());
  auto composed = ComposePriorMatches(f.repo, f.a, f.b);
  ASSERT_EQ(composed.size(), 2u);
  EXPECT_GT(composed[0].score, composed[1].score);
}

}  // namespace
}  // namespace harmony::repository
