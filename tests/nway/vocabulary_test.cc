#include "nway/vocabulary_builder.h"

#include <gtest/gtest.h>

#include "schema/builder.h"
#include "synth/generator.h"

namespace harmony::nway {
namespace {

// Three tiny schemata with hand-planted identities:
//   term X in all three, term Y in S1 and S2, term Z only in S3.
struct Fixture {
  schema::Schema s1, s2, s3;

  Fixture() : s1(Make("S1")), s2(Make("S2")), s3(Make("S3")) {}

  static schema::Schema Make(const std::string& name) {
    schema::RelationalBuilder b(name);
    auto t = b.Table("T");
    b.Column(t, "X");
    if (name != "S3") b.Column(t, "Y");
    if (name == "S3") b.Column(t, "Z");
    return std::move(b).Build();
  }

  std::vector<PairwiseMatches> Matches() {
    auto link = [](const schema::Schema& a, const schema::Schema& b,
                   const std::string& pa, const std::string& pb) {
      return core::Correspondence{*a.FindByPath(pa), *b.FindByPath(pb), 0.9};
    };
    std::vector<PairwiseMatches> out;
    out.push_back({0, 1, {link(s1, s2, "T.X", "T.X"), link(s1, s2, "T.Y", "T.Y"),
                          link(s1, s2, "T", "T")}});
    out.push_back({0, 2, {link(s1, s3, "T.X", "T.X"), link(s1, s3, "T", "T")}});
    out.push_back({1, 2, {link(s2, s3, "T.X", "T.X"), link(s2, s3, "T", "T")}});
    return out;
  }
};

TEST(VocabularyTest, RegionsPartitionTerms) {
  Fixture f;
  ComprehensiveVocabulary vocab({&f.s1, &f.s2, &f.s3}, f.Matches());
  // Terms: {T×3}, {X×3}, {Y×2}, {Z}.
  EXPECT_EQ(vocab.terms().size(), 4u);
  EXPECT_EQ(vocab.RegionCount(0b111), 2u);  // T and X.
  EXPECT_EQ(vocab.RegionCount(0b011), 1u);  // Y in S1,S2.
  EXPECT_EQ(vocab.RegionCount(0b100), 1u);  // Z only in S3.
  EXPECT_EQ(vocab.FullOverlapCount(), 2u);
}

TEST(VocabularyTest, TransitiveClosureMergesChains) {
  Fixture f;
  // Only chain links: S1.X↔S2.X and S2.X↔S3.X; S1↔S3 missing. The closure
  // must still put all three X's into one term.
  auto link = [](const schema::Schema& a, const schema::Schema& b) {
    return core::Correspondence{*a.FindByPath("T.X"), *b.FindByPath("T.X"), 0.9};
  };
  std::vector<PairwiseMatches> matches;
  matches.push_back({0, 1, {link(f.s1, f.s2)}});
  matches.push_back({1, 2, {link(f.s2, f.s3)}});
  ComprehensiveVocabulary vocab({&f.s1, &f.s2, &f.s3}, matches);
  EXPECT_EQ(vocab.RegionCount(0b111), 1u);
}

TEST(VocabularyTest, EveryElementInExactlyOneTerm) {
  Fixture f;
  ComprehensiveVocabulary vocab({&f.s1, &f.s2, &f.s3}, f.Matches());
  size_t total_members = 0;
  for (const Term& t : vocab.terms()) total_members += t.members.size();
  EXPECT_EQ(total_members, f.s1.element_count() + f.s2.element_count() +
                               f.s3.element_count());
}

TEST(VocabularyTest, MasksMatchMembers) {
  Fixture f;
  ComprehensiveVocabulary vocab({&f.s1, &f.s2, &f.s3}, f.Matches());
  for (const Term& t : vocab.terms()) {
    uint32_t mask = 0;
    for (const ElementRef& ref : t.members) mask |= (1u << ref.schema_index);
    EXPECT_EQ(mask, t.schema_mask);
  }
}

TEST(VocabularyTest, RegionHistogramSorted) {
  Fixture f;
  ComprehensiveVocabulary vocab({&f.s1, &f.s2, &f.s3}, f.Matches());
  auto hist = vocab.RegionHistogram();
  ASSERT_FALSE(hist.empty());
  for (size_t i = 1; i < hist.size(); ++i) {
    EXPECT_GE(hist[i - 1].second, hist[i].second);
  }
  size_t total = 0;
  for (auto& [mask, n] : hist) {
    (void)mask;
    total += n;
  }
  EXPECT_EQ(total, vocab.terms().size());
}

TEST(VocabularyTest, RegionNames) {
  Fixture f;
  ComprehensiveVocabulary vocab({&f.s1, &f.s2, &f.s3}, f.Matches());
  EXPECT_EQ(vocab.RegionName(0b101), "{S1,S3}");
  EXPECT_EQ(vocab.RegionName(0b010), "{S2}");
}

TEST(VocabularyTest, DisplayNameIsMajorityName) {
  Fixture f;
  ComprehensiveVocabulary vocab({&f.s1, &f.s2, &f.s3}, f.Matches());
  bool found_x = false;
  for (const Term& t : vocab.terms()) {
    if (t.schema_mask == 0b111 && t.members.size() == 3 && t.display_name == "x") {
      found_x = true;
    }
  }
  EXPECT_TRUE(found_x);
}

TEST(VocabularyTest, CsvExportContainsTermsAndRegions) {
  Fixture f;
  ComprehensiveVocabulary vocab({&f.s1, &f.s2, &f.s3}, f.Matches());
  std::string csv = vocab.ToCsv();
  EXPECT_NE(csv.find("term,region,member_count,members"), std::string::npos);
  EXPECT_NE(csv.find("{S1,S2,S3}"), std::string::npos);
  EXPECT_NE(csv.find("S3:T.Z"), std::string::npos);
}

TEST(VocabularyTest, NoMatchesMeansAllSingletons) {
  Fixture f;
  ComprehensiveVocabulary vocab({&f.s1, &f.s2, &f.s3}, {});
  EXPECT_EQ(vocab.terms().size(), f.s1.element_count() + f.s2.element_count() +
                                      f.s3.element_count());
  EXPECT_EQ(vocab.FullOverlapCount(), 0u);
}

TEST(MatchAllPairsTest, CoversEveryUnorderedPair) {
  synth::NWaySpec spec;
  spec.schema_count = 3;
  spec.universe_concepts = 8;
  spec.concepts_per_schema = 4;
  auto gen = synth::GenerateNWay(spec);
  std::vector<const schema::Schema*> schemas;
  for (const auto& s : gen.schemas) schemas.push_back(&s);
  auto matches = MatchAllPairs(schemas, 0.4);
  EXPECT_EQ(matches.size(), 3u);  // C(3,2).
  for (const auto& pm : matches) {
    EXPECT_LT(pm.source_index, pm.target_index);
  }
}

TEST(VocabularyTest, PartitionLatticeBoundedByTwoToTheNMinusOne) {
  synth::NWaySpec spec;
  spec.schema_count = 4;
  spec.universe_concepts = 12;
  spec.concepts_per_schema = 6;
  auto gen = synth::GenerateNWay(spec);
  std::vector<const schema::Schema*> schemas;
  for (const auto& s : gen.schemas) schemas.push_back(&s);
  ComprehensiveVocabulary vocab(schemas, MatchAllPairs(schemas, 0.45));
  auto hist = vocab.RegionHistogram();
  EXPECT_LE(hist.size(), 15u);  // 2^4 − 1.
  for (auto& [mask, n] : hist) {
    (void)n;
    EXPECT_GT(mask, 0u);
    EXPECT_LT(mask, 16u);
  }
}

}  // namespace
}  // namespace harmony::nway
