#include "nway/mediated_schema.h"

#include <gtest/gtest.h>

#include "schema/builder.h"
#include "synth/generator.h"

namespace harmony::nway {
namespace {

// Three agencies with a shared "Person" concept, a pairwise-shared
// "Vehicle" concept, and private extras.
struct Beaker {
  schema::Schema s1, s2, s3;

  Beaker() : s1(Make("S1", true, true)), s2(Make("S2", true, true)),
             s3(Make("S3", true, false)) {}

  static schema::Schema Make(const std::string& name, bool person, bool vehicle) {
    schema::RelationalBuilder b(name);
    if (person) {
      auto p = b.Table("PERSON", "A person");
      b.Column(p, "NAME", schema::DataType::kString, "Name of the person");
      b.Column(p, "BIRTH_DATE", schema::DataType::kDate, "Birth date");
      if (name == "S1") b.Column(p, "SHOE_SIZE", schema::DataType::kDecimal);
    }
    if (vehicle) {
      auto v = b.Table("VEHICLE", "A vehicle");
      b.Column(v, "VIN", schema::DataType::kString, "Vehicle id number");
    }
    // A genuinely private concept per agency (distinct vocabulary).
    if (name == "S1") {
      auto x = b.Table("FISHERY", "Fish stocks");
      b.Column(x, "TONNAGE", schema::DataType::kDecimal);
    } else if (name == "S2") {
      auto x = b.Table("PAYROLL", "Salary runs");
      b.Column(x, "GROSS_AMOUNT", schema::DataType::kDecimal);
    } else {
      auto x = b.Table("ORCHARD", "Fruit trees");
      b.Column(x, "ACREAGE", schema::DataType::kDecimal);
    }
    return std::move(b).Build();
  }

  ComprehensiveVocabulary Vocab() {
    std::vector<const schema::Schema*> schemas{&s1, &s2, &s3};
    return ComprehensiveVocabulary(schemas, MatchAllPairs(schemas, 0.4));
  }
};

TEST(MediatedSchemaTest, DistillsSharedConcepts) {
  Beaker beaker;
  auto vocab = beaker.Vocab();
  auto result = BuildMediatedSchema(vocab);
  // PERSON is in all three, VEHICLE in two — both qualify at min_sources 2.
  EXPECT_GE(result.containers_emitted, 2u);
  EXPECT_GE(result.leaves_emitted, 3u);  // name, birth date, vin.
  EXPECT_TRUE(result.schema.Validate().ok());
  EXPECT_TRUE(result.schema.FindByPath("person.name").ok() ||
              result.schema.FindByPath("person").ok());
}

TEST(MediatedSchemaTest, PrivateConceptsExcluded) {
  Beaker beaker;
  auto vocab = beaker.Vocab();
  auto result = BuildMediatedSchema(vocab);
  for (schema::ElementId id : result.schema.AllElementIds()) {
    const std::string& name = result.schema.element(id).name;
    EXPECT_EQ(name.find("fishery"), std::string::npos) << name;
    EXPECT_EQ(name.find("payroll"), std::string::npos) << name;
    EXPECT_EQ(name.find("orchard"), std::string::npos) << name;
    EXPECT_EQ(name.find("shoe"), std::string::npos) << name;
  }
}

TEST(MediatedSchemaTest, MinSourcesThree) {
  Beaker beaker;
  auto vocab = beaker.Vocab();
  MediatedSchemaOptions opts;
  opts.min_sources = 3;
  auto result = BuildMediatedSchema(vocab, opts);
  // Only the PERSON concept spans all three schemata.
  EXPECT_EQ(result.containers_emitted, 1u);
  for (schema::ElementId id : result.schema.AllElementIds()) {
    EXPECT_EQ(result.schema.element(id).name.find("vehicle"), std::string::npos);
  }
}

TEST(MediatedSchemaTest, ProvenanceCoversEveryEmittedElement) {
  Beaker beaker;
  auto vocab = beaker.Vocab();
  auto result = BuildMediatedSchema(vocab);
  for (schema::ElementId id : result.schema.AllElementIds()) {
    std::string path = result.schema.Path(id);
    if (result.schema.element(id).name == "SharedElements") continue;
    ASSERT_TRUE(result.provenance.count(path)) << path;
    const auto& members = result.provenance.at(path);
    EXPECT_GE(members.size(), 2u) << path;
    for (const auto& ref : members) {
      EXPECT_TRUE(vocab.schema(ref.schema_index).Contains(ref.element));
    }
  }
}

TEST(MediatedSchemaTest, TypesAndDocsDistilled) {
  Beaker beaker;
  auto vocab = beaker.Vocab();
  auto result = BuildMediatedSchema(vocab);
  bool found_date = false;
  for (schema::ElementId id : result.schema.LeafIds()) {
    if (result.schema.element(id).type == schema::DataType::kDate) {
      found_date = true;
      EXPECT_FALSE(result.schema.element(id).documentation.empty());
    }
  }
  EXPECT_TRUE(found_date);
}

TEST(MediatedSchemaTest, SourceAnnotationsRecorded) {
  Beaker beaker;
  auto vocab = beaker.Vocab();
  auto result = BuildMediatedSchema(vocab);
  for (schema::ElementId id : result.schema.AllElementIds()) {
    const auto& e = result.schema.element(id);
    if (e.name == "SharedElements") continue;
    ASSERT_TRUE(e.annotations.count("sources")) << e.name;
    EXPECT_EQ(e.annotations.at("sources").front(), '{');
  }
}

TEST(MediatedCoverageTest, SharedHeavySchemaCoveredBetter) {
  Beaker beaker;
  auto vocab = beaker.Vocab();
  auto result = BuildMediatedSchema(vocab);
  // S2 (person + vehicle, no private column) should be covered better than
  // S3 (person only + extras).
  double c2 = MediatedCoverage(vocab, result, 1);
  double c3 = MediatedCoverage(vocab, result, 2);
  EXPECT_GT(c2, c3);
  EXPECT_GT(c2, 0.5);
}

// The coverage computation is fed by provenance refs that may come from a
// stale or foreign result object; every index is bounds-checked against the
// vocabulary instead of silently skewing (or corrupting) the ratio.
TEST(MediatedCoverageDeathTest, OutOfRangeInputsTripCheck) {
  Beaker beaker;
  auto vocab = beaker.Vocab();
  auto result = BuildMediatedSchema(vocab);
  EXPECT_DEATH(MediatedCoverage(vocab, result, vocab.schema_count()),
               "out of range");

  MediatedSchemaResult foreign_schema;
  foreign_schema.provenance["X"] = {
      ElementRef{vocab.schema_count() + 4, 1}};
  EXPECT_DEATH(MediatedCoverage(vocab, foreign_schema, 0), "out of range");

  MediatedSchemaResult foreign_element;
  foreign_element.provenance["X"] = {ElementRef{
      0, static_cast<schema::ElementId>(beaker.s1.node_count() + 9)}};
  EXPECT_DEATH(MediatedCoverage(vocab, foreign_element, 0), "out of range");
}

TEST(MediatedSchemaTest, ScalesToGeneratedCommunity) {
  synth::NWaySpec spec;
  spec.schema_count = 4;
  spec.universe_concepts = 14;
  spec.concepts_per_schema = 9;  // Forced overlap.
  auto gen = synth::GenerateNWay(spec);
  std::vector<const schema::Schema*> schemas;
  for (const auto& s : gen.schemas) schemas.push_back(&s);
  ComprehensiveVocabulary vocab(schemas, MatchAllPairs(schemas, 0.45));
  auto result = BuildMediatedSchema(vocab);
  EXPECT_GT(result.containers_emitted, 0u);
  EXPECT_GT(result.leaves_emitted, 10u);
  EXPECT_TRUE(result.schema.Validate().ok());
  // Every member schema should be at least partially covered.
  for (size_t i = 0; i < schemas.size(); ++i) {
    EXPECT_GT(MediatedCoverage(vocab, result, i), 0.1) << "schema " << i;
  }
}

}  // namespace
}  // namespace harmony::nway
