// The parallel N-way merge's contract is bitwise identity: the sharded
// union-find build (NwayOptions::parallel_merge) must produce a vocabulary
// indistinguishable from the serial baseline — same terms in the same
// order, same members in the same order, same masks, same region histogram,
// same CSV bytes — for ANY feeding order, pair direction, thread count, or
// shard grain. These property tests pin that over randomized synthetic
// instances, and the stress test pins context isolation the way
// tests/obs/context_test.cc does for the pairwise engine: two concurrent
// builds on separate EngineContexts stay metric-disjoint and byte-identical.
// The CI sanitizer legs (ASan + TSan) run this suite in their priority
// pass.

#include "nway/vocabulary_builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schema/builder.h"
#include "synth/generator.h"

namespace harmony::nway {
namespace {

NwayOptions SerialMerge() {
  NwayOptions options;
  options.parallel_merge = false;
  return options;
}

NwayOptions ParallelMerge(size_t num_threads, size_t grain = 0) {
  NwayOptions options;
  options.parallel_merge = true;
  options.num_threads = num_threads;
  options.grain = grain;
  return options;
}

// One randomized instance: generated schemata, the pairwise matches the
// engine finds over them, and the serial-merge baseline vocabulary every
// parallel variant must reproduce byte for byte.
struct Instance {
  std::vector<schema::Schema> schemas;
  std::vector<const schema::Schema*> ptrs;
  double threshold = 0.0;
  std::vector<PairwiseMatches> matches;
  std::unique_ptr<ComprehensiveVocabulary> serial;
  size_t total_links = 0;
};

std::unique_ptr<Instance> MakeInstance(uint64_t seed) {
  auto inst = std::make_unique<Instance>();
  synth::NWaySpec spec;
  spec.seed = 1000 + seed * 31;
  spec.schema_count = 3 + seed % 4;           // 3..6 schemata
  spec.universe_concepts = 10 + (seed % 5) * 3;
  spec.concepts_per_schema = 5 + seed % 5;
  inst->schemas = synth::GenerateNWay(spec).schemas;
  for (const auto& s : inst->schemas) inst->ptrs.push_back(&s);
  inst->threshold = 0.35 + 0.05 * static_cast<double>(seed % 3);
  inst->matches = MatchAllPairs(inst->ptrs, inst->threshold);
  for (const auto& pm : inst->matches) inst->total_links += pm.links.size();
  inst->serial = std::make_unique<ComprehensiveVocabulary>(
      inst->ptrs, inst->matches, core::EngineContext(), SerialMerge());
  return inst;
}

constexpr uint64_t kInstances = 20;

// Built once, shared by every property test (MatchAllPairs over 20
// instances is the expensive part; the builds under test are cheap).
const std::vector<std::unique_ptr<Instance>>& Instances() {
  static auto* instances = [] {
    auto* v = new std::vector<std::unique_ptr<Instance>>();
    for (uint64_t seed = 0; seed < kInstances; ++seed) {
      v->push_back(MakeInstance(seed));
    }
    return v;
  }();
  return *instances;
}

// Bitwise identity: every observable surface, not just the parts a caller
// happens to look at.
void ExpectIdentical(const ComprehensiveVocabulary& actual,
                     const ComprehensiveVocabulary& expected,
                     const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(actual.terms().size(), expected.terms().size());
  for (size_t t = 0; t < expected.terms().size(); ++t) {
    const Term& a = actual.terms()[t];
    const Term& e = expected.terms()[t];
    EXPECT_EQ(a.schema_mask, e.schema_mask) << "term " << t;
    EXPECT_EQ(a.display_name, e.display_name) << "term " << t;
    ASSERT_EQ(a.members.size(), e.members.size()) << "term " << t;
    for (size_t m = 0; m < e.members.size(); ++m) {
      EXPECT_TRUE(a.members[m] == e.members[m])
          << "term " << t << " member " << m;
    }
  }
  EXPECT_EQ(actual.RegionHistogram(), expected.RegionHistogram());
  EXPECT_EQ(actual.ToCsv(), expected.ToCsv());
}

// (a) The merge must not care what order correspondences arrive in: the
// match lists are shuffled (and the links within each list too), which is
// exactly the nondeterministic arrival order a streaming build sees.
TEST(VocabularyParallelTest, InvariantUnderShuffledMatchOrder) {
  for (uint64_t seed = 0; seed < kInstances; ++seed) {
    const Instance& inst = *Instances()[seed];
    std::mt19937 rng(static_cast<uint32_t>(7 + seed));
    std::vector<PairwiseMatches> shuffled = inst.matches;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    for (auto& pm : shuffled) {
      std::shuffle(pm.links.begin(), pm.links.end(), rng);
    }
    ComprehensiveVocabulary vocab(inst.ptrs, shuffled, core::EngineContext(),
                                  ParallelMerge(4));
    ExpectIdentical(vocab, *inst.serial,
                    "shuffled, seed=" + std::to_string(seed));
  }
}

// (b) A correspondence is symmetric: feeding every pair in the reversed
// direction (and, for odd pairs only, a mixed orientation) must not move a
// single byte of the output.
TEST(VocabularyParallelTest, InvariantUnderReversedPairDirection) {
  auto reverse = [](const PairwiseMatches& pm) {
    PairwiseMatches out;
    out.source_index = pm.target_index;
    out.target_index = pm.source_index;
    out.links.reserve(pm.links.size());
    for (const auto& link : pm.links) {
      out.links.push_back({link.target, link.source, link.score});
    }
    return out;
  };
  for (uint64_t seed = 0; seed < kInstances; ++seed) {
    const Instance& inst = *Instances()[seed];
    std::vector<PairwiseMatches> reversed;
    std::vector<PairwiseMatches> mixed;
    for (size_t k = 0; k < inst.matches.size(); ++k) {
      reversed.push_back(reverse(inst.matches[k]));
      mixed.push_back(k % 2 == 1 ? reverse(inst.matches[k])
                                 : inst.matches[k]);
    }
    ComprehensiveVocabulary from_reversed(inst.ptrs, reversed,
                                          core::EngineContext(),
                                          ParallelMerge(4));
    ExpectIdentical(from_reversed, *inst.serial,
                    "reversed, seed=" + std::to_string(seed));
    ComprehensiveVocabulary from_mixed(inst.ptrs, mixed,
                                       core::EngineContext(),
                                       ParallelMerge(3));
    ExpectIdentical(from_mixed, *inst.serial,
                    "mixed, seed=" + std::to_string(seed));
  }
}

// (c) Thread count and shard grain select a schedule, never a result:
// num_threads=1 (the exact inline path) through oversubscribed, and grains
// from degenerate (1 element per shard) to "everything in one shard".
TEST(VocabularyParallelTest, InvariantUnderThreadCountAndGrain) {
  const std::pair<size_t, size_t> kConfigs[] = {
      {1, 0}, {2, 0}, {4, 0}, {8, 0}, {2, 1}, {4, 3}, {4, 1 << 20},
  };
  for (uint64_t seed = 0; seed < kInstances; ++seed) {
    const Instance& inst = *Instances()[seed];
    for (const auto& [threads, grain] : kConfigs) {
      ComprehensiveVocabulary vocab(inst.ptrs, inst.matches,
                                    core::EngineContext(),
                                    ParallelMerge(threads, grain));
      ExpectIdentical(vocab, *inst.serial,
                      "seed=" + std::to_string(seed) +
                          " threads=" + std::to_string(threads) +
                          " grain=" + std::to_string(grain));
    }
  }
}

// The streaming driver: matches flow into the closure from the pair
// fan-out's own workers, with no barrier between matching and merging. The
// matches it returns and the vocabulary it builds must both equal the
// barriered two-step.
TEST(VocabularyParallelTest, StreamingBuildMatchesBarrieredBuild) {
  for (uint64_t seed = 0; seed < kInstances; seed += 4) {
    const Instance& inst = *Instances()[seed];
    NwayBuildResult result = MatchAndBuildVocabulary(
        inst.ptrs, inst.threshold, /*one_to_one=*/true, {}, ParallelMerge(4));
    ASSERT_EQ(result.matches.size(), inst.matches.size());
    for (size_t k = 0; k < inst.matches.size(); ++k) {
      const PairwiseMatches& got = result.matches[k];
      const PairwiseMatches& want = inst.matches[k];
      EXPECT_EQ(got.source_index, want.source_index);
      EXPECT_EQ(got.target_index, want.target_index);
      ASSERT_EQ(got.links.size(), want.links.size()) << "pair " << k;
      for (size_t l = 0; l < want.links.size(); ++l) {
        EXPECT_TRUE(got.links[l] == want.links[l]) << "pair " << k;
        EXPECT_EQ(got.links[l].score, want.links[l].score) << "pair " << k;
      }
    }
    ExpectIdentical(result.vocabulary, *inst.serial,
                    "streaming, seed=" + std::to_string(seed));

    // And the serial-merge A/B flag on the same driver.
    NwayBuildResult serial_result = MatchAndBuildVocabulary(
        inst.ptrs, inst.threshold, /*one_to_one=*/true, {}, SerialMerge());
    ExpectIdentical(serial_result.vocabulary, *inst.serial,
                    "streaming-serial, seed=" + std::to_string(seed));
  }
}

// Degenerate inputs must agree too: no matches (all singletons) and no
// schemata at all.
TEST(VocabularyParallelTest, EmptyInputsAgreeWithSerial) {
  const Instance& inst = *Instances()[0];
  ComprehensiveVocabulary serial_empty(inst.ptrs, {}, core::EngineContext(),
                                       SerialMerge());
  ComprehensiveVocabulary parallel_empty(inst.ptrs, {}, core::EngineContext(),
                                         ParallelMerge(4));
  ExpectIdentical(parallel_empty, serial_empty, "no matches");

  ComprehensiveVocabulary no_schemas({}, {}, core::EngineContext(),
                                     ParallelMerge(4));
  EXPECT_EQ(no_schemas.terms().size(), 0u);
  EXPECT_EQ(no_schemas.ToCsv(),
            ComprehensiveVocabulary({}, {}, core::EngineContext(),
                                    SerialMerge())
                .ToCsv());
}

// The incremental builder fed from many threads at once: AddMatches is the
// lock-free surface match workers hit concurrently, so hammer it from
// plain std::threads (not ParallelFor, which would serialize per shard)
// and require the canonical result. TSan keeps this honest.
TEST(VocabularyStressTest, ConcurrentAddMatchesFromManyThreads) {
  const Instance& inst = *Instances()[1];
  for (int round = 0; round < 3; ++round) {
    VocabularyBuilder builder(inst.ptrs, ParallelMerge(4));
    std::vector<std::thread> feeders;
    constexpr size_t kFeeders = 4;
    for (size_t f = 0; f < kFeeders; ++f) {
      feeders.emplace_back([&, f] {
        for (size_t k = f; k < inst.matches.size(); k += kFeeders) {
          builder.AddMatches(inst.matches[k]);
        }
      });
    }
    for (auto& t : feeders) t.join();
    ComprehensiveVocabulary vocab = builder.Finish();
    ExpectIdentical(vocab, *inst.serial,
                    "concurrent feed, round " + std::to_string(round));
  }
}

#if HARMONY_OBS_ENABLED

uint64_t CounterOf(const obs::MetricsSnapshot& snapshot,
                   const std::string& name) {
  for (const auto& c : snapshot.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// Two whole vocabulary builds running concurrently on separate
// EngineContexts over one shared pool: results byte-identical to the serial
// baseline, metric snapshots fully disjoint, and the merge's own counters
// land in the right child (nothing reaches the root until flush).
TEST(VocabularyStressTest, ConcurrentBuildsAreDisjointAndIdentical) {
  const Instance& inst = *Instances()[2];
  ASSERT_GT(inst.total_links, 0u);

  obs::MetricsRegistry root;
  obs::MetricsRegistry child_a(&root);
  obs::MetricsRegistry child_b(&root);
  obs::Tracer tracer_a;
  obs::Tracer tracer_b;
  common::ThreadPool pool(4);
  core::EngineContext context_a(&child_a, &tracer_a, &pool);
  core::EngineContext context_b(&child_b, &tracer_b, &pool);

  std::unique_ptr<ComprehensiveVocabulary> vocab_a, vocab_b;
  std::thread run_a([&] {
    vocab_a = std::make_unique<ComprehensiveVocabulary>(
        inst.ptrs, inst.matches, context_a, ParallelMerge(4));
  });
  std::thread run_b([&] {
    vocab_b = std::make_unique<ComprehensiveVocabulary>(
        inst.ptrs, inst.matches, context_b, ParallelMerge(4));
  });
  run_a.join();
  run_b.join();

  ExpectIdentical(*vocab_a, *inst.serial, "concurrent A");
  ExpectIdentical(*vocab_b, *inst.serial, "concurrent B");

  // Disjoint: identical workloads, so identical (not doubled, not smeared)
  // counts in each child, and nothing at the root before the flush.
  obs::MetricsSnapshot snap_a = child_a.Snapshot();
  obs::MetricsSnapshot snap_b = child_b.Snapshot();
  EXPECT_EQ(CounterOf(snap_a, "nway.merge.links_absorbed"), inst.total_links);
  EXPECT_EQ(CounterOf(snap_b, "nway.merge.links_absorbed"), inst.total_links);
  EXPECT_EQ(CounterOf(snap_a, "nway.merge.terms"),
            inst.serial->terms().size());
  EXPECT_EQ(CounterOf(snap_b, "nway.merge.terms"),
            inst.serial->terms().size());
  EXPECT_EQ(CounterOf(root.Snapshot(), "nway.merge.links_absorbed"), 0u);

  // Lossless merge into the root.
  child_a.FlushToParent();
  child_b.FlushToParent();
  EXPECT_EQ(CounterOf(root.Snapshot(), "nway.merge.links_absorbed"),
            2 * inst.total_links);
  EXPECT_EQ(CounterOf(root.Snapshot(), "nway.merge.terms"),
            2 * inst.serial->terms().size());
}

#endif  // HARMONY_OBS_ENABLED

// The hardened accessors: an index from the wrong vocabulary (or a stale
// one) must trip the bounds check, never hand back another schema's data.
TEST(VocabularyDeathTest, OutOfRangeAccessorsTripCheck) {
  schema::RelationalBuilder b("S1");
  auto t = b.Table("T");
  b.Column(t, "X");
  schema::Schema s1 = std::move(b).Build();
  ComprehensiveVocabulary vocab({&s1}, {}, core::EngineContext(),
                                SerialMerge());
  ASSERT_EQ(vocab.schema_count(), 1u);
  ASSERT_GE(vocab.terms().size(), 1u);
  EXPECT_DEATH(vocab.schema(1), "out of range");
  EXPECT_DEATH(vocab.schema(vocab.schema_count() + 17), "out of range");
  EXPECT_DEATH(vocab.term(vocab.terms().size()), "out of range");
  EXPECT_DEATH(vocab.term(vocab.terms().size() + 17), "out of range");
}

// A correspondence referencing an element outside its schema's node arena
// must die in AddMatches instead of corrupting the union-find.
TEST(VocabularyDeathTest, OutOfRangeCorrespondenceTripsCheck) {
  schema::RelationalBuilder ba("SA");
  auto ta = ba.Table("T");
  ba.Column(ta, "X");
  schema::Schema sa = std::move(ba).Build();
  schema::RelationalBuilder bb("SB");
  auto tb = bb.Table("T");
  bb.Column(tb, "X");
  schema::Schema sb = std::move(bb).Build();

  PairwiseMatches bad_schema;
  bad_schema.source_index = 5;  // only 2 schemata
  bad_schema.target_index = 1;
  std::vector<PairwiseMatches> matches{bad_schema};
  EXPECT_DEATH(ComprehensiveVocabulary({&sa, &sb}, matches,
                                       core::EngineContext(),
                                       ParallelMerge(1)),
               "Check failed");

  PairwiseMatches bad_element;
  bad_element.source_index = 0;
  bad_element.target_index = 1;
  bad_element.links.push_back(
      {static_cast<schema::ElementId>(sa.node_count() + 3), 1, 0.9});
  std::vector<PairwiseMatches> element_matches{bad_element};
  EXPECT_DEATH(ComprehensiveVocabulary({&sa, &sb}, element_matches,
                                       core::EngineContext(),
                                       ParallelMerge(1)),
               "out of range");
}

}  // namespace
}  // namespace harmony::nway
