// The paper-contract suite: one test per §2 use case, proving the library
// supports every scenario the paper says schema matching serves *without*
// generating transformation code.

#include <gtest/gtest.h>

#include <set>

#include "harmony.h"

namespace harmony {
namespace {

// Shared fixture: a community of five schemata over one domain universe.
class Section2UseCases : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::NWaySpec spec;
    spec.seed = 20090104;  // The conference date.
    spec.schema_count = 5;
    spec.universe_concepts = 18;
    spec.concepts_per_schema = 10;
    community_ = new synth::NWayResult(synth::GenerateNWay(spec));
    for (const auto& s : community_->schemas) schemas_.push_back(&s);
  }

  static void TearDownTestSuite() {
    delete community_;
    community_ = nullptr;
    schemas_.clear();
  }

  static synth::NWayResult* community_;
  static std::vector<const schema::Schema*> schemas_;
};

synth::NWayResult* Section2UseCases::community_ = nullptr;
std::vector<const schema::Schema*> Section2UseCases::schemas_;

// Use case 1 — Project feasibility: "Schema matching tools are needed to
// quickly estimate the extent to which it will be feasible to generate a
// community vocabulary from a collection of data sources."
TEST_F(Section2UseCases, ProjectFeasibility) {
  auto matches = nway::MatchAllPairs(schemas_, 0.45);
  nway::ComprehensiveVocabulary vocabulary(schemas_, matches);
  auto mediated = nway::BuildMediatedSchema(vocabulary);
  // Feasibility signal: a substantial common vocabulary exists.
  EXPECT_GT(mediated.leaves_emitted, 20u);
  double mean_coverage = 0.0;
  for (size_t i = 0; i < schemas_.size(); ++i) {
    mean_coverage += nway::MediatedCoverage(vocabulary, mediated, i);
  }
  mean_coverage /= static_cast<double>(schemas_.size());
  EXPECT_GT(mean_coverage, 0.4);  // Convening this COI is clearly worthwhile.
}

// Use case 2 — Project planning: "how much time and money should be
// allocated to these projects?"
TEST_F(Section2UseCases, ProjectPlanning) {
  core::MatchEngine engine(*schemas_[0], *schemas_[1]);
  auto estimate = analysis::EstimateIntegrationEffort(*schemas_[0], *schemas_[1],
                                                      engine.ComputeMatrix());
  EXPECT_GT(estimate.total_person_days, 0.0);
  EXPECT_GT(estimate.target_coverage, 0.0);
  std::string memo =
      analysis::RenderEffortMemo(*schemas_[0], *schemas_[1], estimate);
  EXPECT_NE(memo.find("person-days"), std::string::npos);
}

// Use case 3 — Generating an exchange schema: the "giant beaker".
TEST_F(Section2UseCases, GeneratingAnExchangeSchema) {
  auto matches = nway::MatchAllPairs(schemas_, 0.45);
  nway::ComprehensiveVocabulary vocabulary(schemas_, matches);
  nway::MediatedSchemaOptions options;
  options.min_sources = 3;
  auto mediated = nway::BuildMediatedSchema(vocabulary, options);
  EXPECT_GT(mediated.containers_emitted, 0u);
  EXPECT_TRUE(mediated.schema.Validate().ok());
  // The exchange schema is publishable in both data-model families.
  EXPECT_FALSE(xml::ExportXsd(mediated.schema).empty());
  EXPECT_FALSE(sql::ExportDdl(mediated.schema).empty());
  // And the S′ → S provenance mapping exists (Lesson #1's requirement).
  EXPECT_FALSE(mediated.provenance.empty());
}

// Use case 4 — Identifying the integration target: mandated exchange
// schemata "can grow to become too large for participants to comprehend";
// partners "need schema matching support to identify that subset of the
// exchange schema that is relevant to their system".
TEST_F(Section2UseCases, IdentifyingTheIntegrationTarget) {
  // The mandated model: the union-flavoured mediated schema (min_sources 2 —
  // deliberately sprawling).
  auto matches = nway::MatchAllPairs(schemas_, 0.45);
  nway::ComprehensiveVocabulary vocabulary(schemas_, matches);
  auto mandated = nway::BuildMediatedSchema(vocabulary);
  ASSERT_GT(mandated.schema.element_count(), 40u);

  // One participant matches its system against the mandate and keeps the
  // relevant subset.
  core::MatchEngine engine(*schemas_[4], mandated.schema);
  auto links = core::SelectGreedyOneToOne(engine.ComputeMatrix(), 0.4);
  std::set<schema::ElementId> relevant;
  for (const auto& link : links) relevant.insert(link.target);
  EXPECT_GT(relevant.size(), 10u);
  EXPECT_LT(relevant.size(), mandated.schema.element_count());
}

// Use case 5 — Enterprise information asset awareness: "which data sources
// contain the concept of 'blood test'?"
TEST_F(Section2UseCases, EnterpriseAssetAwareness) {
  search::SchemaSearchIndex index;
  for (const auto* s : schemas_) index.Add(*s);
  index.Finalize();
  // The community universe includes the medical concept family; the blood
  // test field exists in at least one member.
  auto hits = index.SearchFragments("blood test", 10);
  bool found_blood_field = false;
  for (const auto& hit : hits) {
    const schema::Schema& s = index.schema(hit.schema_index);
    std::string name = ToLower(s.element(hit.element).name);
    std::string doc = ToLower(s.element(hit.element).documentation);
    if (name.find("blood") != std::string::npos ||
        doc.find("blood") != std::string::npos) {
      found_blood_field = true;
    }
  }
  // The concept may or may not have been sampled into this community; the
  // contract is that *when present* it is findable, and the query API
  // answers without error either way.
  if (!hits.empty()) {
    EXPECT_TRUE(found_blood_field);
  }

  // The CIO's fleet view.
  std::vector<analysis::SchemaStats> fleet;
  for (const auto* s : schemas_) fleet.push_back(analysis::ComputeSchemaStats(*s));
  EXPECT_EQ(fleet.size(), 5u);
  EXPECT_FALSE(analysis::RenderStatsTable(fleet).empty());
}

// Use case 6 — Finding relevant and related schemata: "simply use one's
// target schema as the 'query term'" and "automatically propose new COIs by
// clustering".
TEST_F(Section2UseCases, FindingRelevantAndRelatedSchemata) {
  search::SchemaSearchIndex index;
  for (const auto* s : schemas_) index.Add(*s);
  index.Finalize();
  auto hits = index.Search(*schemas_[2], 5);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].schema_index, 2u);  // Self first,
  ASSERT_GT(hits.size(), 1u);
  EXPECT_GT(hits[1].score, 0.3);  // then genuinely related community members.

  analysis::TokenProfileIndex profiles(schemas_);
  auto clustering = analysis::AgglomerativeCluster(
      profiles.DistanceMatrix(), schemas_.size(), 2, 1.0);
  EXPECT_GE(clustering.cluster_count, 1u);
}

}  // namespace
}  // namespace harmony
