// Stress and failure-injection tests: bigger-than-unit workloads, IO
// failures, and umbrella-header compilation.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "harmony.h"

namespace harmony {
namespace {

TEST(UmbrellaHeaderTest, EverythingIsReachable) {
  // Touch one symbol per subsystem to prove the umbrella header exposes the
  // whole public API.
  schema::RelationalBuilder builder("U");
  auto table = builder.Table("T");
  builder.Column(table, "C");
  schema::Schema s = std::move(builder).Build();
  EXPECT_EQ(text::PorterStem("matching"), "match");
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_GT(analysis::ComputeSchemaStats(s).element_count, 0u);
}

TEST(StressTest, RepositoryWithManySchemataSavesAndReloads) {
  repository::MetadataRepository repo;
  synth::RepositorySpec spec;
  spec.families = 5;
  spec.schemas_per_family = 8;
  spec.concepts_per_schema = 6;
  spec.family_pool_concepts = 8;
  auto population = synth::GenerateRepository(spec);
  for (auto& rs : population) {
    ASSERT_TRUE(repo.RegisterSchema(std::move(rs.schema)).ok());
  }
  ASSERT_EQ(repo.schema_count(), 40u);

  // Store a few artifacts across the fleet.
  repository::Provenance prov;
  prov.author = "stress";
  prov.tool = "harmony";
  prov.created_at = "2026-07-06";
  prov.context = "test";
  for (repository::SchemaId i = 0; i + 1 < 10; i += 2) {
    core::MatchEngine engine(repo.schema(i), repo.schema(i + 1));
    auto links = core::SelectGreedyOneToOne(engine.ComputeMatrix(), 0.5);
    ASSERT_TRUE(repo.StoreMatch(i, i + 1, std::move(links), prov).ok());
  }

  std::string dir = ::testing::TempDir() + "/harmony_stress_repo";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(repo.SaveTo(dir).ok());
  auto loaded = repository::MetadataRepository::LoadFrom(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->schema_count(), 40u);
  EXPECT_EQ(loaded->match_count(), repo.match_count());
  // Spot-check deep equality of one schema.
  EXPECT_EQ(schema::SerializeSchema(loaded->schema(7)),
            schema::SerializeSchema(repo.schema(7)));
  std::filesystem::remove_all(dir);
}

TEST(FailureInjectionTest, SaveToUnwritablePathFails) {
  repository::MetadataRepository repo;
  schema::Schema s("X");
  ASSERT_TRUE(repo.RegisterSchema(std::move(s)).ok());
  // /proc is not writable for directory creation.
  Status st = repo.SaveTo("/proc/harmony_cannot_write_here/sub");
  EXPECT_FALSE(st.ok());
}

TEST(FailureInjectionTest, CsvWriterToUnwritablePathFails) {
  CsvWriter w;
  ASSERT_TRUE(w.AppendRow({"a"}).ok());
  EXPECT_TRUE(w.WriteToFile("/nonexistent_dir_xyz/file.csv").IsIOError());
}

TEST(FailureInjectionTest, CorruptRepositoryFilesSurfaceParseErrors) {
  std::string dir = ::testing::TempDir() + "/harmony_corrupt_repo";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream f(dir + "/catalog.csv");
    f << "schema_id,name,file\n0,X,schema_0.hsc\n";
  }
  {
    std::ofstream f(dir + "/schema_0.hsc");
    f << "GARBAGE HEADER\n";
  }
  auto loaded = repository::MetadataRepository::LoadFrom(dir);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError()) << loaded.status();
  std::filesystem::remove_all(dir);
}

TEST(FailureInjectionTest, TruncatedSchemaFileRejectedByValidation) {
  // A catalog whose schema file references a parent that never appears.
  std::string text =
      "HSC1,S,generic,\n"
      "1,0,table,composite,T,,1,,\n"
      "2,1,column,string,C,,1,,\n";
  auto ok = schema::DeserializeSchema(text);
  ASSERT_TRUE(ok.ok());
  // Now corrupt the parent linkage by reordering fields (kind in id slot).
  std::string bad = "HSC1,S,generic,\ntable,0,1,composite,T,,1,,\n";
  EXPECT_TRUE(schema::DeserializeSchema(bad).status().IsParseError());
}

TEST(StressTest, LargePairThroughFullPublicPipeline) {
  // A mid-size end-to-end pass touching import-free generation, matching,
  // refinement, selection, overlap, effort, and export — the whole pipeline
  // a downstream user would run.
  synth::PairSpec spec;
  spec.source_concepts = 30;
  spec.target_concepts = 20;
  spec.shared_concepts = 10;
  auto pair = synth::GeneratePair(spec);

  core::MatchEngine engine(pair.source, pair.target);
  auto matrix = engine.ComputeRefinedMatrix();
  auto links = core::SelectStableMarriage(matrix, 0.35);
  EXPECT_FALSE(links.empty());

  auto partition = analysis::ComputeOverlap(pair.source, pair.target, links);
  EXPECT_EQ(partition.target_matched.size() + partition.target_only.size(),
            pair.target.element_count());

  auto effort = analysis::EstimateIntegrationEffort(pair.source, pair.target,
                                                    matrix);
  EXPECT_GT(effort.total_person_days, 0.0);

  // Export the source schema both ways and re-import.
  auto ddl_round = sql::ImportDdl(sql::ExportDdl(pair.source), "SA");
  ASSERT_TRUE(ddl_round.ok());
  EXPECT_EQ(ddl_round->element_count(), pair.source.element_count());
  auto xsd_round = xml::ImportXsd(xml::ExportXsd(pair.target), "SB");
  ASSERT_TRUE(xsd_round.ok());
  EXPECT_EQ(xsd_round->element_count(), pair.target.element_count());
}

TEST(StressTest, DeepSchemaOperationsStayLinear) {
  // A pathological 200-deep chain: traversal, paths, filters must not blow
  // the stack or quadratic-explode.
  schema::Schema deep("DEEP");
  schema::ElementId cur = schema::Schema::kRootId;
  for (int i = 0; i < 200; ++i) {
    cur = deep.AddElement(cur, StringFormat("L%d", i),
                          schema::ElementKind::kGroup);
  }
  deep.AddElement(cur, "LEAF", schema::ElementKind::kColumn);
  EXPECT_EQ(deep.MaxDepth(), 201u);
  EXPECT_TRUE(deep.Validate().ok());
  std::string path = deep.Path(201);
  auto found = deep.FindByPath(path);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 201u);
  core::NodeFilter filter;
  filter.WithMaxDepth(5);
  EXPECT_EQ(filter.Select(deep).size(), 5u);
}

TEST(StressTest, WideSchemaMatch) {
  // One table with 600 columns against one with 400 — a degenerate shape
  // real ERP exports produce.
  schema::RelationalBuilder a("WIDE_A");
  auto ta = a.Table("MEGA");
  for (int i = 0; i < 600; ++i) {
    a.Column(ta, "COL_" + std::to_string(i), schema::DataType::kString);
  }
  schema::RelationalBuilder b("WIDE_B");
  auto tb = b.Table("MEGA");
  for (int i = 0; i < 400; ++i) {
    b.Column(tb, "COL_" + std::to_string(i), schema::DataType::kString);
  }
  schema::Schema sa = std::move(a).Build();
  schema::Schema sb = std::move(b).Build();
  core::MatchEngine engine(sa, sb);
  auto matrix = engine.ComputeMatrix();
  EXPECT_EQ(matrix.pair_count(), 601u * 401u);
  // The shared column names should pair up under 1:1 selection.
  auto links = core::SelectGreedyOneToOne(matrix, 0.3);
  EXPECT_GT(links.size(), 300u);
}

}  // namespace
}  // namespace harmony
