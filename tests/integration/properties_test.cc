// Cross-module property sweeps over generated workloads: invariants that
// must hold for any seed, exercised across a parameterized seed set.

#include <gtest/gtest.h>

#include <set>

#include "analysis/overlap.h"
#include "core/match_engine.h"
#include "core/selection.h"
#include "nway/vocabulary_builder.h"
#include "schema/schema_io.h"
#include "synth/generator.h"

namespace harmony {
namespace {

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  synth::GeneratedPair Gen() {
    synth::PairSpec spec;
    spec.seed = GetParam();
    spec.source_concepts = 14;
    spec.target_concepts = 10;
    spec.shared_concepts = 5;
    return synth::GeneratePair(spec);
  }
};

TEST_P(SeedSweepTest, GeneratedSchemataAreValidAndSerializable) {
  auto pair = Gen();
  EXPECT_TRUE(pair.source.Validate().ok());
  EXPECT_TRUE(pair.target.Validate().ok());
  // Serialization round-trips for arbitrary generated content.
  auto restored = schema::DeserializeSchema(schema::SerializeSchema(pair.source));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->element_count(), pair.source.element_count());
}

TEST_P(SeedSweepTest, MatrixScoresBounded) {
  auto pair = Gen();
  core::MatchEngine engine(pair.source, pair.target);
  auto matrix = engine.ComputeMatrix();
  for (size_t r = 0; r < matrix.rows(); ++r) {
    for (size_t c = 0; c < matrix.cols(); ++c) {
      double s = matrix.GetByIndex(r, c);
      ASSERT_GT(s, -1.0);
      ASSERT_LT(s, 1.0);
    }
  }
}

TEST_P(SeedSweepTest, SelectionStrategiesNest) {
  auto pair = Gen();
  core::MatchEngine engine(pair.source, pair.target);
  auto matrix = engine.ComputeMatrix();
  // Greedy 1:1 and stable marriage both select subsets of threshold
  // selection, and higher thresholds select fewer pairs.
  auto all = core::SelectByThreshold(matrix, 0.3);
  auto greedy = core::SelectGreedyOneToOne(matrix, 0.3);
  auto stable = core::SelectStableMarriage(matrix, 0.3);
  std::set<std::pair<schema::ElementId, schema::ElementId>> all_set;
  for (auto& c : all) all_set.insert({c.source, c.target});
  for (auto& c : greedy) {
    ASSERT_TRUE(all_set.count({c.source, c.target}));
  }
  for (auto& c : stable) {
    ASSERT_TRUE(all_set.count({c.source, c.target}));
  }
  EXPECT_LE(core::SelectByThreshold(matrix, 0.5).size(), all.size());
}

TEST_P(SeedSweepTest, OverlapPartitionIsExhaustive) {
  auto pair = Gen();
  core::MatchEngine engine(pair.source, pair.target);
  auto links = core::SelectGreedyOneToOne(engine.ComputeMatrix(), 0.4);
  auto partition = analysis::ComputeOverlap(pair.source, pair.target, links);
  EXPECT_EQ(partition.source_matched.size() + partition.source_only.size(),
            pair.source.element_count());
  EXPECT_EQ(partition.target_matched.size() + partition.target_only.size(),
            pair.target.element_count());
  // No element in both halves.
  std::set<schema::ElementId> matched(partition.source_matched.begin(),
                                      partition.source_matched.end());
  for (auto id : partition.source_only) ASSERT_FALSE(matched.count(id));
}

TEST_P(SeedSweepTest, NwayTermsPartitionElements) {
  synth::NWaySpec spec;
  spec.seed = GetParam();
  spec.schema_count = 3;
  spec.universe_concepts = 10;
  spec.concepts_per_schema = 5;
  auto gen = synth::GenerateNWay(spec);
  std::vector<const schema::Schema*> schemas;
  size_t total = 0;
  for (const auto& s : gen.schemas) {
    schemas.push_back(&s);
    total += s.element_count();
  }
  nway::ComprehensiveVocabulary vocab(schemas,
                                      nway::MatchAllPairs(schemas, 0.45));
  size_t members = 0;
  for (const auto& t : vocab.terms()) members += t.members.size();
  EXPECT_EQ(members, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// The evidence-weighting property at system level: with skewed
// documentation volume, the evidence-aware engine separates true from false
// pairs at least as well as the ratio-only engine (checked as AUC-ish
// pairwise ordering on a generated workload).
TEST(EvidenceSystemTest, EvidenceWeightingHelpsOnThinDocs) {
  synth::PairSpec spec;
  spec.source_concepts = 14;
  spec.target_concepts = 10;
  spec.shared_concepts = 6;
  auto pair = synth::GeneratePair(spec);

  core::MatchOptions with;
  core::MatchOptions without;
  without.merger.evidence_weighting = false;

  std::set<std::pair<std::string, std::string>> truth(
      pair.truth.element_matches.begin(), pair.truth.element_matches.end());

  auto auc = [&](const core::MatchOptions& options) {
    core::MatchEngine engine(pair.source, pair.target, options);
    auto matrix = engine.ComputeMatrix();
    std::vector<double> pos, neg;
    for (size_t r = 0; r < matrix.rows(); ++r) {
      for (size_t c = 0; c < matrix.cols(); ++c) {
        bool is_true = truth.count({pair.source.Path(matrix.SourceIdAt(r)),
                                    pair.target.Path(matrix.TargetIdAt(c))}) > 0;
        (is_true ? pos : neg).push_back(matrix.GetByIndex(r, c));
      }
    }
    // Sampled pairwise ordering statistic.
    size_t wins = 0, total = 0;
    for (size_t i = 0; i < pos.size(); ++i) {
      for (size_t j = i % 97; j < neg.size(); j += 97) {
        ++total;
        if (pos[i] > neg[j]) ++wins;
      }
    }
    return total ? static_cast<double>(wins) / static_cast<double>(total) : 0.0;
  };

  double auc_with = auc(with);
  double auc_without = auc(without);
  EXPECT_GT(auc_with, 0.8);
  EXPECT_GE(auc_with, auc_without - 0.02);  // At least comparable; bench E10
                                            // quantifies the advantage.
}

}  // namespace
}  // namespace harmony
