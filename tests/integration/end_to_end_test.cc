// End-to-end replay of the paper's §3 project-planning engagement, at a
// reduced scale: import schemata, match, summarize, run the
// concept-at-a-time workflow, partition the overlap, and export the
// outer-join spreadsheet.

#include <gtest/gtest.h>

#include <set>

#include "analysis/overlap.h"
#include "common/csv.h"
#include "core/match_engine.h"
#include "core/selection.h"
#include "sql/ddl_parser.h"
#include "summarize/auto_summarizer.h"
#include "synth/generator.h"
#include "workflow/concept_workflow.h"
#include "workflow/spreadsheet_export.h"
#include "xml/xsd_importer.h"

namespace harmony {
namespace {

TEST(EndToEndTest, DdlAndXsdImportsMatchEachOther) {
  constexpr const char* kDdl = R"SQL(
    CREATE TABLE PERSON (
      LAST_NAME VARCHAR2(64),   -- The surname of the person
      BIRTH_DT DATE             -- The date on which the person was born
    );
  )SQL";
  constexpr const char* kXsd = R"(<xs:schema>
    <xs:complexType name="Person">
      <xs:sequence>
        <xs:element name="FamilyName" type="xs:string">
          <xs:annotation><xs:documentation>Family name of the person.</xs:documentation></xs:annotation>
        </xs:element>
        <xs:element name="BirthDate" type="xs:date">
          <xs:annotation><xs:documentation>Date the person was born.</xs:documentation></xs:annotation>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:schema>)";

  auto sa = sql::ImportDdl(kDdl, "SA");
  ASSERT_TRUE(sa.ok()) << sa.status();
  auto sb = xml::ImportXsd(kXsd, "SB");
  ASSERT_TRUE(sb.ok()) << sb.status();

  core::MatchEngine engine(*sa, *sb);
  auto matrix = engine.ComputeMatrix();
  // The cross-format true pairs must outrank the decoys.
  auto birth_a = *sa->FindByPath("PERSON.BIRTH_DT");
  auto birth_b = *sb->FindByPath("Person.BirthDate");
  auto name_b = *sb->FindByPath("Person.FamilyName");
  EXPECT_GT(matrix.Get(birth_a, birth_b), matrix.Get(birth_a, name_b));
  EXPECT_GT(matrix.Get(birth_a, birth_b), 0.3);
}

class Section3ScenarioTest : public ::testing::Test {
 protected:
  static constexpr double kReviewThreshold = 0.30;

  Section3ScenarioTest() {
    synth::PairSpec spec;
    spec.source_concepts = 25;
    spec.target_concepts = 15;
    spec.shared_concepts = 8;
    pair_ = synth::GeneratePair(spec);
  }

  synth::GeneratedPair pair_;
};

TEST_F(Section3ScenarioTest, FullWorkflowProducesPaperArtifacts) {
  core::MatchEngine engine(pair_.source, pair_.target);

  // Step 1: SUMMARIZE both schemata (automatically here; §3 did it manually).
  summarize::AutoSummarizeOptions sum_opts;
  sum_opts.max_concepts = 25;
  summarize::Summary sum_a = summarize::AutoSummarize(pair_.source, sum_opts);
  sum_opts.max_concepts = 15;
  summarize::Summary sum_b = summarize::AutoSummarize(pair_.target, sum_opts);
  EXPECT_GT(sum_a.Coverage(), 0.9);
  EXPECT_GT(sum_b.Coverage(), 0.9);

  // Step 2: concept-at-a-time matching with interactive refinement.
  workflow::MatchWorkspace ws(pair_.source, pair_.target);
  workflow::ConceptWorkflowOptions wf_opts;
  wf_opts.review_threshold = kReviewThreshold;
  auto report = workflow::RunConceptWorkflow(engine, sum_a, sum_b, wf_opts, &ws);
  EXPECT_GT(report.total_accepted, 0u);
  EXPECT_FALSE(report.concept_matches.empty());

  // Step 3: post-matching analysis — the overlap partition and decision memo.
  auto accepted = ws.AcceptedLinks();
  auto partition = analysis::ComputeOverlap(pair_.source, pair_.target, accepted);
  EXPECT_EQ(partition.target_matched.size() + partition.target_only.size(),
            pair_.target.element_count());
  std::string memo = analysis::RenderDecisionMemo(pair_.source, pair_.target,
                                                  partition);
  EXPECT_NE(memo.find("RECOMMENDATION"), std::string::npos);

  // Step 4: spreadsheet delivery in outer-join style.
  std::string concepts_csv =
      workflow::ConceptSheetCsv(sum_a, sum_b, report.concept_matches);
  auto rows = ParseCsv(concepts_csv);
  ASSERT_TRUE(rows.ok());
  // |A concepts| + |B concepts| − |matches| + header.
  EXPECT_EQ(rows->size(), 1u + sum_a.concept_count() + sum_b.concept_count() -
                              report.concept_matches.size());
}

TEST_F(Section3ScenarioTest, WorkflowFindsMostTruth) {
  core::MatchEngine engine(pair_.source, pair_.target);
  auto matrix = engine.ComputeMatrix();
  auto links = core::SelectGreedyOneToOne(matrix, 0.4);

  std::set<std::pair<std::string, std::string>> truth(
      pair_.truth.element_matches.begin(), pair_.truth.element_matches.end());
  size_t tp = 0;
  for (const auto& link : links) {
    if (truth.count(
            {pair_.source.Path(link.source), pair_.target.Path(link.target)})) {
      ++tp;
    }
  }
  ASSERT_FALSE(links.empty());
  // Majority of 1:1 selections should be true correspondences.
  EXPECT_GT(static_cast<double>(tp) / static_cast<double>(links.size()), 0.5);
}

TEST_F(Section3ScenarioTest, IncrementalEqualsSubtreeOfFullMatch) {
  core::MatchEngine engine(pair_.source, pair_.target);
  auto full = engine.ComputeMatrix();
  auto concept_root = pair_.source.IdsAtDepth(1)[0];
  auto sub = engine.MatchSubtree(concept_root);
  for (auto id : pair_.source.SubtreeIds(concept_root)) {
    for (auto t : pair_.target.AllElementIds()) {
      ASSERT_DOUBLE_EQ(sub.Get(id, t), full.Get(id, t));
    }
  }
}

}  // namespace
}  // namespace harmony
