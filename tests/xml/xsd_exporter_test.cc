#include "xml/xsd_exporter.h"

#include <gtest/gtest.h>

#include "schema/builder.h"
#include "synth/generator.h"
#include "xml/xsd_importer.h"

namespace harmony::xml {
namespace {

using schema::DataType;

schema::Schema MakeSchema() {
  schema::XmlBuilder b("SB");
  auto person = b.ComplexType("Person", "A person & their details");
  b.Element(person, "LastName", DataType::kString, "Family <name>");
  auto birth = b.Element(person, "Birth");
  b.Element(birth, "Date", DataType::kDate, "Birth date");
  b.Attribute(person, "id", DataType::kInteger, "Unique id");
  schema::Schema s = std::move(b).Build();
  s.mutable_element(*s.FindByPath("Person.id")).nullable = false;
  return s;
}

TEST(XsdExporterTest, EmitsComplexTypesElementsAttributes) {
  std::string xsd = ExportXsd(MakeSchema());
  EXPECT_NE(xsd.find("<xs:complexType name=\"Person\">"), std::string::npos);
  EXPECT_NE(xsd.find("<xs:element name=\"LastName\" type=\"xs:string\""),
            std::string::npos);
  EXPECT_NE(xsd.find("<xs:attribute name=\"id\" type=\"xs:int\" use=\"required\""),
            std::string::npos);
}

TEST(XsdExporterTest, EscapesDocumentation) {
  std::string xsd = ExportXsd(MakeSchema());
  EXPECT_NE(xsd.find("A person &amp; their details"), std::string::npos);
  EXPECT_NE(xsd.find("Family &lt;name&gt;"), std::string::npos);
}

TEST(XsdExporterTest, TargetNamespaceEmittedWhenSet) {
  XsdExportOptions opts;
  opts.target_namespace = "urn:mil:sb";
  std::string xsd = ExportXsd(MakeSchema(), opts);
  EXPECT_NE(xsd.find("targetNamespace=\"urn:mil:sb\""), std::string::npos);
  EXPECT_EQ(ExportXsd(MakeSchema()).find("targetNamespace"), std::string::npos);
}

TEST(XsdExporterTest, RoundTripThroughImporter) {
  schema::Schema original = MakeSchema();
  auto reimported = ImportXsd(ExportXsd(original), "SB");
  ASSERT_TRUE(reimported.ok()) << reimported.status();
  EXPECT_EQ(reimported->element_count(), original.element_count());
  for (schema::ElementId id : original.AllElementIds()) {
    std::string path = original.Path(id);
    auto found = reimported->FindByPath(path);
    ASSERT_TRUE(found.ok()) << path;
    const auto& orig = original.element(id);
    const auto& back = reimported->element(*found);
    if (orig.is_leaf()) {
      EXPECT_EQ(back.type, orig.type) << path;
    }
    EXPECT_EQ(back.kind == schema::ElementKind::kAttribute,
              orig.kind == schema::ElementKind::kAttribute)
        << path;
  }
}

TEST(XsdExporterTest, GeneratedXmlSchemaRoundTrips) {
  synth::SchemaSpec spec;
  spec.concepts = 10;
  spec.style.flavor = schema::SchemaFlavor::kXml;
  spec.style.name_style = synth::NameStyle::kCamelCase;
  spec.style.doc_probability = 1.0;
  schema::Schema original = synth::GenerateSchema(spec);
  auto reimported = ImportXsd(ExportXsd(original), original.name());
  ASSERT_TRUE(reimported.ok()) << reimported.status();
  EXPECT_EQ(reimported->element_count(), original.element_count());
  EXPECT_EQ(reimported->IdsAtDepth(1).size(), original.IdsAtDepth(1).size());
}

TEST(XsdExporterTest, EmptySchemaIsValidXsd) {
  schema::Schema empty("E");
  auto reimported = ImportXsd(ExportXsd(empty), "E");
  ASSERT_TRUE(reimported.ok());
  EXPECT_EQ(reimported->element_count(), 0u);
}

TEST(XsdExporterTest, NullableBecomesMinOccursZero) {
  std::string xsd = ExportXsd(MakeSchema());
  // LastName was created with default nullable=true in the XML builder...
  // check at least one minOccurs="0" appears and required attribute has none.
  EXPECT_NE(xsd.find("minOccurs=\"0\""), std::string::npos);
}

}  // namespace
}  // namespace harmony::xml
