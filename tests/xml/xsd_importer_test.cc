#include "xml/xsd_importer.h"

#include <gtest/gtest.h>

namespace harmony::xml {
namespace {

using schema::DataType;
using schema::ElementKind;

constexpr const char* kSampleXsd = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" targetNamespace="mil:sb">
  <xs:complexType name="PersonType">
    <xs:annotation><xs:documentation>A person of interest.</xs:documentation></xs:annotation>
    <xs:sequence>
      <xs:element name="LastName" type="xs:string">
        <xs:annotation><xs:documentation>Family name.</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="BirthDate" type="xs:date" minOccurs="0"/>
      <xs:choice>
        <xs:element name="ServiceNumber" type="xs:string"/>
        <xs:element name="Passport" type="xs:string"/>
      </xs:choice>
    </xs:sequence>
    <xs:attribute name="id" type="xs:int" use="required"/>
  </xs:complexType>
  <xs:element name="Person" type="PersonType"/>
  <xs:element name="Remarks" type="xs:string"/>
  <xs:element name="Inline">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Depth" type="xs:decimal"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>)";

TEST(XsdImporterTest, ImportsTopLevelStructure) {
  auto s = ImportXsd(kSampleXsd);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->name(), "mil:sb");
  EXPECT_EQ(s->flavor(), schema::SchemaFlavor::kXml);

  // Named type + 3 top-level elements.
  auto person_type = s->FindByPath("PersonType");
  ASSERT_TRUE(person_type.ok());
  EXPECT_EQ(s->element(*person_type).kind, ElementKind::kComplexType);
  EXPECT_EQ(s->element(*person_type).documentation, "A person of interest.");
}

TEST(XsdImporterTest, SequenceChoiceAndAttributesFlattened) {
  auto s = ImportXsd(kSampleXsd);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->FindByPath("PersonType.LastName").ok());
  EXPECT_TRUE(s->FindByPath("PersonType.ServiceNumber").ok());
  EXPECT_TRUE(s->FindByPath("PersonType.Passport").ok());
  auto id_attr = s->FindByPath("PersonType.id");
  ASSERT_TRUE(id_attr.ok());
  EXPECT_EQ(s->element(*id_attr).kind, ElementKind::kAttribute);
  EXPECT_FALSE(s->element(*id_attr).nullable);  // use="required".
}

TEST(XsdImporterTest, BuiltinTypesMapped) {
  auto s = ImportXsd(kSampleXsd);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->element(*s->FindByPath("PersonType.LastName")).type,
            DataType::kString);
  EXPECT_EQ(s->element(*s->FindByPath("PersonType.BirthDate")).type,
            DataType::kDate);
  EXPECT_EQ(s->element(*s->FindByPath("PersonType.id")).type, DataType::kInteger);
  EXPECT_EQ(s->element(*s->FindByPath("Remarks")).type, DataType::kString);
  EXPECT_EQ(s->element(*s->FindByPath("Inline.Depth")).type, DataType::kDecimal);
}

TEST(XsdImporterTest, MinOccursZeroMeansNullable) {
  auto s = ImportXsd(kSampleXsd);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->element(*s->FindByPath("PersonType.BirthDate")).nullable);
  EXPECT_FALSE(s->element(*s->FindByPath("PersonType.LastName")).nullable);
}

TEST(XsdImporterTest, NamedTypeReferenceExpanded) {
  auto s = ImportXsd(kSampleXsd);
  ASSERT_TRUE(s.ok());
  // <xs:element name="Person" type="PersonType"/> expands the type's content.
  EXPECT_TRUE(s->FindByPath("Person.LastName").ok());
  EXPECT_TRUE(s->FindByPath("Person.id").ok());
  EXPECT_EQ(s->element(*s->FindByPath("Person")).type, DataType::kComposite);
}

TEST(XsdImporterTest, ExpansionCanBeDisabled) {
  XsdImportOptions opts;
  opts.expand_top_level_refs = false;
  auto s = ImportXsd(kSampleXsd, "SB", opts);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->name(), "SB");
  EXPECT_TRUE(s->FindByPath("Person.LastName").status().IsNotFound());
}

TEST(XsdImporterTest, RecursiveTypeIsTruncatedNotFatal) {
  constexpr const char* kRecursive = R"(<xs:schema>
    <xs:complexType name="Node">
      <xs:sequence>
        <xs:element name="Value" type="xs:string"/>
        <xs:element name="Child" type="Node"/>
      </xs:sequence>
    </xs:complexType>
  </xs:schema>)";
  XsdImportOptions opts;
  opts.max_expansion_depth = 3;
  auto s = ImportXsd(kRecursive, "R", opts);
  ASSERT_TRUE(s.ok()) << s.status();
  // Bounded: far fewer elements than an infinite expansion.
  EXPECT_LT(s->element_count(), 20u);
  EXPECT_TRUE(s->FindByPath("Node.Child.Child").ok());
}

TEST(XsdImporterTest, SimpleTypeRestrictionResolved) {
  constexpr const char* kSimple = R"(<xs:schema>
    <xs:simpleType name="CodeType">
      <xs:restriction base="xs:string"/>
    </xs:simpleType>
    <xs:element name="Status" type="CodeType"/>
  </xs:schema>)";
  auto s = ImportXsd(kSimple, "S");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->element(*s->FindByPath("Status")).type, DataType::kString);
}

TEST(XsdImporterTest, ExtensionPullsBaseContent) {
  constexpr const char* kExt = R"(<xs:schema>
    <xs:complexType name="Base">
      <xs:sequence><xs:element name="Core" type="xs:string"/></xs:sequence>
    </xs:complexType>
    <xs:complexType name="Derived">
      <xs:complexContent>
        <xs:extension base="Base">
          <xs:sequence><xs:element name="Extra" type="xs:int"/></xs:sequence>
        </xs:extension>
      </xs:complexContent>
    </xs:complexType>
  </xs:schema>)";
  auto s = ImportXsd(kExt, "E");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_TRUE(s->FindByPath("Derived.Core").ok());
  EXPECT_TRUE(s->FindByPath("Derived.Extra").ok());
}

TEST(XsdImporterTest, NonSchemaRootIsParseError) {
  EXPECT_TRUE(ImportXsd("<html></html>").status().IsParseError());
}

TEST(XsdImporterTest, MalformedXmlIsParseError) {
  EXPECT_TRUE(ImportXsd("<xs:schema><oops").status().IsParseError());
}

TEST(XsdTypeMappingTest, CoversBuiltinFamilies) {
  EXPECT_EQ(XsdTypeToDataType("xs:string"), DataType::kString);
  EXPECT_EQ(XsdTypeToDataType("xs:token"), DataType::kString);
  EXPECT_EQ(XsdTypeToDataType("xs:int"), DataType::kInteger);
  EXPECT_EQ(XsdTypeToDataType("nonNegativeInteger"), DataType::kInteger);
  EXPECT_EQ(XsdTypeToDataType("xs:decimal"), DataType::kDecimal);
  EXPECT_EQ(XsdTypeToDataType("xs:double"), DataType::kFloat);
  EXPECT_EQ(XsdTypeToDataType("xs:boolean"), DataType::kBoolean);
  EXPECT_EQ(XsdTypeToDataType("xs:date"), DataType::kDate);
  EXPECT_EQ(XsdTypeToDataType("xs:time"), DataType::kTime);
  EXPECT_EQ(XsdTypeToDataType("xs:dateTime"), DataType::kDateTime);
  EXPECT_EQ(XsdTypeToDataType("xs:base64Binary"), DataType::kBinary);
  EXPECT_EQ(XsdTypeToDataType("CustomType"), DataType::kUnknown);
}

}  // namespace
}  // namespace harmony::xml
