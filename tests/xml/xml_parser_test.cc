#include "xml/xml_parser.h"

#include <gtest/gtest.h>

namespace harmony::xml {
namespace {

TEST(XmlParserTest, MinimalDocument) {
  auto doc = ParseXml("<root/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->name, "root");
  EXPECT_TRUE(doc->root->children.empty());
}

TEST(XmlParserTest, AttributesBothQuoteStyles) {
  auto doc = ParseXml("<e a=\"1\" b='two' c = \"three\" />");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->Attr("a"), "1");
  EXPECT_EQ(doc->root->Attr("b"), "two");
  EXPECT_EQ(doc->root->Attr("c"), "three");
  EXPECT_TRUE(doc->root->HasAttr("a"));
  EXPECT_FALSE(doc->root->HasAttr("zz"));
  EXPECT_EQ(doc->root->Attr("zz"), "");
}

TEST(XmlParserTest, NestedElementsAndText) {
  auto doc = ParseXml("<a><b>hello</b><b>world</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root->children.size(), 3u);
  auto bs = doc->root->Children("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->text, "hello");
  EXPECT_EQ(bs[1]->text, "world");
  EXPECT_NE(doc->root->FirstChild("c"), nullptr);
  EXPECT_EQ(doc->root->FirstChild("missing"), nullptr);
}

TEST(XmlParserTest, PrologCommentsPiDoctypeSkipped) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!-- a comment -->\n"
      "<!DOCTYPE whatever>\n"
      "<root><!-- inner --><child/><?pi data?></root>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->name, "root");
  EXPECT_EQ(doc->root->children.size(), 1u);
}

TEST(XmlParserTest, EntityDecoding) {
  auto doc = ParseXml("<e a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->Attr("a"), "<&>");
  EXPECT_EQ(doc->root->text, "\"x' AB");
}

TEST(XmlParserTest, CdataPreserved) {
  auto doc = ParseXml("<e><![CDATA[raw <tags> & stuff]]></e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text, "raw <tags> & stuff");
}

TEST(XmlParserTest, NamespacePrefixHandling) {
  auto doc = ParseXml("<xs:schema><xs:element name=\"x\"/></xs:schema>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->name, "xs:schema");
  EXPECT_EQ(doc->root->LocalName(), "schema");
  EXPECT_NE(doc->root->FirstChild("element"), nullptr);
  EXPECT_EQ(StripPrefix("xs:element"), "element");
  EXPECT_EQ(StripPrefix("plain"), "plain");
}

TEST(XmlParserTest, MismatchedTagIsParseError) {
  auto doc = ParseXml("<a><b></a></b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_TRUE(doc.status().IsParseError());
}

TEST(XmlParserTest, UnterminatedTagIsParseError) {
  EXPECT_TRUE(ParseXml("<a><b>").status().IsParseError());
  EXPECT_TRUE(ParseXml("<a attr=\"x").status().IsParseError());
}

TEST(XmlParserTest, TrailingContentIsParseError) {
  EXPECT_TRUE(ParseXml("<a/><b/>").status().IsParseError());
}

TEST(XmlParserTest, ErrorsCarryLineNumbers) {
  Status s = ParseXml("<a>\n<b>\n</c>\n</a>").status();
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.message();
}

TEST(XmlParserTest, MixedContentAccumulatesText) {
  auto doc = ParseXml("<e>one<child/>two</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text, "onetwo");
}

}  // namespace
}  // namespace harmony::xml
