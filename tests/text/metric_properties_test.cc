// Property tests for every text similarity metric over the synth
// generator's name corpus: symmetry f(a,b)==f(b,a), identity f(a,a)==1, and
// range [0,1]. Running on generated enterprise names (corrupted, suffixed,
// abbreviated) rather than a handful of literals is what surfaces the
// Jaro/Winkler edge cases — single-character names, numeric-only names that
// tokenize to nothing, and empty-after-stemming tokens.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/preprocess.h"
#include "synth/generator.h"
#include "text/stemmer.h"
#include "text/string_metrics.h"

namespace harmony::text {
namespace {

// Normalized names and stemmed name tokens drawn from a generated pair —
// the same preprocessing the engine feeds the metrics — plus hand-picked
// adversarial cases.
struct Corpus {
  std::vector<std::string> names;                     // Character metrics.
  std::vector<std::vector<std::string>> token_sets;   // Token metrics.
};

const Corpus& TestCorpus() {
  static const Corpus kCorpus = [] {
    Corpus c;
    synth::PairSpec spec;
    spec.seed = 7;
    spec.source_concepts = 6;
    spec.target_concepts = 6;
    spec.shared_concepts = 3;
    synth::GeneratedPair pair = synth::GeneratePair(spec);
    core::PreprocessOptions options;
    auto harvest = [&](const schema::Schema& s) {
      for (schema::ElementId id : s.AllElementIds()) {
        core::ElementProfile p = core::BuildProfile(s.element(id), options);
        c.names.push_back(p.normalized_name);
        c.token_sets.push_back(p.name_tokens);
        if (c.names.size() >= 40) break;  // ~40² pairs is plenty.
      }
    };
    harvest(pair.source);
    harvest(pair.target);

    // Edge cases the generated corpus may not hit: empties, single-char
    // names (Jaro window = 0), and stemming that eats the whole token.
    c.names.insert(c.names.end(), {"", "a", "x", "ab", "aaaaaaaa"});
    c.token_sets.push_back({});
    c.token_sets.push_back({"a"});
    c.token_sets.push_back({PorterStem("s")});  // Single char through stemmer.
    c.token_sets.push_back({"", "date"});       // Empty-after-stemming token.
    return c;
  }();
  return kCorpus;
}

using CharMetric = double (*)(std::string_view, std::string_view);
using TokenMetric = double (*)(const std::vector<std::string>&,
                               const std::vector<std::string>&);

double QGram2(std::string_view a, std::string_view b) {
  return QGramSimilarity(a, b, 2);
}
double SoftToken085(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  return SoftTokenSimilarity(a, b);
}

TEST(CorpusMetricPropertyTest, CharMetricsRangeSymmetryIdentity) {
  struct Case {
    const char* name;
    CharMetric fn;
  };
  const Case cases[] = {
      {"levenshtein", &LevenshteinSimilarity},
      {"jaro", &JaroSimilarity},
      {"jaro_winkler", &JaroWinklerSimilarity},
      {"lcs", &LcsSimilarity},
      {"qgram2", &QGram2},
  };
  const Corpus& corpus = TestCorpus();
  for (const Case& metric : cases) {
    for (const std::string& a : corpus.names) {
      for (const std::string& b : corpus.names) {
        double ab = metric.fn(a, b);
        EXPECT_GE(ab, 0.0) << metric.name << "(" << a << "," << b << ")";
        EXPECT_LE(ab, 1.0) << metric.name << "(" << a << "," << b << ")";
        EXPECT_DOUBLE_EQ(ab, metric.fn(b, a))
            << metric.name << " asymmetric on (" << a << "," << b << ")";
      }
      EXPECT_DOUBLE_EQ(metric.fn(a, a), 1.0)
          << metric.name << " identity on \"" << a << "\"";
    }
  }
}

TEST(CorpusMetricPropertyTest, TokenMetricsRangeSymmetryIdentity) {
  struct Case {
    const char* name;
    TokenMetric fn;
  };
  const Case cases[] = {
      {"token_jaccard", &TokenJaccard},
      {"token_dice", &TokenDice},
      {"soft_token", &SoftToken085},
  };
  const Corpus& corpus = TestCorpus();
  for (const Case& metric : cases) {
    for (const auto& a : corpus.token_sets) {
      for (const auto& b : corpus.token_sets) {
        double ab = metric.fn(a, b);
        EXPECT_GE(ab, 0.0) << metric.name;
        EXPECT_LE(ab, 1.0) << metric.name;
        EXPECT_DOUBLE_EQ(ab, metric.fn(b, a)) << metric.name << " asymmetric";
      }
      EXPECT_DOUBLE_EQ(metric.fn(a, a), 1.0) << metric.name << " identity";
    }
  }
}

// SoftSortedSimilarity is a-major greedy (each a-token claims its best
// unused b-token), so it is deliberately order-dependent and excluded from
// the symmetry property; identity and range must still hold on sorted
// unique inputs.
TEST(CorpusMetricPropertyTest, SoftSortedRangeAndIdentity) {
  const Corpus& corpus = TestCorpus();
  std::vector<std::vector<std::string>> sorted_sets;
  for (const auto& tokens : corpus.token_sets) {
    std::vector<std::string> s = tokens;
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    sorted_sets.push_back(std::move(s));
  }
  for (const auto& a : sorted_sets) {
    for (const auto& b : sorted_sets) {
      double ab = SoftSortedSimilarity(a, b);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
    EXPECT_DOUBLE_EQ(SoftSortedSimilarity(a, a), 1.0);
  }
}

}  // namespace
}  // namespace harmony::text
