#include "text/stemmer.h"

#include <gtest/gtest.h>

namespace harmony::text {
namespace {

// Known input→output pairs from the canonical Porter vocabulary.
struct StemCase {
  const char* word;
  const char* stem;
};

class PorterStemTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemTest, MatchesReference) {
  EXPECT_EQ(PorterStem(GetParam().word), GetParam().stem)
      << "word: " << GetParam().word;
}

INSTANTIATE_TEST_SUITE_P(
    ReferencePairs, PorterStemTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("at"), "at");
  EXPECT_EQ(PorterStem("by"), "by");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemTest, NonAlphaPassThrough) {
  EXPECT_EQ(PorterStem("abc123"), "abc123");
  EXPECT_EQ(PorterStem("Mixed"), "Mixed");  // Upper case is not stemmed.
}

TEST(PorterStemTest, InflectionsShareStem) {
  EXPECT_EQ(PorterStem("locations"), PorterStem("location"));
  EXPECT_EQ(PorterStem("organizing"), PorterStem("organized"));
  EXPECT_EQ(PorterStem("vehicles"), PorterStem("vehicle"));
}

TEST(StemAllTest, StemsEveryToken) {
  auto out = StemAll({"vehicles", "locations", "born"});
  EXPECT_EQ(out, (std::vector<std::string>{"vehicl", "locat", "born"}));
}

TEST(StemAllTest, EmptyVector) {
  EXPECT_TRUE(StemAll({}).empty());
}

}  // namespace
}  // namespace harmony::text
