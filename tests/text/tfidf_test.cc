#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace harmony::text {
namespace {

TEST(TfIdfTest, EmptyCorpusFinalizes) {
  TfIdfCorpus corpus;
  corpus.Finalize();
  EXPECT_TRUE(corpus.finalized());
  EXPECT_EQ(corpus.document_count(), 0u);
  EXPECT_EQ(corpus.vocabulary_size(), 0u);
}

TEST(TfIdfTest, IdenticalDocumentsHaveCosineOne) {
  TfIdfCorpus corpus;
  size_t a = corpus.AddDocument({"blood", "test", "result"});
  size_t b = corpus.AddDocument({"blood", "test", "result"});
  corpus.AddDocument({"unrelated", "words"});
  corpus.Finalize();
  EXPECT_NEAR(corpus.Similarity(a, b), 1.0, 1e-9);
}

TEST(TfIdfTest, DisjointDocumentsHaveCosineZero) {
  TfIdfCorpus corpus;
  size_t a = corpus.AddDocument({"alpha", "beta"});
  size_t b = corpus.AddDocument({"gamma", "delta"});
  corpus.Finalize();
  EXPECT_DOUBLE_EQ(corpus.Similarity(a, b), 0.0);
}

TEST(TfIdfTest, RareSharedWordOutweighsCommonSharedWord) {
  TfIdfCorpus corpus;
  // "code" appears everywhere; "hemoglobin" appears twice.
  size_t a = corpus.AddDocument({"hemoglobin", "code"});
  size_t b = corpus.AddDocument({"hemoglobin", "code"});
  size_t c = corpus.AddDocument({"status", "code"});
  for (int i = 0; i < 10; ++i) corpus.AddDocument({"code", "filler" + std::to_string(i)});
  corpus.Finalize();
  EXPECT_GT(corpus.Similarity(a, b), corpus.Similarity(a, c));
}

TEST(TfIdfTest, DocumentVectorsAreL2Normalized) {
  TfIdfCorpus corpus;
  size_t a = corpus.AddDocument({"x", "y", "z", "x"});
  corpus.AddDocument({"y", "w"});
  corpus.Finalize();
  double norm_sq = 0.0;
  for (const auto& [term, w] : corpus.DocumentVector(a)) {
    (void)term;
    norm_sq += w * w;
  }
  EXPECT_NEAR(norm_sq, 1.0, 1e-9);
}

TEST(TfIdfTest, VectorizeIgnoresOutOfVocabulary) {
  TfIdfCorpus corpus;
  size_t a = corpus.AddDocument({"known", "words"});
  corpus.Finalize();
  auto v = corpus.Vectorize({"known", "never_seen_before"});
  EXPECT_EQ(v.size(), 1u);
  EXPECT_GT(TfIdfCorpus::Cosine(v, corpus.DocumentVector(a)), 0.0);
}

TEST(TfIdfTest, VectorizeOfUnknownOnlyIsEmpty) {
  TfIdfCorpus corpus;
  corpus.AddDocument({"known"});
  corpus.Finalize();
  EXPECT_TRUE(corpus.Vectorize({"unknown"}).empty());
}

TEST(TfIdfTest, IdfOrdersRareAboveCommon) {
  TfIdfCorpus corpus;
  corpus.AddDocument({"common", "rare"});
  corpus.AddDocument({"common"});
  corpus.AddDocument({"common"});
  corpus.Finalize();
  EXPECT_GT(corpus.Idf("rare"), corpus.Idf("common"));
  EXPECT_DOUBLE_EQ(corpus.Idf("absent"), 0.0);
}

TEST(TfIdfTest, CosineHandlesEmptyVectors) {
  SparseVector empty;
  SparseVector v{{1, 0.5}};
  EXPECT_DOUBLE_EQ(TfIdfCorpus::Cosine(empty, v), 0.0);
  EXPECT_DOUBLE_EQ(TfIdfCorpus::Cosine(empty, empty), 0.0);
}

TEST(TfIdfTest, CosineIsSymmetric) {
  SparseVector a{{1, 0.3}, {2, 0.7}, {5, 0.1}};
  SparseVector b{{2, 0.9}, {5, 0.4}, {9, 0.2}};
  EXPECT_NEAR(TfIdfCorpus::Cosine(a, b), TfIdfCorpus::Cosine(b, a), 1e-12);
}

}  // namespace
}  // namespace harmony::text
