#include "text/stopwords.h"

#include <gtest/gtest.h>

namespace harmony::text {
namespace {

TEST(StopWordsTest, CommonFunctionWords) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("of"));
  EXPECT_TRUE(IsStopWord("which"));
  EXPECT_TRUE(IsStopWord("a"));
}

TEST(StopWordsTest, ContentWordsAreNotStopWords) {
  EXPECT_FALSE(IsStopWord("vehicle"));
  EXPECT_FALSE(IsStopWord("date"));
  // Weak but real schema evidence stays in (TF-IDF down-weights it instead).
  EXPECT_FALSE(IsStopWord("code"));
  EXPECT_FALSE(IsStopWord("identifier"));
}

TEST(StopWordsTest, RemoveStopWordsFiltersOnlyStopWords) {
  auto out = RemoveStopWords({"the", "date", "of", "the", "event"});
  EXPECT_EQ(out, (std::vector<std::string>{"date", "event"}));
}

TEST(StopWordsTest, RemoveFromEmpty) {
  EXPECT_TRUE(RemoveStopWords({}).empty());
}

TEST(StopWordsTest, AllStopWordsYieldsEmpty) {
  EXPECT_TRUE(RemoveStopWords({"the", "of", "a"}).empty());
}

}  // namespace
}  // namespace harmony::text
