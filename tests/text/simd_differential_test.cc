// The scalar/vector differential harness (ISSUE 10 satellite): every SIMD
// string-metric kernel must return results BITWISE-identical to the scalar
// reference — same distance, same double, same bits — for every metric, at
// every supported level, on adversarial inputs, 20 seeds of random corpora,
// and at every byte alignment 0..31 of the inputs inside an arena. This is
// the suite that makes "which kernel ran" unobservable, which in turn is
// what keeps the engine-wide determinism invariants (parallel == serial,
// blocked == dense, SIMD build == scalar build) reducible to in-binary
// checks.
//
// In a -DHARMONY_SIMD=OFF build (or on a CPU with no accelerated level)
// there is nothing to differentiate against and the suite skips.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/simd.h"
#include "text/string_metrics.h"
#include "text/tfidf.h"

namespace harmony {
namespace {

namespace simd = text::simd;

// Restores the entry level on destruction so test order never leaks.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::ActiveLevel()) {}
  ~LevelGuard() { simd::SetActiveLevel(saved_); }

 private:
  simd::Level saved_;
};

std::vector<simd::Level> AcceleratedLevels() {
  std::vector<simd::Level> levels;
  if (simd::DetectLevel() >= simd::Level::kBitParallel) {
    levels.push_back(simd::Level::kBitParallel);
  }
  if (simd::DetectLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

#define SKIP_IF_SCALAR_ONLY()                                              \
  do {                                                                     \
    if (simd::DetectLevel() == simd::Level::kScalar) {                     \
      GTEST_SKIP() << "no accelerated level in this build/CPU — nothing "  \
                      "to differentiate";                                  \
    }                                                                      \
  } while (0)

// Bitwise double equality: NaN-safe and distinguishes -0.0 from +0.0,
// which plain EXPECT_DOUBLE_EQ would let slide.
void ExpectBitwiseEq(double want, double got, const char* what) {
  EXPECT_EQ(std::bit_cast<uint64_t>(want), std::bit_cast<uint64_t>(got))
      << what << ": scalar " << want << " vs vector " << got;
}

// Runs every string metric on (a, b) at kScalar, then re-runs at each
// accelerated level and asserts bitwise equality.
void DifferentialCheck(std::string_view a, std::string_view b) {
  SCOPED_TRACE(::testing::Message()
               << "a[" << a.size() << "]=\"" << std::string(a).substr(0, 40)
               << "\" b[" << b.size() << "]=\"" << std::string(b).substr(0, 40)
               << "\"");
  text::MetricScratch scratch;
  LevelGuard guard;

  simd::SetActiveLevel(simd::Level::kScalar);
  const size_t lev = text::LevenshteinDistance(a, b, scratch);
  const double lev_sim = text::LevenshteinSimilarity(a, b, scratch);
  const double jaro = text::JaroSimilarity(a, b, scratch);
  const double jw = text::JaroWinklerSimilarity(a, b, scratch);
  const double qgram2 = text::QGramSimilarity(a, b, 2, scratch);
  const double qgram3 = text::QGramSimilarity(a, b, 3, scratch);

  for (simd::Level level : AcceleratedLevels()) {
    SCOPED_TRACE(::testing::Message() << "level " << simd::LevelName(level));
    simd::SetActiveLevel(level);
    // Fresh scratch per level: carried-over scratch state must not be able
    // to mask (or cause) a divergence.
    text::MetricScratch vec_scratch;
    EXPECT_EQ(lev, text::LevenshteinDistance(a, b, vec_scratch)) << "lev";
    ExpectBitwiseEq(lev_sim, text::LevenshteinSimilarity(a, b, vec_scratch),
                    "lev_sim");
    ExpectBitwiseEq(jaro, text::JaroSimilarity(a, b, vec_scratch), "jaro");
    ExpectBitwiseEq(jw, text::JaroWinklerSimilarity(a, b, vec_scratch), "jw");
    ExpectBitwiseEq(qgram2, text::QGramSimilarity(a, b, 2, vec_scratch),
                    "qgram2");
    ExpectBitwiseEq(qgram3, text::QGramSimilarity(a, b, 3, vec_scratch),
                    "qgram3");
    // And again with the reused scratch — the epoch-stamped peq table must
    // behave identically on its second use.
    EXPECT_EQ(lev, text::LevenshteinDistance(a, b, vec_scratch)) << "lev#2";
    ExpectBitwiseEq(jaro, text::JaroSimilarity(a, b, vec_scratch), "jaro#2");
  }
}

TEST(SimdDifferentialTest, AdversarialCases) {
  SKIP_IF_SCALAR_ONLY();
  const std::string all_equal_63(63, 'x');
  const std::string all_equal_64(64, 'x');
  const std::string all_equal_65(65, 'x');
  // Raw UTF-8 bytes: the metrics are byte-oriented, and the kernels index
  // peq by unsigned char — bytes >= 0x80 must not sign-extend.
  const std::string utf8_a = "sch\xc3\xa9ma_\xc3\xa9l\xc3\xa9ment";
  const std::string utf8_b = "schema_element";
  const std::string high_bytes = "\x80\xff\xfe\x01\x7f\x80\xff";
  const std::vector<std::string> cases = {
      "",
      "a",
      "b",
      "ab",
      "ba",
      "abcdefghijklmnopqrstuvwxyz",
      "customer_id",
      "cust_identifier",
      all_equal_63,
      all_equal_64,
      all_equal_65,
      all_equal_64 + "y",
      utf8_a,
      utf8_b,
      high_bytes,
      std::string("\x00\x01\x02", 3),  // embedded NUL bytes
  };
  for (const std::string& a : cases) {
    for (const std::string& b : cases) {
      DifferentialCheck(a, b);
    }
  }
}

// Lengths straddling every vector-width boundary the kernels care about:
// the 64-bit word of the bit-parallel kernels (63/64/65) and the 8/16/32
// lane groups (7..9, 15..17, 31..33), in every pairing, both as equal
// strings and as near-misses (one substitution, one deletion).
TEST(SimdDifferentialTest, BoundaryLengths) {
  SKIP_IF_SCALAR_ONLY();
  const size_t kLengths[] = {0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 66};
  Rng rng(0x51D0);
  for (size_t la : kLengths) {
    for (size_t lb : kLengths) {
      std::string a(la, 'a'), b(lb, 'a');
      for (size_t i = 0; i < la; ++i) a[i] = static_cast<char>('a' + (i % 5));
      for (size_t i = 0; i < lb; ++i) b[i] = static_cast<char>('a' + (i % 5));
      DifferentialCheck(a, b);
      if (!b.empty()) {
        std::string mutated = b;
        mutated[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(b.size()) - 1))] = 'z';
        DifferentialCheck(a, mutated);
      }
    }
  }
}

// 20 seeds of random corpora: mixed alphabets (tight 4-letter for dense
// matches, full byte range for the sign/overflow edges), lengths 0..80 so
// both the <=64 bit-parallel paths and the >64 scalar fallbacks run.
TEST(SimdDifferentialTest, RandomCorpora20Seeds) {
  SKIP_IF_SCALAR_ONLY();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    Rng rng(seed);
    for (int pair = 0; pair < 40; ++pair) {
      const bool tight = rng.Bernoulli(0.5);
      auto make = [&](size_t max_len) {
        std::string s(static_cast<size_t>(
                          rng.Uniform(0, static_cast<int64_t>(max_len))),
                      '\0');
        for (char& c : s) {
          c = tight ? static_cast<char>('a' + rng.Uniform(0, 3))
                    : static_cast<char>(rng.Uniform(0, 255));
        }
        return s;
      };
      DifferentialCheck(make(80), make(80));
    }
  }
}

// Every metric, at every byte offset 0..31 into a shared arena: the kernels
// take string_views wherever the caller's buffers put them, so a result
// must never depend on the address alignment of its inputs. The scalar
// reference is computed once from the offset-0 copy; every (offset, level)
// combination must reproduce it bitwise.
TEST(SimdDifferentialTest, AlignmentOffsets0To31) {
  SKIP_IF_SCALAR_ONLY();
  const std::string a_src = "part_identifier_code_9921";
  const std::string b_src = "partidentifiercode";
  text::MetricScratch scratch;
  LevelGuard guard;

  simd::SetActiveLevel(simd::Level::kScalar);
  const size_t lev = text::LevenshteinDistance(a_src, b_src, scratch);
  const double jaro = text::JaroSimilarity(a_src, b_src, scratch);
  const double jw = text::JaroWinklerSimilarity(a_src, b_src, scratch);
  const double qgram2 = text::QGramSimilarity(a_src, b_src, 2, scratch);

  // a lives at [off_a, off_a + 25); b starts at 64 + off_b, past any a
  // placement (max end 32 + 25 = 57), so the two copies never overlap.
  std::vector<char> arena(64 + 32 + b_src.size());
  for (size_t off_a = 0; off_a < 32; ++off_a) {
    for (size_t off_b : {0u, 1u, 7u, 13u, 31u}) {
      char* pa = arena.data() + off_a;
      char* pb = arena.data() + 64 + off_b;
      std::memcpy(pa, a_src.data(), a_src.size());
      std::memcpy(pb, b_src.data(), b_src.size());
      std::string_view a(pa, a_src.size());
      std::string_view b(pb, b_src.size());
      for (simd::Level level : AcceleratedLevels()) {
        SCOPED_TRACE(::testing::Message()
                     << "off_a " << off_a << " off_b " << off_b << " level "
                     << simd::LevelName(level));
        simd::SetActiveLevel(level);
        EXPECT_EQ(lev, text::LevenshteinDistance(a, b, scratch));
        ExpectBitwiseEq(jaro, text::JaroSimilarity(a, b, scratch), "jaro");
        ExpectBitwiseEq(jw, text::JaroWinklerSimilarity(a, b, scratch), "jw");
        ExpectBitwiseEq(qgram2, text::QGramSimilarity(a, b, 2, scratch),
                        "qgram2");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SortedSparseDot: the cosine kernel behind the documentation voter.

// A sorted sparse vector with its own padded backing store, optionally
// placed `offset` elements into the buffer so the AVX2 loads hit every
// 4-byte alignment class.
struct PaddedVec {
  std::vector<uint32_t> terms;
  std::vector<double> weights;
  uint32_t size = 0;
  size_t offset = 0;

  text::SortedVecView view() const {
    return {terms.data() + offset, weights.data() + offset, size};
  }
};

PaddedVec MakePadded(const std::vector<std::pair<uint32_t, double>>& entries,
                     size_t offset) {
  PaddedVec v;
  v.offset = offset;
  v.size = static_cast<uint32_t>(entries.size());
  v.terms.assign(offset, 0);
  v.weights.assign(offset, 0.0);
  for (const auto& [t, w] : entries) {
    v.terms.push_back(t);
    v.weights.push_back(w);
  }
  // Mirror ProfileView::Build's contract: at least one sentinel (so the
  // block walk always terminates inside the run), then pad to the block
  // boundary.
  do {
    v.terms.push_back(text::kDocTermSentinel);
    v.weights.push_back(0.0);
  } while ((v.terms.size() - offset) % text::kDocTermBlock != 0);
  return v;
}

std::vector<std::pair<uint32_t, double>> RandomSortedEntries(Rng& rng,
                                                            size_t max_terms,
                                                            uint32_t universe) {
  std::vector<std::pair<uint32_t, double>> entries;
  uint32_t term = 0;
  size_t want = static_cast<size_t>(
      rng.Uniform(0, static_cast<int64_t>(max_terms)));
  while (entries.size() < want && term < universe) {
    term += static_cast<uint32_t>(rng.Uniform(1, 5));
    entries.emplace_back(term, rng.NextDouble() * 2.0 - 1.0);
  }
  return entries;
}

TEST(SimdDifferentialTest, SortedSparseDotRandom20Seeds) {
  SKIP_IF_SCALAR_ONLY();
  LevelGuard guard;
  for (uint64_t seed = 100; seed < 120; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    Rng rng(seed);
    for (int rep = 0; rep < 50; ++rep) {
      auto ea = RandomSortedEntries(rng, 40, 400);
      auto eb = RandomSortedEntries(rng, 40, 400);
      PaddedVec a = MakePadded(ea, 0);
      PaddedVec b = MakePadded(eb, 0);

      simd::SetActiveLevel(simd::Level::kScalar);
      const double want = text::SortedSparseDot(a.view(), b.view());
      for (simd::Level level : AcceleratedLevels()) {
        SCOPED_TRACE(::testing::Message() << "level "
                                          << simd::LevelName(level));
        simd::SetActiveLevel(level);
        ExpectBitwiseEq(want, text::SortedSparseDot(a.view(), b.view()),
                        "dot");
        // Symmetric call — both orders must agree with their scalar twin.
        simd::SetActiveLevel(simd::Level::kScalar);
        const double want_rev = text::SortedSparseDot(b.view(), a.view());
        simd::SetActiveLevel(level);
        ExpectBitwiseEq(want_rev, text::SortedSparseDot(b.view(), a.view()),
                        "dot_rev");
      }
    }
  }
}

TEST(SimdDifferentialTest, SortedSparseDotEdgeShapes) {
  SKIP_IF_SCALAR_ONLY();
  LevelGuard guard;
  using Entries = std::vector<std::pair<uint32_t, double>>;
  const Entries empty;
  const Entries one = {{7, 0.5}};
  Entries block7, block8, block9, sparse_far;
  for (uint32_t i = 0; i < 7; ++i) block7.push_back({i * 3, 0.1 * (i + 1)});
  for (uint32_t i = 0; i < 8; ++i) block8.push_back({i * 3, 0.1 * (i + 1)});
  for (uint32_t i = 0; i < 9; ++i) block9.push_back({i * 3, 0.1 * (i + 1)});
  // Forces multi-block advance: a-terms far beyond b's first blocks.
  for (uint32_t i = 0; i < 24; ++i) sparse_far.push_back({i * 97, 1.0});
  const std::vector<Entries> shapes = {empty, one,    block7,
                                       block8, block9, sparse_far};
  for (const Entries& ea : shapes) {
    for (const Entries& eb : shapes) {
      PaddedVec a = MakePadded(ea, 0);
      PaddedVec b = MakePadded(eb, 0);
      simd::SetActiveLevel(simd::Level::kScalar);
      const double want = text::SortedSparseDot(a.view(), b.view());
      for (simd::Level level : AcceleratedLevels()) {
        simd::SetActiveLevel(level);
        ExpectBitwiseEq(want, text::SortedSparseDot(a.view(), b.view()),
                        "dot");
      }
    }
  }
}

// The dot at every element offset 0..31 of both operands' backing stores:
// unaligned AVX2 loads must return the same bits wherever the arena starts.
TEST(SimdDifferentialTest, SortedSparseDotAlignmentOffsets) {
  SKIP_IF_SCALAR_ONLY();
  LevelGuard guard;
  Rng rng(0xA11);
  auto ea = RandomSortedEntries(rng, 30, 300);
  auto eb = RandomSortedEntries(rng, 30, 300);

  PaddedVec a0 = MakePadded(ea, 0);
  PaddedVec b0 = MakePadded(eb, 0);
  simd::SetActiveLevel(simd::Level::kScalar);
  const double want = text::SortedSparseDot(a0.view(), b0.view());

  for (size_t off_a = 0; off_a < 32; ++off_a) {
    for (size_t off_b = 0; off_b < 32; ++off_b) {
      PaddedVec a = MakePadded(ea, off_a);
      PaddedVec b = MakePadded(eb, off_b);
      for (simd::Level level : AcceleratedLevels()) {
        SCOPED_TRACE(::testing::Message()
                     << "off_a " << off_a << " off_b " << off_b << " level "
                     << simd::LevelName(level));
        simd::SetActiveLevel(level);
        ExpectBitwiseEq(want, text::SortedSparseDot(a.view(), b.view()),
                        "dot");
      }
    }
  }
}

// Guardrail on the dispatch plumbing itself: parsing and clamping.
TEST(SimdDifferentialTest, LevelParseAndClamp) {
  simd::Level level;
  EXPECT_TRUE(simd::ParseLevel("scalar", &level));
  EXPECT_EQ(simd::Level::kScalar, level);
  EXPECT_TRUE(simd::ParseLevel("off", &level));
  EXPECT_EQ(simd::Level::kScalar, level);
  EXPECT_TRUE(simd::ParseLevel("bitparallel", &level));
  EXPECT_EQ(simd::Level::kBitParallel, level);
  EXPECT_TRUE(simd::ParseLevel("avx2", &level));
  EXPECT_EQ(simd::Level::kAvx2, level);
  EXPECT_TRUE(simd::ParseLevel("auto", &level));
  EXPECT_EQ(simd::DetectLevel(), level);
  EXPECT_FALSE(simd::ParseLevel("sse9", &level));

  LevelGuard guard;
  simd::SetActiveLevel(simd::Level::kAvx2);
  EXPECT_LE(simd::ActiveLevel(), simd::DetectLevel());  // clamped, not trusted
}

}  // namespace
}  // namespace harmony
