#include "text/abbreviations.h"

#include <gtest/gtest.h>

namespace harmony::text {
namespace {

TEST(AbbreviationsTest, BuiltinCoversEnterpriseStaples) {
  auto dict = AbbreviationDictionary::Builtin();
  EXPECT_EQ(dict.Lookup("dt"), "date");
  EXPECT_EQ(dict.Lookup("qty"), "quantity");
  EXPECT_EQ(dict.Lookup("org"), "organization");
  EXPECT_EQ(dict.Lookup("veh"), "vehicle");
  EXPECT_EQ(dict.Lookup("nbr"), "number");
  EXPECT_GT(dict.size(), 50u);
}

TEST(AbbreviationsTest, LookupIsCaseInsensitive) {
  auto dict = AbbreviationDictionary::Builtin();
  EXPECT_EQ(dict.Lookup("DT"), "date");
  EXPECT_EQ(dict.Lookup("Qty"), "quantity");
}

TEST(AbbreviationsTest, UnknownReturnsEmpty) {
  auto dict = AbbreviationDictionary::Builtin();
  EXPECT_EQ(dict.Lookup("zzz"), "");
}

TEST(AbbreviationsTest, ExpandAllMultiWord) {
  auto dict = AbbreviationDictionary::Builtin();
  auto out = dict.ExpandAll({"dob", "x"});
  EXPECT_EQ(out, (std::vector<std::string>{"date", "of", "birth", "x"}));
}

TEST(AbbreviationsTest, ExpandAllPassesUnknownThrough) {
  auto dict = AbbreviationDictionary::Builtin();
  auto out = dict.ExpandAll({"veh", "chassis"});
  EXPECT_EQ(out, (std::vector<std::string>{"vehicle", "chassis"}));
}

TEST(AbbreviationsTest, AddOverrides) {
  AbbreviationDictionary dict;
  dict.Add("dt", "downtime");
  EXPECT_EQ(dict.Lookup("dt"), "downtime");
  dict.Add("DT", "date");  // Keys normalize to lower case.
  EXPECT_EQ(dict.Lookup("dt"), "date");
  EXPECT_EQ(dict.size(), 1u);
}

TEST(AbbreviationsTest, LoadFromString) {
  AbbreviationDictionary dict;
  ASSERT_TRUE(dict.LoadFromString("# comment\n"
                                  "poc = point of contact\n"
                                  "\n"
                                  "fob=forward operating base\n")
                  .ok());
  EXPECT_EQ(dict.Lookup("poc"), "point of contact");
  EXPECT_EQ(dict.Lookup("fob"), "forward operating base");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(AbbreviationsTest, LoadRejectsMalformedLine) {
  AbbreviationDictionary dict;
  Status s = dict.LoadFromString("poc point of contact\n");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 1"), std::string::npos);
}

TEST(AbbreviationsTest, LoadRejectsEmptyKey) {
  AbbreviationDictionary dict;
  EXPECT_TRUE(dict.LoadFromString("=value\n").IsParseError());
  EXPECT_TRUE(dict.LoadFromString("key=\n").IsParseError());
}

}  // namespace
}  // namespace harmony::text
