#include "text/string_metrics.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace harmony::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abce"), 0.75, 1e-9);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("prefixed", "prefixes");
  double jw = JaroWinklerSimilarity("prefixed", "prefixes");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-3);
}

TEST(LcsTest, KnownValues) {
  EXPECT_EQ(LongestCommonSubsequence("abcde", "ace"), 3u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "def"), 0u);
  EXPECT_EQ(LongestCommonSubsequence("", "x"), 0u);
  EXPECT_DOUBLE_EQ(LcsSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LcsSimilarity("", ""), 1.0);
}

TEST(QGramTest, BigramsAndTrigrams) {
  EXPECT_DOUBLE_EQ(QGramSimilarity("night", "night"), 1.0);
  EXPECT_GT(QGramSimilarity("night", "nacht"), 0.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "cd"), 0.0);
  // Too short for trigrams unless equal.
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "ab", 3), 1.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "ax", 3), 0.0);
}

TEST(TokenSetTest, JaccardAndDice) {
  std::vector<std::string> a{"date", "begin"};
  std::vector<std::string> b{"date", "start"};
  EXPECT_NEAR(TokenJaccard(a, b), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(TokenDice(a, b), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(TokenJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TokenDice({}, {"x"}), 0.0);
}

TEST(TokenSetTest, DuplicatesIgnored) {
  EXPECT_DOUBLE_EQ(TokenJaccard({"a", "a", "b"}, {"a", "b", "b"}), 1.0);
}

TEST(SoftTokenTest, ExactAndFuzzy) {
  EXPECT_DOUBLE_EQ(SoftTokenSimilarity({"date", "begin"}, {"date", "begin"}), 1.0);
  // "vehicles" vs "vehicle" should clear the 0.85 Jaro-Winkler bar.
  EXPECT_GT(SoftTokenSimilarity({"vehicle"}, {"vehicles"}), 0.9);
  EXPECT_DOUBLE_EQ(SoftTokenSimilarity({"alpha"}, {"omega"}), 0.0);
}

TEST(SoftSortedTest, AgreesWithSoftTokenOnSortedInput) {
  std::vector<std::string> a{"begin", "date"};
  std::vector<std::string> b{"date", "start"};
  EXPECT_NEAR(SoftSortedSimilarity(a, b), SoftTokenSimilarity(a, b), 1e-9);
}

TEST(SoftSortedTest, LargeInputsFallBackToDice) {
  std::vector<std::string> big_a, big_b;
  for (int i = 0; i < 40; ++i) {
    big_a.push_back("tok" + std::to_string(i));
    big_b.push_back("tok" + std::to_string(i + 20));
  }
  std::sort(big_a.begin(), big_a.end());
  std::sort(big_b.begin(), big_b.end());
  double sim = SoftSortedSimilarity(big_a, big_b);
  // 20 shared tokens, Dice-normalized like the small-set soft path:
  // 2·20/(40+40) — NOT Jaccard's 20/60, which would make a container's
  // structural score jump as its child set crosses the 32-token cutoff.
  EXPECT_NEAR(sim, 2.0 * 20.0 / 80.0, 1e-9);
}

// The small-set path matches soft (Jaro-Winkler ≥ threshold) pairs and the
// large-set path intersects exactly, but both must normalize identically:
// with pairwise-dissimilar vocabularies (only exact tokens match) the score
// must follow the same Dice curve 2k/(|A|+|B|) on either side of the
// 32-token cutoff.
TEST(SoftSortedTest, ContinuousAcrossSizeCutoff) {
  // "qNN" tokens: any two distinct ones stay below the 0.85 Jaro-Winkler
  // bar (best case shares "qN" prefix: Jaro 7/9 → JW ≈ 0.82), so the soft
  // path can only match exact duplicates — like the large-set fallback.
  auto token = [](int i) {
    std::string t = std::to_string(i);
    if (t.size() < 2) t.insert(t.begin(), '0');
    t.insert(t.begin(), 'q');
    return t;
  };
  constexpr int kShared = 12;
  for (int n = 30; n <= 35; ++n) {
    std::vector<std::string> a, b;
    for (int i = 0; i < n; ++i) a.push_back(token(i));                // q00..
    for (int i = n - kShared; i < 2 * n - kShared; ++i) b.push_back(token(i));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_DOUBLE_EQ(SoftSortedSimilarity(a, b),
                     2.0 * kShared / static_cast<double>(2 * n))
        << "discontinuity at n=" << n;
  }
}

// Tied token similarities must pair off identically everywhere: dedup is
// sort+unique (not hash-set order) and ties break by (sim desc, i, j) over
// the sorted tokens. These inputs are engineered so several candidate pairs
// tie exactly.
TEST(SoftTokenTest, TiedSimilaritiesAreDeterministic) {
  // The cross pairs ax↔ay and bx↔by tie exactly (JW ≈ 0.7: Jaro 2/3 plus
  // one shared prefix char); the mixed pairs ax↔by, bx↔ay share no letters
  // and score 0. With threshold 0.5 the greedy matching must take (ax,ay)
  // and (bx,by) — both tied pairs, never the zero pairs.
  double s = JaroWinklerSimilarity("ax", "ay");
  ASSERT_DOUBLE_EQ(s, JaroWinklerSimilarity("bx", "by"));  // The tie is real.
  std::vector<std::string> a{"ax", "bx"};
  std::vector<std::string> b{"ay", "by"};
  EXPECT_DOUBLE_EQ(SoftTokenSimilarity(a, b, 0.5), 2.0 * (s + s) / 4.0);
  // Input order must not matter: dedup sorts first.
  std::vector<std::string> a_rev{"bx", "ax"};
  std::vector<std::string> b_rev{"by", "ay"};
  EXPECT_DOUBLE_EQ(SoftTokenSimilarity(a_rev, b_rev, 0.5),
                   SoftTokenSimilarity(a, b, 0.5));

  // One source token, two equally-similar targets: the tie breaks to the
  // lower j (sorted order), and only one of the two pairs can match —
  // total s over 3 unique tokens.
  ASSERT_DOUBLE_EQ(s, JaroWinklerSimilarity("ax", "az"));
  EXPECT_DOUBLE_EQ(SoftTokenSimilarity({"ax"}, {"ay", "az"}, 0.5),
                   2.0 * s / 3.0);

  // Duplicates within a side are removed before normalization.
  EXPECT_DOUBLE_EQ(SoftTokenSimilarity({"ax", "ax"}, {"ay", "az"}, 0.5),
                   2.0 * s / 3.0);
}

// The scratch-taking overloads exist so the batched kernel can score ~10^6
// pairs without per-call allocation; they must return bitwise-identical
// values to the convenience forms, including when one scratch instance is
// reused across calls with different-sized inputs.
TEST(MetricScratchTest, ScratchOverloadsMatchConvenienceForms) {
  MetricScratch scratch;
  const char* samples[] = {"",       "a",         "date",       "DATE_BEGIN",
                           "kitten", "sitting",   "datebegin",  "vehicleidn",
                           "martha", "marhta",    "dixon",      "dicksonx"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(a, b, scratch));
      EXPECT_DOUBLE_EQ(LevenshteinSimilarity(a, b),
                       LevenshteinSimilarity(a, b, scratch));
      EXPECT_DOUBLE_EQ(JaroSimilarity(a, b), JaroSimilarity(a, b, scratch));
      EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(a, b),
                       JaroWinklerSimilarity(a, b, scratch));
    }
  }
  std::vector<std::vector<std::string>> token_sets{
      {},
      {"date"},
      {"date", "begin"},
      {"vehicle", "identification", "number"},
      {"begin", "date", "date", "vehicles"},
  };
  for (const auto& a : token_sets) {
    for (const auto& b : token_sets) {
      EXPECT_DOUBLE_EQ(SoftTokenSimilarity(a, b),
                       SoftTokenSimilarity(a, b, 0.85, scratch));
      std::vector<std::string> sa = a, sb = b;
      std::sort(sa.begin(), sa.end());
      sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
      std::sort(sb.begin(), sb.end());
      sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
      EXPECT_DOUBLE_EQ(SoftSortedSimilarity(sa, sb),
                       SoftSortedSimilarity(sa, sb, 0.85, scratch));
      // The pre-deduplicated fast path equals the raw entry point.
      EXPECT_DOUBLE_EQ(SoftTokenSimilaritySorted(sa, sb, 0.85, scratch),
                       SoftTokenSimilarity(a, b));
    }
  }
}

// Metric properties every similarity must satisfy.
struct MetricCase {
  const char* name;
  double (*fn)(std::string_view, std::string_view);
};

double QGram2(std::string_view a, std::string_view b) {
  return QGramSimilarity(a, b, 2);
}

class StringMetricPropertyTest : public ::testing::TestWithParam<MetricCase> {};

TEST_P(StringMetricPropertyTest, RangeSymmetryIdentity) {
  auto fn = GetParam().fn;
  const char* samples[] = {"",          "a",          "date",  "DATE_BEGIN",
                           "datebegin", "vehicleidn", "x1y2z", "aaaaaaaa"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      double ab = fn(a, b);
      double ba = fn(b, a);
      EXPECT_NEAR(ab, ba, 1e-12) << GetParam().name << "(" << a << "," << b << ")";
      EXPECT_GE(ab, 0.0) << GetParam().name;
      EXPECT_LE(ab, 1.0) << GetParam().name;
    }
    EXPECT_DOUBLE_EQ(fn(a, a), 1.0) << GetParam().name << " identity on " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, StringMetricPropertyTest,
    ::testing::Values(MetricCase{"levenshtein", &LevenshteinSimilarity},
                      MetricCase{"jaro", &JaroSimilarity},
                      MetricCase{"jaro_winkler", &JaroWinklerSimilarity},
                      MetricCase{"lcs", &LcsSimilarity},
                      MetricCase{"qgram2", &QGram2}),
    [](const ::testing::TestParamInfo<MetricCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace harmony::text
