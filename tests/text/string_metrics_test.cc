#include "text/string_metrics.h"

#include <gtest/gtest.h>

namespace harmony::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abce"), 0.75, 1e-9);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("prefixed", "prefixes");
  double jw = JaroWinklerSimilarity("prefixed", "prefixes");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-3);
}

TEST(LcsTest, KnownValues) {
  EXPECT_EQ(LongestCommonSubsequence("abcde", "ace"), 3u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "def"), 0u);
  EXPECT_EQ(LongestCommonSubsequence("", "x"), 0u);
  EXPECT_DOUBLE_EQ(LcsSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LcsSimilarity("", ""), 1.0);
}

TEST(QGramTest, BigramsAndTrigrams) {
  EXPECT_DOUBLE_EQ(QGramSimilarity("night", "night"), 1.0);
  EXPECT_GT(QGramSimilarity("night", "nacht"), 0.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "cd"), 0.0);
  // Too short for trigrams unless equal.
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "ab", 3), 1.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "ax", 3), 0.0);
}

TEST(TokenSetTest, JaccardAndDice) {
  std::vector<std::string> a{"date", "begin"};
  std::vector<std::string> b{"date", "start"};
  EXPECT_NEAR(TokenJaccard(a, b), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(TokenDice(a, b), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(TokenJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TokenDice({}, {"x"}), 0.0);
}

TEST(TokenSetTest, DuplicatesIgnored) {
  EXPECT_DOUBLE_EQ(TokenJaccard({"a", "a", "b"}, {"a", "b", "b"}), 1.0);
}

TEST(SoftTokenTest, ExactAndFuzzy) {
  EXPECT_DOUBLE_EQ(SoftTokenSimilarity({"date", "begin"}, {"date", "begin"}), 1.0);
  // "vehicles" vs "vehicle" should clear the 0.85 Jaro-Winkler bar.
  EXPECT_GT(SoftTokenSimilarity({"vehicle"}, {"vehicles"}), 0.9);
  EXPECT_DOUBLE_EQ(SoftTokenSimilarity({"alpha"}, {"omega"}), 0.0);
}

TEST(SoftSortedTest, AgreesWithSoftTokenOnSortedInput) {
  std::vector<std::string> a{"begin", "date"};
  std::vector<std::string> b{"date", "start"};
  EXPECT_NEAR(SoftSortedSimilarity(a, b), SoftTokenSimilarity(a, b), 1e-9);
}

TEST(SoftSortedTest, LargeInputsFallBackToJaccard) {
  std::vector<std::string> big_a, big_b;
  for (int i = 0; i < 40; ++i) {
    big_a.push_back("tok" + std::to_string(i));
    big_b.push_back("tok" + std::to_string(i + 20));
  }
  std::sort(big_a.begin(), big_a.end());
  std::sort(big_b.begin(), big_b.end());
  double sim = SoftSortedSimilarity(big_a, big_b);
  // 20 shared of 60 union.
  EXPECT_NEAR(sim, 20.0 / 60.0, 1e-9);
}

// Metric properties every similarity must satisfy.
struct MetricCase {
  const char* name;
  double (*fn)(std::string_view, std::string_view);
};

double QGram2(std::string_view a, std::string_view b) {
  return QGramSimilarity(a, b, 2);
}

class StringMetricPropertyTest : public ::testing::TestWithParam<MetricCase> {};

TEST_P(StringMetricPropertyTest, RangeSymmetryIdentity) {
  auto fn = GetParam().fn;
  const char* samples[] = {"",          "a",          "date",  "DATE_BEGIN",
                           "datebegin", "vehicleidn", "x1y2z", "aaaaaaaa"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      double ab = fn(a, b);
      double ba = fn(b, a);
      EXPECT_NEAR(ab, ba, 1e-12) << GetParam().name << "(" << a << "," << b << ")";
      EXPECT_GE(ab, 0.0) << GetParam().name;
      EXPECT_LE(ab, 1.0) << GetParam().name;
    }
    EXPECT_DOUBLE_EQ(fn(a, a), 1.0) << GetParam().name << " identity on " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, StringMetricPropertyTest,
    ::testing::Values(MetricCase{"levenshtein", &LevenshteinSimilarity},
                      MetricCase{"jaro", &JaroSimilarity},
                      MetricCase{"jaro_winkler", &JaroWinklerSimilarity},
                      MetricCase{"lcs", &LcsSimilarity},
                      MetricCase{"qgram2", &QGram2}),
    [](const ::testing::TestParamInfo<MetricCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace harmony::text
