#include "text/synonyms.h"

#include <gtest/gtest.h>

namespace harmony::text {
namespace {

TEST(SynonymsTest, BuiltinCanonicalizesDomainPairs) {
  auto dict = SynonymDictionary::Builtin();
  EXPECT_EQ(dict.Canonicalize("individual"), "person");
  EXPECT_EQ(dict.Canonicalize("conveyance"), "vehicle");
  EXPECT_EQ(dict.Canonicalize("incident"), "event");
  EXPECT_EQ(dict.Canonicalize("start"), "begin");
  EXPECT_EQ(dict.Canonicalize("velocity"), "speed");
}

TEST(SynonymsTest, CanonicalMapsToItselfAndUnknownPassesThrough) {
  auto dict = SynonymDictionary::Builtin();
  EXPECT_EQ(dict.Canonicalize("person"), "person");
  EXPECT_EQ(dict.Canonicalize("flux_capacitor"), "flux_capacitor");
}

TEST(SynonymsTest, LookupIsCaseInsensitive) {
  auto dict = SynonymDictionary::Builtin();
  EXPECT_EQ(dict.Canonicalize("Individual"), "person");
  EXPECT_EQ(dict.Canonicalize("INCIDENT"), "event");
}

TEST(SynonymsTest, StemFallbackResolvesInflections) {
  auto dict = SynonymDictionary::Builtin();
  EXPECT_EQ(dict.Canonicalize("incidents"), "event");
  EXPECT_EQ(dict.Canonicalize("individuals"), "person");
}

TEST(SynonymsTest, MultiWordCanonicalsSplit) {
  auto dict = SynonymDictionary::Builtin();
  auto out = dict.CanonicalizeAll({"surname", "of", "individual"});
  EXPECT_EQ(out, (std::vector<std::string>{"last", "name", "of", "person"}));
}

TEST(SynonymsTest, AddSynsetAndSize) {
  SynonymDictionary dict;
  EXPECT_EQ(dict.size(), 0u);
  dict.AddSynset({"canonical", "alias", "alternate"});
  EXPECT_EQ(dict.Canonicalize("alias"), "canonical");
  EXPECT_EQ(dict.Canonicalize("alternate"), "canonical");
  EXPECT_GE(dict.size(), 2u);
}

TEST(SynonymsTest, LoadFromString) {
  SynonymDictionary dict;
  ASSERT_TRUE(dict.LoadFromString("# comment\n"
                                  "grid = mgrs, lattice\n")
                  .ok());
  EXPECT_EQ(dict.Canonicalize("mgrs"), "grid");
  EXPECT_EQ(dict.Canonicalize("lattice"), "grid");
}

TEST(SynonymsTest, LoadRejectsMalformed) {
  SynonymDictionary dict;
  EXPECT_TRUE(dict.LoadFromString("no equals sign\n").IsParseError());
  EXPECT_TRUE(dict.LoadFromString("= orphan\n").IsParseError());
  EXPECT_TRUE(dict.LoadFromString("lonely =\n").IsParseError());
}

}  // namespace
}  // namespace harmony::text
