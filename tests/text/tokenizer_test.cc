#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace harmony::text {
namespace {

using Tokens = std::vector<std::string>;

TEST(TokenizerTest, UnderscoreSeparated) {
  EXPECT_EQ(TokenizeIdentifier("DATE_BEGIN"), (Tokens{"date", "begin"}));
}

TEST(TokenizerTest, NumericSuffixKeptByDefault) {
  EXPECT_EQ(TokenizeIdentifier("DATE_BEGIN_156"), (Tokens{"date", "begin", "156"}));
}

TEST(TokenizerTest, DropPureNumbers) {
  TokenizerOptions opts;
  opts.drop_pure_numbers = true;
  EXPECT_EQ(TokenizeIdentifier("DATE_BEGIN_156", opts), (Tokens{"date", "begin"}));
}

TEST(TokenizerTest, CamelCase) {
  EXPECT_EQ(TokenizeIdentifier("dateTimeFirstInfo"),
            (Tokens{"date", "time", "first", "info"}));
}

TEST(TokenizerTest, PascalCase) {
  EXPECT_EQ(TokenizeIdentifier("AllEventVitals"), (Tokens{"all", "event", "vitals"}));
}

TEST(TokenizerTest, AcronymThenWord) {
  EXPECT_EQ(TokenizeIdentifier("XMLParser"), (Tokens{"xml", "parser"}));
  EXPECT_EQ(TokenizeIdentifier("parseXML"), (Tokens{"parse", "xml"}));
}

TEST(TokenizerTest, LetterDigitBoundary) {
  EXPECT_EQ(TokenizeIdentifier("DATE156X"), (Tokens{"date", "156", "x"}));
}

TEST(TokenizerTest, MixedSeparators) {
  EXPECT_EQ(TokenizeIdentifier("person-birth.date/code"),
            (Tokens{"person", "birth", "date", "code"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnly) {
  EXPECT_TRUE(TokenizeIdentifier("").empty());
  EXPECT_TRUE(TokenizeIdentifier("___").empty());
}

TEST(TokenizerTest, CaseCanBePreserved) {
  TokenizerOptions opts;
  opts.lowercase = false;
  EXPECT_EQ(TokenizeIdentifier("DateBegin", opts), (Tokens{"Date", "Begin"}));
}

TEST(TokenizerTest, CamelSplittingCanBeDisabled) {
  TokenizerOptions opts;
  opts.split_camel_case = false;
  EXPECT_EQ(TokenizeIdentifier("dateBegin", opts), (Tokens{"datebegin"}));
}

TEST(TokenizeTextTest, WordsAndPunctuation) {
  EXPECT_EQ(TokenizeText("The date on which the event began."),
            (Tokens{"the", "date", "on", "which", "the", "event", "began"}));
}

TEST(TokenizeTextTest, ApostrophesFold) {
  EXPECT_EQ(TokenizeText("person's record"), (Tokens{"persons", "record"}));
}

TEST(TokenizeTextTest, NumbersKept) {
  EXPECT_EQ(TokenizeText("within 30 days"), (Tokens{"within", "30", "days"}));
}

TEST(TokenizeTextTest, Empty) {
  EXPECT_TRUE(TokenizeText("").empty());
  EXPECT_TRUE(TokenizeText("...!?").empty());
}

}  // namespace
}  // namespace harmony::text
