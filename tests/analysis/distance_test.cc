#include "analysis/distance.h"

#include <gtest/gtest.h>

#include "schema/builder.h"
#include "synth/generator.h"

namespace harmony::analysis {
namespace {

schema::Schema MakeThemed(const std::string& name, const std::string& theme) {
  schema::RelationalBuilder b(name);
  auto t = b.Table(theme + "_MAIN", "All about " + theme);
  b.Column(t, theme + "_ID");
  b.Column(t, theme + "_STATUS", schema::DataType::kString,
           "Current " + theme + " status");
  return std::move(b).Build();
}

TEST(SchemaTokenBagTest, IncludesNamesAndDocs) {
  schema::Schema s = MakeThemed("S", "missile");
  auto bag = SchemaTokenBag(s);
  EXPECT_NE(std::find(bag.begin(), bag.end(), "missil"), bag.end());  // Stemmed.
  EXPECT_NE(std::find(bag.begin(), bag.end(), "statu"), bag.end());
}

TEST(TokenProfileIndexTest, SimilarSchemasCloserThanDissimilar) {
  schema::Schema a1 = MakeThemed("A1", "hospital");
  schema::Schema a2 = MakeThemed("A2", "hospital");
  schema::Schema b1 = MakeThemed("B1", "artillery");
  TokenProfileIndex index({&a1, &a2, &b1});
  EXPECT_GT(index.Similarity(0, 1), index.Similarity(0, 2));
  EXPECT_LT(index.Distance(0, 1), index.Distance(0, 2));
}

TEST(TokenProfileIndexTest, SelfSimilarityIsOne) {
  schema::Schema a = MakeThemed("A", "supply");
  schema::Schema b = MakeThemed("B", "convoy");
  TokenProfileIndex index({&a, &b});
  EXPECT_NEAR(index.Similarity(0, 0), 1.0, 1e-9);
}

TEST(TokenProfileIndexTest, DistanceMatrixSymmetricZeroDiagonal) {
  schema::Schema a = MakeThemed("A", "port");
  schema::Schema b = MakeThemed("B", "airfield");
  schema::Schema c = MakeThemed("C", "depot");
  TokenProfileIndex index({&a, &b, &c});
  auto m = index.DistanceMatrix();
  ASSERT_EQ(m.size(), 9u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(m[i * 3 + i], 0.0, 1e-9);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(m[i * 3 + j], m[j * 3 + i], 1e-12);
      EXPECT_GE(m[i * 3 + j], 0.0);
      EXPECT_LE(m[i * 3 + j], 1.0);
    }
  }
}

TEST(TokenProfileIndexTest, OutOfSetProfile) {
  schema::Schema a = MakeThemed("A", "radar");
  schema::Schema b = MakeThemed("B", "sonar");
  TokenProfileIndex index({&a, &b});
  schema::Schema query = MakeThemed("Q", "radar");
  auto profile = index.Profile(query);
  double to_a = text::TfIdfCorpus::Cosine(profile, index.vector(0));
  double to_b = text::TfIdfCorpus::Cosine(profile, index.vector(1));
  EXPECT_GT(to_a, to_b);
}

TEST(MatchOverlapSimilarityTest, OverlappingPairScoresHigherThanDisjoint) {
  synth::PairSpec overlapping;
  overlapping.source_concepts = 10;
  overlapping.target_concepts = 10;
  overlapping.shared_concepts = 8;
  auto pair_high = synth::GeneratePair(overlapping);

  synth::PairSpec disjoint = overlapping;
  disjoint.shared_concepts = 0;
  disjoint.seed = 43;
  auto pair_low = synth::GeneratePair(disjoint);

  double high = MatchOverlapSimilarity(pair_high.source, pair_high.target, 0.4);
  double low = MatchOverlapSimilarity(pair_low.source, pair_low.target, 0.4);
  EXPECT_GT(high, low);
}

}  // namespace
}  // namespace harmony::analysis
