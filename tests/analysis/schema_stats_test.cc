#include "analysis/schema_stats.h"

#include <gtest/gtest.h>

#include "schema/builder.h"
#include "synth/generator.h"

namespace harmony::analysis {
namespace {

schema::Schema MakeSchema() {
  schema::RelationalBuilder b("S");
  auto t = b.Table("PERSON", "A person we track carefully");
  b.Column(t, "NAME", schema::DataType::kString, "Full name");
  b.Column(t, "AGE", schema::DataType::kInteger);
  auto u = b.Table("MYSTERY");
  b.Column(u, "BLOB_COL", schema::DataType::kUnknown);
  return std::move(b).Build();
}

TEST(SchemaStatsTest, CountsAndDepth) {
  auto stats = ComputeSchemaStats(MakeSchema());
  EXPECT_EQ(stats.name, "S");
  EXPECT_EQ(stats.element_count, 5u);
  EXPECT_EQ(stats.container_count, 2u);
  EXPECT_EQ(stats.leaf_count, 3u);
  EXPECT_EQ(stats.max_depth, 2u);
  EXPECT_NEAR(stats.mean_container_fanout, 1.5, 1e-9);
}

TEST(SchemaStatsTest, Histograms) {
  auto stats = ComputeSchemaStats(MakeSchema());
  EXPECT_EQ(stats.kind_histogram.at(schema::ElementKind::kTable), 2u);
  EXPECT_EQ(stats.kind_histogram.at(schema::ElementKind::kColumn), 3u);
  EXPECT_EQ(stats.type_histogram.at(schema::DataType::kString), 1u);
  EXPECT_EQ(stats.type_histogram.at(schema::DataType::kInteger), 1u);
}

TEST(SchemaStatsTest, DocCoverageAndUnknownTypes) {
  auto stats = ComputeSchemaStats(MakeSchema());
  // PERSON (doc) + NAME (doc) of 5 elements.
  EXPECT_NEAR(stats.doc_coverage, 2.0 / 5.0, 1e-9);
  EXPECT_GT(stats.mean_doc_tokens, 1.0);
  EXPECT_NEAR(stats.unknown_type_fraction, 1.0 / 3.0, 1e-9);
}

TEST(SchemaStatsTest, EmptySchema) {
  schema::Schema empty("E");
  auto stats = ComputeSchemaStats(empty);
  EXPECT_EQ(stats.element_count, 0u);
  EXPECT_EQ(stats.doc_coverage, 0.0);
  EXPECT_EQ(stats.mean_container_fanout, 0.0);
}

TEST(SchemaStatsTest, GeneratedSchemaDocCoverageTracksSpec) {
  synth::SchemaSpec spec;
  spec.concepts = 20;
  spec.style.doc_probability = 0.9;
  auto high = ComputeSchemaStats(synth::GenerateSchema(spec));
  spec.seed = 2;
  spec.style.doc_probability = 0.2;
  auto low = ComputeSchemaStats(synth::GenerateSchema(spec));
  EXPECT_GT(high.doc_coverage, 0.8);
  EXPECT_LT(low.doc_coverage, 0.4);
}

TEST(SchemaStatsRenderTest, BlockContainsKeyFigures) {
  std::string block = RenderSchemaStats(ComputeSchemaStats(MakeSchema()));
  EXPECT_NE(block.find("5 elements"), std::string::npos);
  EXPECT_NE(block.find("documentation: 40%"), std::string::npos);
  EXPECT_NE(block.find("table=2"), std::string::npos);
}

TEST(SchemaStatsRenderTest, TableOneRowPerSchema) {
  std::vector<SchemaStats> all = {ComputeSchemaStats(MakeSchema())};
  schema::Schema other("OTHER", schema::SchemaFlavor::kXml);
  all.push_back(ComputeSchemaStats(other));
  std::string table = RenderStatsTable(all);
  EXPECT_NE(table.find("S "), std::string::npos);
  EXPECT_NE(table.find("OTHER"), std::string::npos);
  EXPECT_NE(table.find("xml"), std::string::npos);
}

}  // namespace
}  // namespace harmony::analysis
