#include "analysis/effort.h"

#include <gtest/gtest.h>

#include "core/match_engine.h"
#include "schema/builder.h"
#include "synth/generator.h"

namespace harmony::analysis {
namespace {

// A hand-built matrix with known bands.
core::MatchMatrix BandedMatrix() {
  core::MatchMatrix m({1, 2}, {10, 11, 12, 13});
  // Target 10: best 0.9 (easy); 11: best 0.45 (medium); 12: best 0.1
  // (unmatched); 13: best 0.31 (medium).
  m.Set(1, 10, 0.9);
  m.Set(2, 10, 0.2);
  m.Set(1, 11, 0.45);
  m.Set(2, 11, 0.40);
  m.Set(1, 12, 0.1);
  m.Set(2, 12, 0.05);
  m.Set(1, 13, 0.31);
  m.Set(2, 13, -0.2);
  return m;
}

TEST(EffortTest, BandsCountedCorrectly) {
  schema::Schema a("A"), b("B");
  auto est = EstimateIntegrationEffort(a, b, BandedMatrix());
  EXPECT_EQ(est.easy_mappings, 1u);
  EXPECT_EQ(est.medium_mappings, 2u);
  EXPECT_EQ(est.unmatched_target_elements, 1u);
  // Candidates >= 0.3: 0.9, 0.45, 0.40, 0.31 → 4.
  EXPECT_EQ(est.candidates_reviewed, 4u);
  EXPECT_NEAR(est.target_coverage, 3.0 / 4.0, 1e-9);
}

TEST(EffortTest, PersonDaysFollowModel) {
  schema::Schema a("A"), b("B");
  EffortModel model;
  auto est = EstimateIntegrationEffort(a, b, BandedMatrix(), model);
  double minutes_per_day = model.hours_per_person_day * 60.0;
  EXPECT_NEAR(est.mapping_person_days,
              (1 * model.minutes_per_easy_mapping +
               2 * model.minutes_per_medium_mapping) /
                  minutes_per_day,
              1e-9);
  EXPECT_NEAR(est.expansion_person_days,
              1 * model.minutes_per_unmatched_target / minutes_per_day, 1e-9);
  EXPECT_NEAR(est.total_person_days,
              est.mapping_person_days + est.expansion_person_days +
                  est.review_person_days,
              1e-9);
}

TEST(EffortTest, CustomThresholdsShiftBands) {
  schema::Schema a("A"), b("B");
  EffortModel strict;
  strict.easy_threshold = 0.95;
  strict.hard_threshold = 0.05;
  auto est = EstimateIntegrationEffort(a, b, BandedMatrix(), strict);
  EXPECT_EQ(est.easy_mappings, 0u);
  EXPECT_EQ(est.medium_mappings, 4u);
  EXPECT_EQ(est.unmatched_target_elements, 0u);
}

TEST(EffortTest, EmptyMatrix) {
  schema::Schema a("A"), b("B");
  core::MatchMatrix empty({}, {});
  auto est = EstimateIntegrationEffort(a, b, empty);
  EXPECT_EQ(est.total_person_days, 0.0);
  EXPECT_EQ(est.target_coverage, 0.0);
}

TEST(EffortTest, HigherOverlapMeansLessEffort) {
  synth::PairSpec overlapping;
  overlapping.source_concepts = 12;
  overlapping.target_concepts = 12;
  overlapping.shared_concepts = 10;
  auto high = synth::GeneratePair(overlapping);

  synth::PairSpec disjoint = overlapping;
  disjoint.shared_concepts = 1;
  disjoint.seed = 77;
  auto low = synth::GeneratePair(disjoint);

  core::MatchEngine high_engine(high.source, high.target);
  core::MatchEngine low_engine(low.source, low.target);
  auto high_est = EstimateIntegrationEffort(high.source, high.target,
                                            high_engine.ComputeMatrix());
  auto low_est =
      EstimateIntegrationEffort(low.source, low.target, low_engine.ComputeMatrix());
  EXPECT_GT(high_est.target_coverage, low_est.target_coverage);
  EXPECT_LT(high_est.expansion_person_days, low_est.expansion_person_days);
}

TEST(EffortMemoTest, ContainsTheNumbersPlannersNeed) {
  schema::Schema a("SA"), b("SB");
  auto est = EstimateIntegrationEffort(a, b, BandedMatrix());
  std::string memo = RenderEffortMemo(a, b, est);
  EXPECT_NE(memo.find("person-days"), std::string::npos);
  EXPECT_NE(memo.find("target coverage: 75%"), std::string::npos);
  EXPECT_NE(memo.find("SA"), std::string::npos);
  EXPECT_NE(memo.find("SB"), std::string::npos);
}

}  // namespace
}  // namespace harmony::analysis
