#include "analysis/clustering.h"

#include <gtest/gtest.h>

#include <limits>

namespace harmony::analysis {
namespace {

// Distance matrix with two obvious groups: {0,1,2} and {3,4}.
std::vector<double> TwoGroups() {
  constexpr double kNear = 0.1, kFar = 0.9;
  const size_t n = 5;
  std::vector<double> m(n * n, kFar);
  auto set = [&](size_t i, size_t j, double d) {
    m[i * n + j] = d;
    m[j * n + i] = d;
  };
  for (size_t i = 0; i < n; ++i) m[i * n + i] = 0.0;
  set(0, 1, kNear);
  set(0, 2, kNear);
  set(1, 2, kNear);
  set(3, 4, kNear);
  return m;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ClusteringTest, RecoversPlantedGroupsAtK2) {
  auto result = AgglomerativeCluster(TwoGroups(), 5, 2, kInf);
  EXPECT_EQ(result.cluster_count, 2u);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[1], result.assignment[2]);
  EXPECT_EQ(result.assignment[3], result.assignment[4]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
}

TEST(ClusteringTest, DistanceCutStopsEarly) {
  // Cut below the inter-group distance: merges within groups happen (0.1),
  // the cross-group merge (≈0.9) does not.
  auto result = AgglomerativeCluster(TwoGroups(), 5, 1, 0.5);
  EXPECT_EQ(result.cluster_count, 2u);
}

TEST(ClusteringTest, DendrogramRecordsAllMerges) {
  auto result = AgglomerativeCluster(TwoGroups(), 5, 2, kInf);
  EXPECT_EQ(result.dendrogram.size(), 4u);  // n−1 merges.
  // Merge distances are the linkage values; the last is the big one.
  EXPECT_GT(result.dendrogram.back().distance, 0.5);
  EXPECT_LT(result.dendrogram.front().distance, 0.2);
}

TEST(ClusteringTest, SingletonAndEmptyInputs) {
  auto empty = AgglomerativeCluster({}, 0, 3, kInf);
  EXPECT_TRUE(empty.assignment.empty());
  auto one = AgglomerativeCluster({0.0}, 1, 3, kInf);
  ASSERT_EQ(one.assignment.size(), 1u);
  EXPECT_EQ(one.cluster_count, 1u);
}

TEST(ClusteringTest, KOneMergesEverything) {
  auto result = AgglomerativeCluster(TwoGroups(), 5, 1, kInf);
  EXPECT_EQ(result.cluster_count, 1u);
  for (size_t v : result.assignment) EXPECT_EQ(v, result.assignment[0]);
}

TEST(ClusteringTest, LinkageVariantsAllRecoverCleanGroups) {
  for (Linkage linkage : {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    auto result = AgglomerativeCluster(TwoGroups(), 5, 2, kInf, linkage);
    EXPECT_EQ(result.assignment[0], result.assignment[1]);
    EXPECT_NE(result.assignment[0], result.assignment[3]);
  }
}

TEST(ClusterSeparationTest, GoodClusteringIsNegative) {
  auto good = AgglomerativeCluster(TwoGroups(), 5, 2, kInf);
  EXPECT_LT(ClusterSeparation(TwoGroups(), 5, good.assignment), 0.0);
  // Everything in one cluster: intra = mix, no inter → separation >= 0 − 0.
  std::vector<size_t> lump(5, 0);
  EXPECT_GT(ClusterSeparation(TwoGroups(), 5, lump),
            ClusterSeparation(TwoGroups(), 5, good.assignment));
}

TEST(ClusterPurityTest, PerfectAndMixed) {
  std::vector<size_t> reference{0, 0, 0, 1, 1};
  auto good = AgglomerativeCluster(TwoGroups(), 5, 2, kInf);
  EXPECT_DOUBLE_EQ(ClusterPurity(good.assignment, reference), 1.0);
  std::vector<size_t> lump(5, 0);
  EXPECT_DOUBLE_EQ(ClusterPurity(lump, reference), 3.0 / 5.0);
}

TEST(ProposeCoisTest, TightClustersProposed) {
  auto result = AgglomerativeCluster(TwoGroups(), 5, 2, kInf);
  auto cois = ProposeCois(TwoGroups(), 5, result.assignment, 2, 0.5);
  ASSERT_EQ(cois.size(), 2u);
  EXPECT_LE(cois[0].mean_internal_distance, cois[1].mean_internal_distance);
  EXPECT_EQ(cois[0].members.size() + cois[1].members.size(), 5u);
}

TEST(DendrogramTest, RendersAllLeavesAndMergeDistances) {
  auto result = AgglomerativeCluster(TwoGroups(), 5, 2, kInf);
  std::vector<std::string> names{"S0", "S1", "S2", "S3", "S4"};
  std::string tree = RenderDendrogram(result, names);
  for (const auto& name : names) {
    EXPECT_NE(tree.find(name), std::string::npos) << tree;
  }
  // Four merges → four distance labels; the cross-group one is large.
  EXPECT_NE(tree.find("d=0.9"), std::string::npos) << tree;
  EXPECT_NE(tree.find("d=0.1"), std::string::npos) << tree;
}

TEST(DendrogramTest, SingleLeafAndEmpty) {
  ClusteringResult empty;
  EXPECT_EQ(RenderDendrogram(empty, {}), "");
  EXPECT_EQ(RenderDendrogram(empty, {"ONLY"}), "ONLY\n");
}

TEST(ProposeCoisTest, MinSizeAndTightnessFilter) {
  auto result = AgglomerativeCluster(TwoGroups(), 5, 2, kInf);
  EXPECT_TRUE(ProposeCois(TwoGroups(), 5, result.assignment, 4, 0.5).empty());
  EXPECT_TRUE(ProposeCois(TwoGroups(), 5, result.assignment, 2, 0.01).empty());
}

}  // namespace
}  // namespace harmony::analysis
