#include "analysis/overlap.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "schema/builder.h"

namespace harmony::analysis {
namespace {

schema::Schema MakeSchema(const std::string& name, int tables, int cols) {
  schema::RelationalBuilder b(name);
  for (int t = 0; t < tables; ++t) {
    auto table = b.Table(name + StringFormat("_T%d", t));
    for (int c = 0; c < cols; ++c) {
      b.Column(table, StringFormat("C%d", c));
    }
  }
  return std::move(b).Build();
}

TEST(OverlapTest, PartitionsBySides) {
  schema::Schema a = MakeSchema("A", 2, 2);  // 6 elements.
  schema::Schema b = MakeSchema("B", 1, 3);  // 4 elements.
  std::vector<core::Correspondence> links = {
      {*a.FindByPath("A_T0.C0"), *b.FindByPath("B_T0.C0"), 0.9},
      {*a.FindByPath("A_T0.C1"), *b.FindByPath("B_T0.C1"), 0.8},
  };
  auto p = ComputeOverlap(a, b, links);
  EXPECT_EQ(p.source_matched.size(), 2u);
  EXPECT_EQ(p.source_only.size(), 4u);
  EXPECT_EQ(p.target_matched.size(), 2u);
  EXPECT_EQ(p.target_only.size(), 2u);
  EXPECT_NEAR(p.source_matched_fraction, 2.0 / 6.0, 1e-9);
  EXPECT_NEAR(p.target_matched_fraction, 2.0 / 4.0, 1e-9);
}

TEST(OverlapTest, PartitionIsExhaustiveAndDisjoint) {
  schema::Schema a = MakeSchema("A", 3, 4);
  schema::Schema b = MakeSchema("B", 2, 5);
  std::vector<core::Correspondence> links = {
      {*a.FindByPath("A_T1.C2"), *b.FindByPath("B_T0.C3"), 0.7}};
  auto p = ComputeOverlap(a, b, links);
  EXPECT_EQ(p.source_matched.size() + p.source_only.size(), a.element_count());
  EXPECT_EQ(p.target_matched.size() + p.target_only.size(), b.element_count());
}

TEST(OverlapTest, MultipleLinksToSameElementCountOnce) {
  schema::Schema a = MakeSchema("A", 1, 2);
  schema::Schema b = MakeSchema("B", 1, 2);
  std::vector<core::Correspondence> links = {
      {*a.FindByPath("A_T0.C0"), *b.FindByPath("B_T0.C0"), 0.9},
      {*a.FindByPath("A_T0.C0"), *b.FindByPath("B_T0.C1"), 0.6},
  };
  auto p = ComputeOverlap(a, b, links);
  EXPECT_EQ(p.source_matched.size(), 1u);
  EXPECT_EQ(p.target_matched.size(), 2u);
}

TEST(OverlapTest, RestrictedIdSets) {
  schema::Schema a = MakeSchema("A", 2, 2);
  schema::Schema b = MakeSchema("B", 1, 2);
  std::vector<core::Correspondence> links = {
      {*a.FindByPath("A_T0.C0"), *b.FindByPath("B_T0.C0"), 0.9}};
  // Only classify leaves.
  auto p = ComputeOverlap(a, b, links, a.LeafIds(), b.LeafIds());
  EXPECT_EQ(p.source_matched.size() + p.source_only.size(), a.LeafIds().size());
}

TEST(OverlapTest, NoLinksMeansAllDistinct) {
  schema::Schema a = MakeSchema("A", 1, 1);
  schema::Schema b = MakeSchema("B", 1, 1);
  auto p = ComputeOverlap(a, b, {});
  EXPECT_TRUE(p.source_matched.empty());
  EXPECT_TRUE(p.target_matched.empty());
  EXPECT_DOUBLE_EQ(p.source_matched_fraction, 0.0);
}

TEST(OverlapSimilarityTest, FractionsOfTotals) {
  OverlapPartition p;
  p.source_matched = {1, 2};
  p.target_matched = {3};
  EXPECT_NEAR(OverlapSimilarity(p, 4, 2), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(p, 0, 0), 0.0);
}

TEST(DecisionMemoTest, RecommendsBridgeForLowOverlap) {
  schema::Schema a = MakeSchema("SA", 3, 3);
  schema::Schema b = MakeSchema("SB", 3, 3);
  std::vector<core::Correspondence> links = {
      {*a.FindByPath("SA_T0.C0"), *b.FindByPath("SB_T0.C0"), 0.9}};
  auto p = ComputeOverlap(a, b, links);
  std::string memo = RenderDecisionMemo(a, b, p);
  EXPECT_NE(memo.find("ETL bridge"), std::string::npos) << memo;
  EXPECT_NE(memo.find("SB"), std::string::npos);
}

TEST(DecisionMemoTest, RecommendsSubsumptionForHighOverlap) {
  schema::Schema a = MakeSchema("SA", 1, 3);
  schema::Schema b = MakeSchema("SB", 1, 3);
  std::vector<core::Correspondence> links;
  for (int c = 0; c < 3; ++c) {
    links.push_back({*a.FindByPath("SA_T0.C" + std::to_string(c)),
                     *b.FindByPath("SB_T0.C" + std::to_string(c)), 0.9});
  }
  links.push_back({*a.FindByPath("SA_T0"), *b.FindByPath("SB_T0"), 0.9});
  auto p = ComputeOverlap(a, b, links);
  std::string memo = RenderDecisionMemo(a, b, p);
  EXPECT_NE(memo.find("subsuming"), std::string::npos) << memo;
}

}  // namespace
}  // namespace harmony::analysis
