#include "sql/ddl_parser.h"

#include <gtest/gtest.h>

namespace harmony::sql {
namespace {

using schema::DataType;
using schema::ElementKind;

constexpr const char* kSampleDdl = R"SQL(
-- Schema A, version 3.
CREATE TABLE ALL_EVENT_VITALS (
  EVENT_ID NUMBER(10) NOT NULL PRIMARY KEY,  -- Unique event identifier
  DATE_BEGIN_156 TIMESTAMP,                  -- When the event began
  SEVERITY_CD VARCHAR2(8),
  CASUALTY_CNT INTEGER DEFAULT 0,
  NARRATIVE CLOB
);

CREATE TABLE PERSON (
  PERSON_ID NUMBER(10),
  LAST_NAME VARCHAR2(64) NOT NULL,
  BIRTH_DT DATE,
  HEIGHT_QTY NUMBER(5,2),
  EVENT_ID NUMBER(10) REFERENCES ALL_EVENT_VITALS (EVENT_ID),
  PRIMARY KEY (PERSON_ID),
  CONSTRAINT fk_evt FOREIGN KEY (EVENT_ID) REFERENCES ALL_EVENT_VITALS (EVENT_ID)
);

COMMENT ON TABLE PERSON IS 'A person known to the system';
COMMENT ON COLUMN PERSON.BIRTH_DT IS 'The date on which the person was born';

CREATE OR REPLACE VIEW ACTIVE_EVENTS (EVENT_ID, SEVERITY_CD) AS
  SELECT EVENT_ID, SEVERITY_CD FROM ALL_EVENT_VITALS WHERE 1 = 1;

CREATE INDEX idx_person_name ON PERSON (LAST_NAME);
GRANT SELECT ON PERSON TO analysts;
)SQL";

TEST(DdlParserTest, ImportsTablesAndColumns) {
  auto s = ImportDdl(kSampleDdl, "SA");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->name(), "SA");
  EXPECT_EQ(s->flavor(), schema::SchemaFlavor::kRelational);
  ASSERT_TRUE(s->FindByPath("ALL_EVENT_VITALS").ok());
  EXPECT_EQ(s->element(*s->FindByPath("ALL_EVENT_VITALS")).kind,
            ElementKind::kTable);
  EXPECT_EQ(s->element(*s->FindByPath("ALL_EVENT_VITALS")).children.size(), 5u);
}

TEST(DdlParserTest, TypesMappedWithPrecision) {
  auto s = ImportDdl(kSampleDdl);
  ASSERT_TRUE(s.ok());
  // NUMBER(10) → integer, NUMBER(5,2) → decimal.
  EXPECT_EQ(s->element(*s->FindByPath("PERSON.PERSON_ID")).type,
            DataType::kInteger);
  EXPECT_EQ(s->element(*s->FindByPath("PERSON.HEIGHT_QTY")).type,
            DataType::kDecimal);
  EXPECT_EQ(s->element(*s->FindByPath("PERSON.BIRTH_DT")).type, DataType::kDate);
  EXPECT_EQ(s->element(*s->FindByPath("ALL_EVENT_VITALS.DATE_BEGIN_156")).type,
            DataType::kDateTime);
  EXPECT_EQ(s->element(*s->FindByPath("ALL_EVENT_VITALS.NARRATIVE")).type,
            DataType::kString);
  EXPECT_EQ(s->element(*s->FindByPath("PERSON.LAST_NAME")).declared_type,
            "VARCHAR2(64)");
}

TEST(DdlParserTest, InlineConstraintsCaptured) {
  auto s = ImportDdl(kSampleDdl);
  ASSERT_TRUE(s.ok());
  const auto& event_id = s->element(*s->FindByPath("ALL_EVENT_VITALS.EVENT_ID"));
  EXPECT_EQ(event_id.annotations.at("primary_key"), "true");
  EXPECT_FALSE(event_id.nullable);
  const auto& last_name = s->element(*s->FindByPath("PERSON.LAST_NAME"));
  EXPECT_FALSE(last_name.nullable);
}

TEST(DdlParserTest, TableLevelPrimaryAndForeignKeys) {
  auto s = ImportDdl(kSampleDdl);
  ASSERT_TRUE(s.ok());
  const auto& pk = s->element(*s->FindByPath("PERSON.PERSON_ID"));
  EXPECT_EQ(pk.annotations.at("primary_key"), "true");
  const auto& fk = s->element(*s->FindByPath("PERSON.EVENT_ID"));
  EXPECT_EQ(fk.annotations.at("foreign_key"), "ALL_EVENT_VITALS.EVENT_ID");
}

TEST(DdlParserTest, TrailingCommentsBecomeDocumentation) {
  auto s = ImportDdl(kSampleDdl);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->element(*s->FindByPath("ALL_EVENT_VITALS.EVENT_ID")).documentation,
            "Unique event identifier");
  EXPECT_EQ(
      s->element(*s->FindByPath("ALL_EVENT_VITALS.DATE_BEGIN_156")).documentation,
      "When the event began");
}

TEST(DdlParserTest, TrailingCommentOnLastColumnBeforeCloseParen) {
  auto s = ImportDdl(
      "CREATE TABLE T (\n"
      "  A INT,    -- first\n"
      "  B DATE    -- last, no comma after\n"
      ");");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->element(*s->FindByPath("T.A")).documentation, "first");
  EXPECT_EQ(s->element(*s->FindByPath("T.B")).documentation,
            "last, no comma after");
}

TEST(DdlParserTest, CommentOnStatements) {
  auto s = ImportDdl(kSampleDdl);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->element(*s->FindByPath("PERSON")).documentation,
            "A person known to the system");
  EXPECT_NE(s->element(*s->FindByPath("PERSON.BIRTH_DT"))
                .documentation.find("date on which the person was born"),
            std::string::npos);
}

TEST(DdlParserTest, ViewsWithColumnLists) {
  auto s = ImportDdl(kSampleDdl);
  ASSERT_TRUE(s.ok());
  auto view = s->FindByPath("ACTIVE_EVENTS");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(s->element(*view).kind, ElementKind::kView);
  EXPECT_EQ(s->element(*view).children.size(), 2u);
}

TEST(DdlParserTest, UnknownStatementsSkipped) {
  auto s = ImportDdl(kSampleDdl);
  ASSERT_TRUE(s.ok());
  // INDEX and GRANT contribute no elements: 2 tables + 1 view at depth 1.
  EXPECT_EQ(s->IdsAtDepth(1).size(), 3u);
}

TEST(DdlParserTest, SchemaQualifiedNamesKeepLastComponent) {
  auto s = ImportDdl("CREATE TABLE ops.mil.TRACK (ID INT);");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->FindByPath("TRACK.ID").ok());
}

TEST(DdlParserTest, IfNotExists) {
  auto s = ImportDdl("CREATE TABLE IF NOT EXISTS T (C INT);");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->FindByPath("T.C").ok());
}

TEST(DdlParserTest, MalformedColumnIsParseError) {
  EXPECT_TRUE(ImportDdl("CREATE TABLE T (123 INT);").status().IsParseError());
}

TEST(DdlParserTest, MissingParenIsParseError) {
  EXPECT_TRUE(ImportDdl("CREATE TABLE T C INT;").status().IsParseError());
}

TEST(DdlParserTest, ErrorsNameTheLine) {
  Status s = ImportDdl("CREATE TABLE T (\n  C1 INT,\n  123 BAD\n);").status();
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.message();
}

TEST(DdlParserTest, EmptyInputYieldsEmptySchema) {
  auto s = ImportDdl("");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->element_count(), 0u);
}

TEST(SqlTypeMappingTest, CoversFamilies) {
  EXPECT_EQ(SqlTypeToDataType("VARCHAR2", 1), DataType::kString);
  EXPECT_EQ(SqlTypeToDataType("varchar", 1), DataType::kString);
  EXPECT_EQ(SqlTypeToDataType("NUMBER", 1), DataType::kInteger);
  EXPECT_EQ(SqlTypeToDataType("NUMBER", 2), DataType::kDecimal);
  EXPECT_EQ(SqlTypeToDataType("BIGINT", 0), DataType::kInteger);
  EXPECT_EQ(SqlTypeToDataType("REAL", 0), DataType::kFloat);
  EXPECT_EQ(SqlTypeToDataType("BOOLEAN", 0), DataType::kBoolean);
  EXPECT_EQ(SqlTypeToDataType("DATE", 0), DataType::kDate);
  EXPECT_EQ(SqlTypeToDataType("TIMESTAMP", 0), DataType::kDateTime);
  EXPECT_EQ(SqlTypeToDataType("BLOB", 0), DataType::kBinary);
  EXPECT_EQ(SqlTypeToDataType("GEOMETRY", 0), DataType::kUnknown);
}

}  // namespace
}  // namespace harmony::sql
