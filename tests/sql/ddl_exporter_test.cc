#include "sql/ddl_exporter.h"

#include <gtest/gtest.h>

#include "schema/builder.h"
#include "sql/ddl_parser.h"
#include "synth/generator.h"

namespace harmony::sql {
namespace {

using schema::DataType;

schema::Schema MakeSchema() {
  schema::RelationalBuilder b("SA");
  auto t = b.Table("PERSON", "People we track");
  auto id = b.Column(t, "PERSON_ID", DataType::kInteger, "Primary key");
  b.SetPrimaryKey(id);
  b.Column(t, "LAST_NAME", DataType::kString, "The person's surname");
  b.Column(t, "BIRTH_DT", DataType::kDate);
  return std::move(b).Build();
}

TEST(DdlExporterTest, EmitsTableWithTypesAndConstraints) {
  std::string ddl = ExportDdl(MakeSchema());
  EXPECT_NE(ddl.find("CREATE TABLE PERSON ("), std::string::npos);
  EXPECT_NE(ddl.find("PERSON_ID INTEGER NOT NULL"), std::string::npos);
  EXPECT_NE(ddl.find("LAST_NAME VARCHAR(255)"), std::string::npos);
  EXPECT_NE(ddl.find("BIRTH_DT DATE"), std::string::npos);
  EXPECT_NE(ddl.find("PRIMARY KEY (PERSON_ID)"), std::string::npos);
}

TEST(DdlExporterTest, EmitsComments) {
  std::string ddl = ExportDdl(MakeSchema());
  EXPECT_NE(ddl.find("COMMENT ON TABLE PERSON IS 'People we track';"),
            std::string::npos);
  EXPECT_NE(
      ddl.find("COMMENT ON COLUMN PERSON.LAST_NAME IS 'The person''s surname';"),
      std::string::npos);
}

TEST(DdlExporterTest, CommentsCanBeDisabled) {
  DdlExportOptions opts;
  opts.emit_comments = false;
  std::string ddl = ExportDdl(MakeSchema(), opts);
  EXPECT_EQ(ddl.find("COMMENT ON"), std::string::npos);
}

TEST(DdlExporterTest, NestedGroupsFlattened) {
  schema::Schema s("S");
  auto t = s.AddElement(schema::Schema::kRootId, "PERSON",
                        schema::ElementKind::kTable);
  auto birth = s.AddElement(t, "BIRTH", schema::ElementKind::kGroup);
  s.AddElement(birth, "DATE", schema::ElementKind::kColumn, DataType::kDate);
  std::string ddl = ExportDdl(s);
  EXPECT_NE(ddl.find("BIRTH_DATE DATE"), std::string::npos);
}

TEST(DdlExporterTest, RoundTripThroughImporter) {
  schema::Schema original = MakeSchema();
  auto reimported = ImportDdl(ExportDdl(original), "SA");
  ASSERT_TRUE(reimported.ok()) << reimported.status();
  EXPECT_EQ(reimported->element_count(), original.element_count());
  for (schema::ElementId id : original.AllElementIds()) {
    std::string path = original.Path(id);
    auto found = reimported->FindByPath(path);
    ASSERT_TRUE(found.ok()) << path;
    EXPECT_EQ(reimported->element(*found).type, original.element(id).type) << path;
    EXPECT_EQ(reimported->element(*found).nullable, original.element(id).nullable)
        << path;
    EXPECT_EQ(reimported->element(*found).documentation,
              original.element(id).documentation)
        << path;
  }
}

TEST(DdlExporterTest, GeneratedSchemaRoundTrips) {
  synth::SchemaSpec spec;
  spec.concepts = 12;
  spec.style.doc_probability = 1.0;
  schema::Schema original = synth::GenerateSchema(spec);
  auto reimported = ImportDdl(ExportDdl(original), original.name());
  ASSERT_TRUE(reimported.ok()) << reimported.status();
  EXPECT_EQ(reimported->element_count(), original.element_count());
  EXPECT_EQ(reimported->IdsAtDepth(1).size(), original.IdsAtDepth(1).size());
}

TEST(DdlExporterTest, EmptySchemaYieldsEmptyScript) {
  schema::Schema empty("E");
  EXPECT_EQ(ExportDdl(empty), "");
}

}  // namespace
}  // namespace harmony::sql
