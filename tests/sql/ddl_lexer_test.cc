#include "sql/ddl_lexer.h"

#include <gtest/gtest.h>

namespace harmony::sql {
namespace {

TEST(DdlLexerTest, IdentifiersNumbersSymbols) {
  auto tokens = LexDdl("CREATE TABLE t1 (c NUMBER(10,2));");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 12u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("CREATE"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("table"));  // Case-insensitive.
  EXPECT_EQ((*tokens)[2].text, "t1");
  EXPECT_TRUE((*tokens)[3].IsSymbol('('));
  EXPECT_EQ((*tokens)[7].type, TokenType::kNumber);
  EXPECT_EQ((*tokens)[7].text, "10");
  EXPECT_EQ((*tokens).back().type, TokenType::kEnd);
}

TEST(DdlLexerTest, LineCommentsBecomeTokens) {
  auto tokens = LexDdl("a -- the remark text\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // a, comment, b, end.
  EXPECT_EQ((*tokens)[1].type, TokenType::kComment);
  EXPECT_EQ((*tokens)[1].text, "the remark text");
}

TEST(DdlLexerTest, BlockCommentsDropped) {
  auto tokens = LexDdl("a /* gone\nacross lines */ b");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[1].line, 2);  // Line counting continues inside blocks.
}

TEST(DdlLexerTest, StringLiteralsWithEscapedQuotes) {
  auto tokens = LexDdl("'it''s quoted'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's quoted");
}

TEST(DdlLexerTest, QuotedIdentifiers) {
  auto tokens = LexDdl("\"My Table\" `other` [bracketed]");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "My Table");
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "other");
  EXPECT_EQ((*tokens)[2].text, "bracketed");
}

TEST(DdlLexerTest, UnterminatedStringIsParseError) {
  EXPECT_TRUE(LexDdl("'open").status().IsParseError());
}

TEST(DdlLexerTest, UnterminatedBlockCommentIsParseError) {
  EXPECT_TRUE(LexDdl("/* open").status().IsParseError());
}

TEST(DdlLexerTest, LineNumbersTracked) {
  auto tokens = LexDdl("a\nb\n\nc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 4);
}

TEST(DdlLexerTest, DollarAndHashInIdentifiers) {
  auto tokens = LexDdl("col$x col#y");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "col$x");
  EXPECT_EQ((*tokens)[1].text, "col#y");
}

TEST(DdlLexerTest, EmptyInputYieldsOnlyEnd) {
  auto tokens = LexDdl("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kEnd);
}

}  // namespace
}  // namespace harmony::sql
