#include "baseline/baseline_matcher.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::baseline {
namespace {

using schema::DataType;

schema::Schema MakeSa() {
  schema::RelationalBuilder b("SA");
  auto person = b.Table("PERSON");
  b.Column(person, "LAST_NAME", DataType::kString);
  b.Column(person, "BIRTH_DATE", DataType::kDate);
  auto veh = b.Table("VEHICLE");
  b.Column(veh, "FUEL_CODE", DataType::kString);
  return std::move(b).Build();
}

schema::Schema MakeSb() {
  schema::XmlBuilder b("SB");
  auto person = b.ComplexType("Person");
  b.Element(person, "LastName", DataType::kString);
  b.Element(person, "BirthDate", DataType::kDate);
  auto veh = b.ComplexType("Vehicle");
  b.Element(veh, "FuelCode", DataType::kString);
  return std::move(b).Build();
}

TEST(NameEqualityTest, NormalizedExactMatchOnly) {
  auto sa = MakeSa();
  auto sb = MakeSb();
  NameEqualityMatcher m;
  auto matrix = m.Compute(sa, sb);
  EXPECT_DOUBLE_EQ(
      matrix.Get(*sa.FindByPath("PERSON.LAST_NAME"), *sb.FindByPath("Person.LastName")),
      1.0);
  EXPECT_DOUBLE_EQ(
      matrix.Get(*sa.FindByPath("PERSON.LAST_NAME"), *sb.FindByPath("Person.BirthDate")),
      0.0);
  EXPECT_DOUBLE_EQ(matrix.Get(*sa.FindByPath("PERSON"), *sb.FindByPath("Person")), 1.0);
}

TEST(ComaStyleTest, GradedNameSimilarity) {
  auto sa = MakeSa();
  auto sb = MakeSb();
  ComaStyleMatcher m;
  auto matrix = m.Compute(sa, sb);
  double exact = matrix.Get(*sa.FindByPath("PERSON.LAST_NAME"),
                            *sb.FindByPath("Person.LastName"));
  double near = matrix.Get(*sa.FindByPath("PERSON.BIRTH_DATE"),
                           *sb.FindByPath("Person.LastName"));
  double far = matrix.Get(*sa.FindByPath("VEHICLE.FUEL_CODE"),
                          *sb.FindByPath("Person.LastName"));
  EXPECT_DOUBLE_EQ(exact, 1.0);
  EXPECT_GT(exact, near);
  EXPECT_GT(near, far);
}

TEST(CupidStyleTest, StructuralComponentSeparatesContainers) {
  auto sa = MakeSa();
  auto sb = MakeSb();
  CupidStyleMatcher m;
  auto matrix = m.Compute(sa, sb);
  double person_pair =
      matrix.Get(*sa.FindByPath("PERSON"), *sb.FindByPath("Person"));
  double cross_pair =
      matrix.Get(*sa.FindByPath("PERSON"), *sb.FindByPath("Vehicle"));
  EXPECT_GT(person_pair, cross_pair);
}

TEST(CupidStyleTest, LeafVsContainerScoresLowStructurally) {
  auto sa = MakeSa();
  auto sb = MakeSb();
  CupidStyleMatcher m(1.0);  // Structure only.
  auto matrix = m.Compute(sa, sb);
  EXPECT_LT(matrix.Get(*sa.FindByPath("PERSON"), *sb.FindByPath("Person.LastName")),
            0.2);
}

TEST(BaselinePropertyTest, AllScoresInUnitInterval) {
  auto sa = MakeSa();
  auto sb = MakeSb();
  for (const auto& matcher : CreateAllBaselines()) {
    auto matrix = matcher->Compute(sa, sb);
    for (size_t r = 0; r < matrix.rows(); ++r) {
      for (size_t c = 0; c < matrix.cols(); ++c) {
        EXPECT_GE(matrix.GetByIndex(r, c), 0.0) << matcher->name();
        EXPECT_LE(matrix.GetByIndex(r, c), 1.0) << matcher->name();
      }
    }
  }
}

TEST(BaselineFactoryTest, ProducesThreeDistinctMatchers) {
  auto all = CreateAllBaselines();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_STREQ(all[0]->name(), "name_equality");
  EXPECT_STREQ(all[1]->name(), "coma_style");
  EXPECT_STREQ(all[2]->name(), "cupid_style");
}

}  // namespace
}  // namespace harmony::baseline
