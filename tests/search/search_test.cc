#include "search/schema_search.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::search {
namespace {

schema::Schema MakeMedical(const std::string& name) {
  schema::RelationalBuilder b(name);
  auto t = b.Table("PATIENT_RECORD", "Patient health history");
  b.Column(t, "BLOOD_TEST_RESULT", schema::DataType::kString,
           "Result of a blood test performed on the patient");
  b.Column(t, "DIAGNOSIS_CODE", schema::DataType::kString, "Coded diagnosis");
  return std::move(b).Build();
}

schema::Schema MakeLogistics(const std::string& name) {
  schema::RelationalBuilder b(name);
  auto t = b.Table("SUPPLY_ITEM", "Provisions managed by logistics");
  b.Column(t, "QUANTITY_ON_HAND", schema::DataType::kInteger, "Stock level");
  b.Column(t, "REORDER_POINT", schema::DataType::kInteger, "Reorder threshold");
  return std::move(b).Build();
}

class SearchTest : public ::testing::Test {
 protected:
  SearchTest()
      : med1_(MakeMedical("MED1")),
        med2_(MakeMedical("MED2")),
        log1_(MakeLogistics("LOG1")) {
    index_.Add(med1_);
    index_.Add(med2_);
    index_.Add(log1_);
    index_.Finalize();
  }

  schema::Schema med1_, med2_, log1_;
  SchemaSearchIndex index_;
};

TEST_F(SearchTest, SchemaAsQueryRanksRelativesFirst) {
  schema::Schema query = MakeMedical("QUERY");
  auto hits = index_.Search(query, 3);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_TRUE(hits[0].schema_index == 0 || hits[0].schema_index == 1);
  EXPECT_TRUE(hits[1].schema_index == 0 || hits[1].schema_index == 1);
  EXPECT_GT(hits[0].score, 0.8);
}

TEST_F(SearchTest, KeywordQueryFindsTheCio2Question) {
  // "which data sources contain the concept of blood test?" (§2).
  auto hits = index_.SearchKeywords("blood test", 3);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_TRUE(hits[0].schema_index == 0 || hits[0].schema_index == 1);
  for (const auto& h : hits) {
    if (h.schema_index == 2) {
      EXPECT_LT(h.score, hits[0].score);
    }
  }
}

TEST_F(SearchTest, KRespected) {
  schema::Schema query = MakeMedical("QUERY");
  EXPECT_LE(index_.Search(query, 1).size(), 1u);
}

TEST_F(SearchTest, FlavorFilterApplies) {
  schema::Schema query = MakeMedical("QUERY");
  SearchFilter filter;
  filter.flavor = schema::SchemaFlavor::kXml;
  EXPECT_TRUE(index_.Search(query, 5, filter).empty());
  filter.flavor = schema::SchemaFlavor::kRelational;
  EXPECT_FALSE(index_.Search(query, 5, filter).empty());
}

TEST_F(SearchTest, SizeFilterApplies) {
  schema::Schema query = MakeMedical("QUERY");
  SearchFilter filter;
  filter.min_elements = 100;
  EXPECT_TRUE(index_.Search(query, 5, filter).empty());
}

TEST_F(SearchTest, FragmentSearchPinpointsElements) {
  auto hits = index_.SearchFragments("blood test result", 5);
  ASSERT_FALSE(hits.empty());
  const auto& top = hits[0];
  EXPECT_TRUE(top.schema_index == 0 || top.schema_index == 1);
  const schema::Schema& s = index_.schema(top.schema_index);
  EXPECT_EQ(s.element(top.element).name, "BLOOD_TEST_RESULT");
}

TEST_F(SearchTest, FragmentSearchByQueryElement) {
  schema::Schema query = MakeMedical("QUERY");
  auto q_el = *query.FindByPath("PATIENT_RECORD.BLOOD_TEST_RESULT");
  auto hits = index_.SearchFragments(query, q_el, 3);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(index_.schema(hits[0].schema_index).element(hits[0].element).name,
            "BLOOD_TEST_RESULT");
}

TEST_F(SearchTest, UnknownKeywordsYieldNothing) {
  EXPECT_TRUE(index_.SearchKeywords("zzzz qqqq", 5).empty());
}

TEST_F(SearchTest, ScoresSortedDescending) {
  auto hits = index_.SearchKeywords("patient blood diagnosis supply", 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST(SearchIndexDeathTest, SecondFinalizeDies) {
  // Finalize is documented "must be called once": a silent re-finalize used
  // to rebuild the corpus statistics in place. Now it trips the same guard
  // family as Add-after-Finalize.
  SchemaSearchIndex index;
  schema::Schema s = MakeMedical("M");
  index.Add(s);
  index.Finalize();
  EXPECT_DEATH(index.Finalize(), "Finalize called twice");
}

TEST(SearchIndexTest, EmptyIndexSearches) {
  SchemaSearchIndex index;
  index.Finalize();
  schema::Schema query = MakeMedical("Q");
  EXPECT_TRUE(index.Search(query, 5).empty());
  EXPECT_TRUE(index.SearchKeywords("anything", 5).empty());
}

}  // namespace
}  // namespace harmony::search
