#include "schema/builder.h"

#include <gtest/gtest.h>

namespace harmony::schema {
namespace {

TEST(RelationalBuilderTest, BuildsTablesAndColumns) {
  RelationalBuilder b("HR");
  ElementId person = b.Table("PERSON", "People we employ");
  ElementId id = b.Column(person, "PERSON_ID", DataType::kInteger, "Primary key");
  b.SetPrimaryKey(id);
  b.Column(person, "LAST_NAME", DataType::kString);
  ElementId view = b.View("ACTIVE_PERSON", "Currently active people");
  b.Column(view, "PERSON_ID", DataType::kInteger);
  Schema s = std::move(b).Build();

  EXPECT_EQ(s.flavor(), SchemaFlavor::kRelational);
  EXPECT_EQ(s.element_count(), 5u);
  const SchemaElement& p = s.element(*s.FindByPath("PERSON"));
  EXPECT_EQ(p.kind, ElementKind::kTable);
  EXPECT_EQ(p.documentation, "People we employ");
  const SchemaElement& pk = s.element(*s.FindByPath("PERSON.PERSON_ID"));
  EXPECT_EQ(pk.annotations.at("primary_key"), "true");
  EXPECT_FALSE(pk.nullable);
  EXPECT_EQ(s.element(*s.FindByPath("ACTIVE_PERSON")).kind, ElementKind::kView);
}

TEST(XmlBuilderTest, BuildsTypesElementsAttributes) {
  XmlBuilder b("mil");
  ElementId person = b.ComplexType("PersonType", "A person");
  ElementId name = b.Element(person, "Name", DataType::kString, "Full name");
  b.Attribute(person, "id", DataType::kInteger, "Unique id");
  ElementId nested = b.Element(person, "Birth");
  b.Element(nested, "Date", DataType::kDate);
  Schema s = std::move(b).Build();

  EXPECT_EQ(s.flavor(), SchemaFlavor::kXml);
  EXPECT_EQ(s.element_count(), 5u);
  EXPECT_EQ(s.element(person).kind, ElementKind::kComplexType);
  EXPECT_EQ(s.element(name).kind, ElementKind::kElement);
  EXPECT_EQ(s.element(*s.FindByPath("PersonType.id")).kind, ElementKind::kAttribute);
  EXPECT_EQ(s.element(*s.FindByPath("PersonType.Birth.Date")).type, DataType::kDate);
  EXPECT_TRUE(s.Validate().ok());
}

}  // namespace
}  // namespace harmony::schema
