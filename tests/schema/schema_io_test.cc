#include "schema/schema_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "schema/builder.h"

namespace harmony::schema {
namespace {

Schema MakeRich() {
  RelationalBuilder b("RICH");
  ElementId t = b.Table("EVENT", "Operationally significant occurrences");
  ElementId c = b.Column(t, "BEGIN_DATE", DataType::kDateTime,
                         "When the event, uh, \"began\"");
  b.SetPrimaryKey(c);
  Schema s = std::move(b).Build();
  s.set_documentation("The rich test schema, with\nnewlines and, commas");
  SchemaElement& e = s.mutable_element(c);
  e.declared_type = "TIMESTAMP(6)";
  e.annotations["foreign_key"] = "OTHER.COL;with=escapes\\here";
  e.annotations["note"] = "multi word value";
  return s;
}

TEST(SchemaIoTest, RoundTripPreservesEverything) {
  Schema original = MakeRich();
  auto restored = DeserializeSchema(SerializeSchema(original));
  ASSERT_TRUE(restored.ok()) << restored.status();
  const Schema& r = *restored;

  EXPECT_EQ(r.name(), original.name());
  EXPECT_EQ(r.flavor(), original.flavor());
  EXPECT_EQ(r.documentation(), original.documentation());
  ASSERT_EQ(r.node_count(), original.node_count());
  for (ElementId id : original.AllElementIds()) {
    const SchemaElement& a = original.element(id);
    const SchemaElement& b = r.element(id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.declared_type, b.declared_type);
    EXPECT_EQ(a.nullable, b.nullable);
    EXPECT_EQ(a.documentation, b.documentation);
    EXPECT_EQ(a.annotations, b.annotations);
  }
  EXPECT_TRUE(r.Validate().ok());
}

TEST(SchemaIoTest, FileRoundTrip) {
  Schema original = MakeRich();
  std::string path = ::testing::TempDir() + "/schema_io_test.hsc";
  ASSERT_TRUE(WriteSchemaFile(original, path).ok());
  auto restored = ReadSchemaFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->name(), "RICH");
  EXPECT_EQ(restored->element_count(), original.element_count());
  std::remove(path.c_str());
}

TEST(SchemaIoTest, MissingHeaderIsParseError) {
  EXPECT_TRUE(DeserializeSchema("not,a,schema\n").status().IsParseError());
  EXPECT_TRUE(DeserializeSchema("").status().IsParseError());
}

TEST(SchemaIoTest, WrongFieldCountIsParseError) {
  std::string text = "HSC1,S,generic,\n1,0,table\n";
  EXPECT_TRUE(DeserializeSchema(text).status().IsParseError());
}

TEST(SchemaIoTest, ForwardParentReferenceIsParseError) {
  // Element 1 claims parent 5, which is not yet defined.
  std::string text =
      "HSC1,S,generic,\n"
      "1,5,table,composite,T,,1,,\n";
  EXPECT_TRUE(DeserializeSchema(text).status().IsParseError());
}

TEST(SchemaIoTest, NonDenseIdsAreParseError) {
  std::string text =
      "HSC1,S,generic,\n"
      "2,0,table,composite,T,,1,,\n";
  EXPECT_TRUE(DeserializeSchema(text).status().IsParseError());
}

TEST(SchemaIoTest, BadIdIsParseError) {
  std::string text =
      "HSC1,S,generic,\n"
      "abc,0,table,composite,T,,1,,\n";
  EXPECT_TRUE(DeserializeSchema(text).status().IsParseError());
}

TEST(SchemaIoTest, ReadMissingFileIsIOError) {
  EXPECT_TRUE(ReadSchemaFile("/nonexistent/nowhere.hsc").status().IsIOError());
}

TEST(SchemaIoTest, EmptySchemaRoundTrips) {
  Schema s("BARE", SchemaFlavor::kXml);
  auto restored = DeserializeSchema(SerializeSchema(s));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->element_count(), 0u);
  EXPECT_EQ(restored->flavor(), SchemaFlavor::kXml);
}

}  // namespace
}  // namespace harmony::schema
