#include "schema/schema.h"

#include <gtest/gtest.h>

namespace harmony::schema {
namespace {

Schema MakeSample() {
  // root ── PERSON ── {NAME, BIRTH ── {DATE, PLACE}}
  //      └─ VEHICLE ── {VIN}
  Schema s("SAMPLE", SchemaFlavor::kRelational);
  ElementId person = s.AddElement(Schema::kRootId, "PERSON", ElementKind::kTable);
  s.AddElement(person, "NAME", ElementKind::kColumn, DataType::kString);
  ElementId birth = s.AddElement(person, "BIRTH", ElementKind::kGroup);
  s.AddElement(birth, "DATE", ElementKind::kColumn, DataType::kDate);
  s.AddElement(birth, "PLACE", ElementKind::kColumn, DataType::kString);
  ElementId vehicle = s.AddElement(Schema::kRootId, "VEHICLE", ElementKind::kTable);
  s.AddElement(vehicle, "VIN", ElementKind::kColumn, DataType::kString);
  return s;
}

TEST(SchemaTest, EmptySchemaHasRootOnly) {
  Schema s("EMPTY");
  EXPECT_EQ(s.element_count(), 0u);
  EXPECT_EQ(s.node_count(), 1u);
  EXPECT_EQ(s.name(), "EMPTY");
  EXPECT_EQ(s.root().kind, ElementKind::kRoot);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SchemaTest, ElementCountExcludesRoot) {
  Schema s = MakeSample();
  EXPECT_EQ(s.element_count(), 7u);
  EXPECT_EQ(s.node_count(), 8u);
}

TEST(SchemaTest, DepthsAssigned) {
  Schema s = MakeSample();
  EXPECT_EQ(s.element(1).depth, 1u);  // PERSON
  EXPECT_EQ(s.element(2).depth, 2u);  // NAME
  EXPECT_EQ(s.element(4).depth, 3u);  // BIRTH.DATE
  EXPECT_EQ(s.MaxDepth(), 3u);
}

TEST(SchemaTest, PreOrderVisitsAllInOrder) {
  Schema s = MakeSample();
  auto order = s.PreOrder();
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order[0], Schema::kRootId);
  // Pre-order: root, PERSON, NAME, BIRTH, DATE, PLACE, VEHICLE, VIN.
  EXPECT_EQ(s.element(order[1]).name, "PERSON");
  EXPECT_EQ(s.element(order[3]).name, "BIRTH");
  EXPECT_EQ(s.element(order[6]).name, "VEHICLE");
}

TEST(SchemaTest, AllElementIdsExcludesRoot) {
  Schema s = MakeSample();
  auto ids = s.AllElementIds();
  EXPECT_EQ(ids.size(), 7u);
  for (ElementId id : ids) EXPECT_NE(id, Schema::kRootId);
}

TEST(SchemaTest, SubtreeIds) {
  Schema s = MakeSample();
  ElementId person = *s.FindByPath("PERSON");
  auto sub = s.SubtreeIds(person);
  EXPECT_EQ(sub.size(), 5u);  // PERSON, NAME, BIRTH, DATE, PLACE.
  EXPECT_EQ(sub[0], person);
  EXPECT_EQ(s.DescendantCount(person), 4u);
}

TEST(SchemaTest, LeafIds) {
  Schema s = MakeSample();
  auto leaves = s.LeafIds();
  EXPECT_EQ(leaves.size(), 4u);  // NAME, DATE, PLACE, VIN.
}

TEST(SchemaTest, PathAndFindByPathRoundTrip) {
  Schema s = MakeSample();
  for (ElementId id : s.AllElementIds()) {
    auto found = s.FindByPath(s.Path(id));
    ASSERT_TRUE(found.ok()) << s.Path(id);
    EXPECT_EQ(*found, id);
  }
  EXPECT_EQ(s.Path(Schema::kRootId), "");
  EXPECT_EQ(*s.FindByPath(""), Schema::kRootId);
}

TEST(SchemaTest, NestedPathUsesDots) {
  Schema s = MakeSample();
  ElementId date = *s.FindByPath("PERSON.BIRTH.DATE");
  EXPECT_EQ(s.element(date).name, "DATE");
  EXPECT_EQ(s.Path(date), "PERSON.BIRTH.DATE");
}

TEST(SchemaTest, FindByPathReportsNotFound) {
  Schema s = MakeSample();
  EXPECT_TRUE(s.FindByPath("PERSON.MISSING").status().IsNotFound());
  EXPECT_TRUE(s.FindByPath("NOPE").status().IsNotFound());
}

TEST(SchemaTest, FindByNameIsCaseInsensitive) {
  Schema s = MakeSample();
  auto hits = s.FindByName("person");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(s.element(hits[0]).name, "PERSON");
  EXPECT_TRUE(s.FindByName("nothing").empty());
}

TEST(SchemaTest, IdsAtDepth) {
  Schema s = MakeSample();
  EXPECT_EQ(s.IdsAtDepth(1).size(), 2u);  // PERSON, VEHICLE.
  EXPECT_EQ(s.IdsAtDepth(2).size(), 3u);  // NAME, BIRTH, VIN.
  EXPECT_EQ(s.IdsAtDepth(3).size(), 2u);  // DATE, PLACE.
  EXPECT_TRUE(s.IdsAtDepth(9).empty());
}

TEST(SchemaTest, IsAncestorOrSelf) {
  Schema s = MakeSample();
  ElementId person = *s.FindByPath("PERSON");
  ElementId date = *s.FindByPath("PERSON.BIRTH.DATE");
  ElementId vin = *s.FindByPath("VEHICLE.VIN");
  EXPECT_TRUE(s.IsAncestorOrSelf(person, date));
  EXPECT_TRUE(s.IsAncestorOrSelf(date, date));
  EXPECT_TRUE(s.IsAncestorOrSelf(Schema::kRootId, vin));
  EXPECT_FALSE(s.IsAncestorOrSelf(person, vin));
  EXPECT_FALSE(s.IsAncestorOrSelf(date, person));
}

TEST(SchemaTest, VisitSeesEveryNode) {
  Schema s = MakeSample();
  size_t count = 0;
  s.Visit([&](const SchemaElement&) { ++count; });
  EXPECT_EQ(count, s.node_count());
}

TEST(SchemaTest, MutableElementEditsStick) {
  Schema s = MakeSample();
  ElementId vin = *s.FindByPath("VEHICLE.VIN");
  s.mutable_element(vin).documentation = "Vehicle identification number.";
  s.mutable_element(vin).annotations["primary_key"] = "true";
  EXPECT_EQ(s.element(vin).documentation, "Vehicle identification number.");
  EXPECT_EQ(s.element(vin).annotations.at("primary_key"), "true");
}

TEST(SchemaTest, ValidatePassesOnBuiltSchema) {
  Schema s = MakeSample();
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SchemaTest, FlavorIsRecorded) {
  Schema s("X", SchemaFlavor::kXml);
  EXPECT_EQ(s.flavor(), SchemaFlavor::kXml);
  s.set_flavor(SchemaFlavor::kRelational);
  EXPECT_EQ(s.flavor(), SchemaFlavor::kRelational);
}

TEST(SchemaFlavorTest, RoundTripsThroughStrings) {
  for (SchemaFlavor f : {SchemaFlavor::kGeneric, SchemaFlavor::kRelational,
                         SchemaFlavor::kXml}) {
    EXPECT_EQ(SchemaFlavorFromString(SchemaFlavorToString(f)), f);
  }
}

}  // namespace
}  // namespace harmony::schema
