#include "schema/element.h"

#include <gtest/gtest.h>

namespace harmony::schema {
namespace {

TEST(ElementKindTest, RoundTripsThroughStrings) {
  for (ElementKind kind :
       {ElementKind::kRoot, ElementKind::kTable, ElementKind::kView,
        ElementKind::kColumn, ElementKind::kComplexType, ElementKind::kElement,
        ElementKind::kAttribute, ElementKind::kGroup}) {
    EXPECT_EQ(ElementKindFromString(ElementKindToString(kind)), kind);
  }
}

TEST(ElementKindTest, UnknownStringMapsToGroup) {
  EXPECT_EQ(ElementKindFromString("not-a-kind"), ElementKind::kGroup);
}

TEST(DataTypeTest, RoundTripsThroughStrings) {
  for (DataType type :
       {DataType::kUnknown, DataType::kString, DataType::kInteger,
        DataType::kDecimal, DataType::kFloat, DataType::kBoolean, DataType::kDate,
        DataType::kTime, DataType::kDateTime, DataType::kBinary,
        DataType::kComposite}) {
    EXPECT_EQ(DataTypeFromString(DataTypeToString(type)), type);
  }
}

TEST(DataTypeCompatibilityTest, IdenticalTypesAreFullyCompatible) {
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kDate, DataType::kDate), 1.0);
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kString, DataType::kString), 1.0);
}

TEST(DataTypeCompatibilityTest, UnknownIsNeutral) {
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kUnknown, DataType::kDate), 0.5);
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kBinary, DataType::kUnknown), 0.5);
}

TEST(DataTypeCompatibilityTest, RelatedFamiliesPartiallyCompatible) {
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kInteger, DataType::kDecimal), 0.8);
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kDate, DataType::kDateTime), 0.8);
}

TEST(DataTypeCompatibilityTest, StringIsWeaklyCompatibleWithAnything) {
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kString, DataType::kDate), 0.4);
}

TEST(DataTypeCompatibilityTest, UnrelatedTypesAreIncompatible) {
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kDate, DataType::kBinary), 0.0);
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kBoolean, DataType::kFloat), 0.0);
}

TEST(DataTypeCompatibilityTest, IsSymmetric) {
  DataType all[] = {DataType::kUnknown, DataType::kString, DataType::kInteger,
                    DataType::kDecimal, DataType::kFloat, DataType::kBoolean,
                    DataType::kDate, DataType::kTime, DataType::kDateTime,
                    DataType::kBinary};
  for (DataType a : all) {
    for (DataType b : all) {
      EXPECT_DOUBLE_EQ(DataTypeCompatibility(a, b), DataTypeCompatibility(b, a));
    }
  }
}

}  // namespace
}  // namespace harmony::schema
