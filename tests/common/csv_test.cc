#include "common/csv.h"

#include <gtest/gtest.h>

namespace harmony {
namespace {

TEST(CsvWriterTest, PlainFields) {
  CsvWriter w;
  ASSERT_TRUE(w.AppendRow({"a", "b", "c"}).ok());
  EXPECT_EQ(w.ToString(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter w;
  ASSERT_TRUE(w.AppendRow({"has,comma", "has\"quote", "has\nnewline", "plain"}).ok());
  EXPECT_EQ(w.ToString(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(CsvWriterTest, EscapeFieldStandalone) {
  EXPECT_EQ(CsvWriter::EscapeField("ok"), "ok");
  EXPECT_EQ(CsvWriter::EscapeField("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvWriter::EscapeField(""), "");
}

TEST(CsvWriterTest, StrictWidthRejectsRaggedRows) {
  CsvWriter w;
  w.set_strict_width(true);
  ASSERT_TRUE(w.AppendRow({"a", "b"}).ok());
  EXPECT_TRUE(w.AppendRow({"only-one"}).IsInvalidArgument());
  EXPECT_EQ(w.row_count(), 1u);
}

TEST(CsvWriterTest, RaggedRowsAllowedByDefault) {
  CsvWriter w;
  ASSERT_TRUE(w.AppendRow({"a", "b"}).ok());
  ASSERT_TRUE(w.AppendRow({"x"}).ok());
  EXPECT_EQ(w.row_count(), 2u);
}

TEST(CsvParseTest, BasicRows) {
  auto rows = ParseCsv("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvParseTest, QuotedFieldsWithEverything) {
  auto rows = ParseCsv("\"a,b\",\"c\"\"d\",\"e\nf\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a,b", "c\"d", "e\nf"}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto rows = ParseCsv("a,b");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
}

TEST(CsvParseTest, ToleratesCrLf) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvParseTest, UnterminatedQuoteIsParseError) {
  EXPECT_TRUE(ParseCsv("\"open,b\n").status().IsParseError());
}

TEST(CsvParseTest, QuoteMidFieldIsParseError) {
  EXPECT_TRUE(ParseCsv("ab\"c,d\n").status().IsParseError());
}

TEST(CsvParseTest, EmptyInputYieldsNoRows) {
  auto rows = ParseCsv("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

// Property: any field set survives a write→parse round trip.
class CsvRoundTripTest : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(CsvRoundTripTest, RoundTrips) {
  CsvWriter w;
  ASSERT_TRUE(w.AppendRow(GetParam()).ok());
  auto rows = ParseCsv(w.ToString());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AwkwardFields, CsvRoundTripTest,
    ::testing::Values(
        std::vector<std::string>{"plain", "two words"},
        std::vector<std::string>{"comma,inside", "quote\"inside"},
        std::vector<std::string>{"new\nline", "\"fully quoted\""},
        std::vector<std::string>{"", "", ""},
        std::vector<std::string>{",,,", "\"\"\"\"", "\n\n"},
        std::vector<std::string>{"mixed,\"all\"\nof it", "x"}));

}  // namespace
}  // namespace harmony
