#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace harmony::common {
namespace {

// A tiny countdown latch (std::latch-free so the test reads like the
// production call sites, which wait on condition variables too).
class Countdown {
 public:
  explicit Countdown(size_t n) : remaining_(n) {}

  void Hit() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
};

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  constexpr size_t kTasks = 200;
  std::atomic<size_t> ran{0};
  Countdown done(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      ran.fetch_add(1);
      done.Hit();
    });
  }
  done.Wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
  EXPECT_EQ(pool.worker_count(), EffectiveThreadCount(0));
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<size_t> ran{0};
  {
    ThreadPool pool(2);
    for (size_t i = 0; i < 50; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 50u);
}

TEST(ThreadPoolTest, SubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> ran{0};
  Countdown done(2);
  pool.Submit([&] {
    ran.fetch_add(1);
    done.Hit();
    pool.Submit([&] {
      ran.fetch_add(1);
      done.Hit();
    });
  });
  done.Wait();
  EXPECT_EQ(ran.load(), 2u);
}

TEST(ThreadPoolTest, OnWorkerThreadOnlyInsideTasks) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(1);
  bool inside = false;
  Countdown done(1);
  pool.Submit([&] {
    inside = ThreadPool::OnWorkerThread();
    done.Hit();
  });
  done.Wait();
  EXPECT_TRUE(inside);
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(
      0, kN, /*grain=*/7,
      [&](size_t lo, size_t hi) {
        ASSERT_LE(lo, hi);
        ASSERT_LE(hi - lo, 7u);
        for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      /*num_threads=*/5, EngineContext(&pool));
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  size_t calls = 0;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  ParallelFor(9, 3, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(ParallelForTest, SingleThreadRunsWholeRangeInline) {
  std::vector<std::pair<size_t, size_t>> calls;
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id body_thread;
  ParallelFor(
      3, 42, /*grain=*/4,
      [&](size_t lo, size_t hi) {
        calls.emplace_back(lo, hi);
        body_thread = std::this_thread::get_id();
      },
      /*num_threads=*/1);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<size_t, size_t>{3, 42}));
  EXPECT_EQ(body_thread, caller);
}

TEST(ParallelForTest, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(
          0, 100, /*grain=*/1,
          [&](size_t lo, size_t) {
            if (lo == 37) throw std::runtime_error("shard 37 failed");
          },
          /*num_threads=*/4, EngineContext(&pool)),
      std::runtime_error);
}

TEST(ParallelForTest, PoolSurvivesBodyException) {
  ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(ParallelFor(
                     0, 20, 1, [](size_t, size_t) { throw std::logic_error("boom"); },
                     3, EngineContext(&pool)),
                 std::logic_error);
  }
  // The same pool still runs clean work to completion.
  std::atomic<size_t> total{0};
  ParallelFor(
      0, 64, 4, [&](size_t lo, size_t hi) { total.fetch_add(hi - lo); }, 3,
      EngineContext(&pool));
  EXPECT_EQ(total.load(), 64u);
}

TEST(ParallelForTest, ReentrantCallsRunInlineAndComplete) {
  ThreadPool pool(3);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  ParallelFor(
      0, kOuter, 1,
      [&](size_t olo, size_t ohi) {
        for (size_t o = olo; o < ohi; ++o) {
          // Nested fan-out: inside a pool worker this must degrade to an
          // inline serial run instead of deadlocking on the pool.
          ParallelFor(
              0, kInner, 1,
              [&](size_t ilo, size_t ihi) {
                for (size_t i = ilo; i < ihi; ++i) {
                  hits[o * kInner + i].fetch_add(1);
                }
              },
              /*num_threads=*/4, EngineContext(&pool));
        }
      },
      /*num_threads=*/4, EngineContext(&pool));
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "cell " << i;
  }
}

// Regression: helper tasks queued on a longer-lived pool must not outlive
// the ParallelFor call. The context-scoped registry and tracer here die as
// soon as the scope closes, so a helper that only gets scheduled after the
// caller drained every shard — both workers are pinned until the releaser
// fires — must still have recorded its telemetry and fully finished before
// ParallelFor returns (the ASan/TSan legs catch the old late-touch UAF).
TEST(ParallelForTest, ReturnsOnlyAfterQueuedHelpersFinish) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release.store(true, std::memory_order_release);
  });
  {
    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    EngineContext context(&registry, &tracer, &pool);
    std::atomic<size_t> sum{0};
    ParallelFor(
        0, 100, /*grain=*/1,
        [&](size_t lo, size_t hi) { sum.fetch_add(hi - lo); },
        /*num_threads=*/3, context);
    EXPECT_EQ(sum.load(), 100u);
#if HARMONY_OBS_ENABLED
    // All three executors (caller + 2 helpers) finished before the call
    // returned: each recorded its row of the shard-imbalance histogram.
    obs::MetricsSnapshot snap = registry.Snapshot();
    const obs::HistogramSnapshot* h =
        snap.FindHistogram("parallel_for.shards_per_executor");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 3u);
#endif
  }  // registry and tracer destroyed; no helper may touch them from here
  releaser.join();
}

TEST(ParallelForTest, ManyConcurrentShardsStressSharedCounter) {
  ThreadPool pool(8);
  std::atomic<size_t> sum{0};
  constexpr size_t kN = 10000;
  ParallelFor(
      0, kN, 3, [&](size_t lo, size_t hi) { sum.fetch_add(hi - lo); }, 9,
      EngineContext(&pool));
  EXPECT_EQ(sum.load(), kN);
}

TEST(EffectiveThreadCountTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(EffectiveThreadCount(0), 1u);
  EXPECT_EQ(EffectiveThreadCount(1), 1u);
  EXPECT_EQ(EffectiveThreadCount(6), 6u);
}

TEST(ResolveGrainTest, ExplicitRequestPassesThrough) {
  EXPECT_EQ(ResolveGrain(1, 10000, 4), 1u);
  EXPECT_EQ(ResolveGrain(64, 10000, 4), 64u);
  EXPECT_EQ(ResolveGrain(7, 3, 4), 7u);  // even when larger than the range
}

TEST(ResolveGrainTest, AutoTargetsRoughlyEightShardsPerExecutor) {
  // 10000 items / (4 threads * 8 shards) = 312.
  EXPECT_EQ(ResolveGrain(0, 10000, 4), 312u);
  // 64 items across 4 executors → 2 per shard.
  EXPECT_EQ(ResolveGrain(0, 64, 4), 2u);
}

TEST(ResolveGrainTest, AutoNeverReturnsZero) {
  EXPECT_EQ(ResolveGrain(0, 0, 4), 1u);
  EXPECT_EQ(ResolveGrain(0, 1, 16), 1u);
  EXPECT_EQ(ResolveGrain(0, 5, 64), 1u);
}

TEST(ResolveGrainTest, AutoGrainKeepsParallelForExact) {
  ThreadPool pool(4);
  std::atomic<size_t> sum{0};
  constexpr size_t kN = 4321;
  ParallelFor(
      0, kN, /*grain=*/0, [&](size_t lo, size_t hi) { sum.fetch_add(hi - lo); },
      4, EngineContext(&pool));
  EXPECT_EQ(sum.load(), kN);
}

}  // namespace
}  // namespace harmony::common
