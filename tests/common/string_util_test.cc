#include "common/string_util.h"

#include <gtest/gtest.h>

namespace harmony {
namespace {

TEST(StringUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MiXeD_09"), "mixed_09");
  EXPECT_EQ(ToUpper("MiXeD_09"), "MIXED_09");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-ws"), "no-ws");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a\t b \n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string input = "alpha,beta,,gamma";
  EXPECT_EQ(Join(Split(input, ','), ","), input);
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("harmony", "harm"));
  EXPECT_FALSE(StartsWith("harm", "harmony"));
  EXPECT_TRUE(EndsWith("schema.hsc", ".hsc"));
  EXPECT_FALSE(EndsWith("schema.hsc", ".csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("DATE_BEGIN", "date_begin"));
  EXPECT_FALSE(EqualsIgnoreCase("DATE", "DATE_"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("156"));
  EXPECT_FALSE(IsAllDigits("15a"));
  EXPECT_FALSE(IsAllDigits(""));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a_b_c", "_", "."), "a.b.c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // Non-overlapping, left to right.
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");       // Empty needle is a no-op.
}

TEST(StringUtilTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StringFormat("plain"), "plain");
}

}  // namespace
}  // namespace harmony
