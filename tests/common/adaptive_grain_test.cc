// GrainController (common/adaptive_grain.h): the policy unit tests feed the
// controller deterministic synthetic shard observations — no wall-clock
// assertions, which would flake on a loaded 1-vCPU CI runner — and check
// the recommendation logic directly: cold start and balanced histograms
// keep the static grain, skewed histograms split it, the min-duration floor
// holds, and a skewed-row workload's worst-executor shard assignment
// (computed analytically from the carve) improves. The ParallelFor wiring
// tests then assert the integration points: shards feed the controller, the
// recommendation drives the carve, and — the invariant that lets the whole
// feature exist — scores never change with adaptation on.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/adaptive_grain.h"
#include "common/engine_context.h"
#include "common/thread_pool.h"
#include "core/match_engine.h"
#include "synth/generator.h"

namespace harmony {
namespace {

using common::GrainController;

TEST(AdaptiveGrainTest, ColdStartRecommendsNothing) {
  GrainController c;
  EXPECT_EQ(0u, c.Recommend(1000, 4));
  c.ObserveShard(1000, 10);
  EXPECT_EQ(0u, c.Recommend(1000, 4));  // below min_samples
  EXPECT_EQ(1u, c.sample_count());
}

TEST(AdaptiveGrainTest, BalancedHistogramKeepsStaticGrain) {
  GrainController c;
  // 100 uniform shards: p50 and p99 land in the same log2 bucket.
  for (int i = 0; i < 100; ++i) c.ObserveShard(100000, 10);
  EXPECT_EQ(0u, c.Recommend(1000, 4));
  EXPECT_DOUBLE_EQ(1.0, c.SkewRatio());
}

TEST(AdaptiveGrainTest, SkewedHistogramSplitsStaticGrain) {
  GrainController c;
  // 95 cheap shards, 5 shards 64x slower: p99/p50 spans 6 buckets.
  for (int i = 0; i < 95; ++i) c.ObserveShard(100000, 10);
  for (int i = 0; i < 5; ++i) c.ObserveShard(6400000, 10);
  EXPECT_GE(c.SkewRatio(), 4.0);
  const size_t items = 1000, threads = 4;
  const size_t static_grain = common::ResolveGrain(0, items, threads);
  const size_t adaptive = c.Recommend(items, threads);
  ASSERT_GT(adaptive, 0u);
  EXPECT_LT(adaptive, static_grain);
  EXPECT_EQ(static_grain / GrainController::Options{}.split_factor, adaptive);
}

TEST(AdaptiveGrainTest, MinDurationFloorBoundsTheSplit) {
  GrainController::Options options;
  options.min_shard_ns = 1000000;  // 1ms minimum shard
  GrainController c(options);
  for (int i = 0; i < 95; ++i) c.ObserveShard(100000, 10);
  for (int i = 0; i < 5; ++i) c.ObserveShard(6400000, 10);
  const size_t items = 1000, threads = 4;
  const size_t static_grain = common::ResolveGrain(0, items, threads);
  const size_t grain = c.Recommend(items, threads);
  ASSERT_GT(grain, 0u);
  // The unfloored split would be static/split_factor; at the observed mean
  // item cost (~41.5us) a 1ms shard needs ~24 items, and the floor wins.
  EXPECT_GT(grain, static_grain / options.split_factor);
  // The floor never exceeds the static grain (floor > static would mean
  // "recommend coarser than default", which Recommend caps).
  EXPECT_LE(grain, static_grain);
}

TEST(AdaptiveGrainTest, DegenerateInputsRecommendNothing) {
  GrainController c;
  for (int i = 0; i < 95; ++i) c.ObserveShard(100000, 10);
  for (int i = 0; i < 5; ++i) c.ObserveShard(6400000, 10);
  EXPECT_EQ(0u, c.Recommend(0, 4));    // empty range
  EXPECT_EQ(0u, c.Recommend(1000, 1)); // serial: grain is irrelevant
  EXPECT_EQ(0u, c.Recommend(10, 4));   // static grain already 1
}

// The scheduling claim itself, settled analytically instead of by racing
// wall clocks: with per-item costs known, the worst single shard under the
// adaptive carve is strictly cheaper than under the static carve, so the
// straggler an executor can be stuck with shrinks. (ParallelFor's
// work-stealing claim loop makes worst-shard cost the binding constraint on
// the critical path once shards outnumber executors.)
TEST(AdaptiveGrainTest, SkewedRowWorkloadWorstShardImproves) {
  const size_t items = 256, threads = 4;
  // A skewed row-cost profile: one hot band 50x the baseline (doc-heavy
  // elements in a schema, in engine terms).
  std::vector<uint64_t> cost(items, 10);
  for (size_t i = 64; i < 96; ++i) cost[i] = 500;

  GrainController c;
  // Warm the controller with the observations the static carve would have
  // produced: shards of the static grain, each with its true summed cost.
  const size_t static_grain = common::ResolveGrain(0, items, threads);
  for (size_t lo = 0; lo < items; lo += static_grain) {
    size_t hi = std::min(items, lo + static_grain);
    uint64_t ns = 0;
    for (size_t i = lo; i < hi; ++i) ns += cost[i] * 1000;
    c.ObserveShard(ns, hi - lo);
  }
  // One carve is not 32 samples; replay it until the controller warms up.
  while (c.sample_count() < GrainController::Options{}.min_samples) {
    for (size_t lo = 0; lo < items; lo += static_grain) {
      size_t hi = std::min(items, lo + static_grain);
      uint64_t ns = 0;
      for (size_t i = lo; i < hi; ++i) ns += cost[i] * 1000;
      c.ObserveShard(ns, hi - lo);
    }
  }

  const size_t adaptive_grain_v = c.Recommend(items, threads);
  ASSERT_GT(adaptive_grain_v, 0u);
  ASSERT_LT(adaptive_grain_v, static_grain);

  auto worst_shard = [&](size_t grain) {
    uint64_t worst = 0;
    for (size_t lo = 0; lo < items; lo += grain) {
      size_t hi = std::min(items, lo + grain);
      uint64_t ns = 0;
      for (size_t i = lo; i < hi; ++i) ns += cost[i] * 1000;
      worst = std::max(worst, ns);
    }
    return worst;
  };
  EXPECT_LT(worst_shard(adaptive_grain_v), worst_shard(static_grain));
}

// Wiring: an auto-grain ParallelFor through a context carrying a controller
// reports every shard, and a warmed-up skewed controller's recommendation
// changes the carve (more, finer shards).
TEST(AdaptiveGrainTest, ParallelForFeedsAndConsultsController) {
  common::ThreadPool pool(4);
  GrainController controller;
  common::EngineContext context(&pool);
  context.grain = &controller;

  std::atomic<uint64_t> shards{0};
  auto body = [&](size_t, size_t) {
    shards.fetch_add(1, std::memory_order_relaxed);
  };
  // Cold: static carve (~8 shards/executor on 4+1 executors would need >=
  // items; with items=100, grain = 100/(4*8) = 3). Every executed shard
  // must land in the controller.
  common::ParallelFor(0, 100, 0, body, 4, context);
  const uint64_t cold_shards = shards.load();
  EXPECT_GT(cold_shards, 1u);
  EXPECT_EQ(cold_shards, controller.sample_count());

  // Inject skew so Recommend splits, then re-run: the carve must get finer.
  for (int i = 0; i < 95; ++i) controller.ObserveShard(100000, 10);
  for (int i = 0; i < 5; ++i) controller.ObserveShard(6400000, 10);
  ASSERT_GT(controller.Recommend(100, 4), 0u);
  shards.store(0);
  common::ParallelFor(0, 100, 0, body, 4, context);
  EXPECT_GT(shards.load(), cold_shards);

  // An explicit grain ignores the controller: exactly ceil(100/50) shards.
  shards.store(0);
  common::ParallelFor(0, 100, 50, body, 4, context);
  EXPECT_EQ(2u, shards.load());
}

// The invariant that makes adaptive_grain safe to ship on by default
// anywhere: scores are bitwise-identical with it on and off. Two full
// engines over the same pair, one adaptive (multi-threaded, so ParallelFor
// actually shards and feeds the controller), one not — every matrix cell
// equal, across repeated runs so later matrices run under recommendations
// warmed by earlier ones.
TEST(AdaptiveGrainTest, AdaptationNeverChangesScores) {
  synth::PairSpec spec;
  spec.seed = 777;
  spec.source_concepts = 12;
  spec.target_concepts = 9;
  spec.shared_concepts = 5;
  auto pair = synth::GeneratePair(spec);

  core::MatchOptions plain;
  plain.num_threads = 1;
  core::MatchEngine reference(pair.source, pair.target, plain);
  core::MatchMatrix want = reference.ComputeMatrix();

  core::MatchOptions adaptive;
  adaptive.num_threads = 4;
  adaptive.adaptive_grain = true;
  core::MatchEngine engine(pair.source, pair.target, adaptive);
  ASSERT_NE(nullptr, engine.pipeline().grain_controller());
  for (int run = 0; run < 3; ++run) {
    SCOPED_TRACE(::testing::Message() << "run " << run);
    core::MatchMatrix got = engine.ComputeMatrix();
    ASSERT_EQ(want.rows(), got.rows());
    ASSERT_EQ(want.cols(), got.cols());
    for (size_t r = 0; r < want.rows(); ++r) {
      for (size_t c = 0; c < want.cols(); ++c) {
        ASSERT_EQ(want.GetByIndex(r, c), got.GetByIndex(r, c))
            << "cell (" << r << ", " << c << ")";
      }
    }
  }
  // The kernel fan-outs actually reported: adaptation had data to chew on.
  EXPECT_GT(engine.pipeline().grain_controller()->sample_count(), 0u);
}

}  // namespace
}  // namespace harmony
