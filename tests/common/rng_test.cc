#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace harmony {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Uniform(4, 4), 4);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ChoicePicksExistingElements) {
  Rng rng(2);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    int c = rng.Choice(v);
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> w{0.0, 1.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.WeightedIndex(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1] * 5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(5.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

}  // namespace
}  // namespace harmony
