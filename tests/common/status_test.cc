#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace harmony {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "Not found: missing thing");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::IOError("disk gone");
  Status t = s;
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk gone");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status FailsThenPropagates(bool fail) {
  HARMONY_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status s = FailsThenPropagates(true);
  EXPECT_TRUE(s.IsInternal());
  EXPECT_EQ(s.message(), "inner");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  HARMONY_ASSIGN_OR_RETURN(int h, Half(x));
  HARMONY_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = Quarter(6);  // 6/2 = 3, odd.
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

}  // namespace
}  // namespace harmony
