#include "common/logging.h"

#include <gtest/gtest.h>

namespace harmony {
namespace {

// Restores the log threshold on scope exit so tests stay independent.
class ThresholdGuard {
 public:
  explicit ThresholdGuard(LogLevel level) : previous_(SetLogThreshold(level)) {}
  ~ThresholdGuard() { SetLogThreshold(previous_); }

 private:
  LogLevel previous_;
};

// The compile test for the dangling-else hazard: with the naive
// `if (!(cond)) LOG(Fatal)` expansion, the `else` below would bind to the
// macro's internal if — so a *passing* check would execute the else branch.
// With the guard idiom the else binds to the outer if, as written.
TEST(LoggingTest, CheckInUnbracedIfDoesNotStealElse) {
  bool else_ran = false;
  if (true)
    HARMONY_CHECK(true);
  else
    else_ran = true;  // must belong to `if (true)`, i.e. never run
  EXPECT_FALSE(else_ran);

  bool then_ran = false;
  if (false)
    HARMONY_CHECK(true);
  else
    then_ran = true;  // must run: the outer condition is false
  EXPECT_TRUE(then_ran);
}

TEST(LoggingTest, CheckStreamsExtraContext) {
  // Streaming onto a passing check must compile and not evaluate loudly.
  HARMONY_CHECK(1 + 1 == 2) << "math still works " << 42;
  HARMONY_CHECK_EQ(2, 2) << "streamed";
  HARMONY_CHECK_LE(1, 2);
}

TEST(LoggingTest, CheckEvaluatesConditionExactlyOnce) {
  int calls = 0;
  HARMONY_CHECK([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

TEST(LoggingDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(HARMONY_CHECK(false) << "boom", "Check failed: false");
  EXPECT_DEATH(HARMONY_CHECK_EQ(1, 2), "Check failed:");
}

// The short-circuit: a below-threshold HARMONY_LOG must not construct the
// LogMessage (no ostringstream) nor evaluate its streamed operands.
TEST(LoggingTest, DisabledLevelsDoNotEvaluateOperands) {
  ThresholdGuard guard(LogLevel::kError);
  int evaluations = 0;
  HARMONY_LOG(Debug) << ++evaluations;
  HARMONY_LOG(Info) << ++evaluations;
  HARMONY_LOG(Warning) << ++evaluations;
  EXPECT_EQ(evaluations, 0);
}

TEST(LoggingTest, EnabledLevelsEvaluateOperands) {
  ThresholdGuard guard(LogLevel::kError);
  int evaluations = 0;
  testing::internal::CaptureStderr();
  HARMONY_LOG(Error) << "count=" << ++evaluations;
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(err.find("count=1"), std::string::npos);
  EXPECT_NE(err.find("ERROR"), std::string::npos);
}

TEST(LoggingTest, LogNestsInUnbracedIf) {
  ThresholdGuard guard(LogLevel::kFatal);  // silence everything non-fatal
  bool else_ran = false;
  if (true)
    HARMONY_LOG(Warning) << "quiet";
  else
    else_ran = true;
  EXPECT_FALSE(else_ran);
}

TEST(LoggingTest, SetThresholdReturnsPrevious) {
  LogLevel before = GetLogThreshold();
  LogLevel prev = SetLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kDebug);
  SetLogThreshold(before);
}

}  // namespace
}  // namespace harmony
