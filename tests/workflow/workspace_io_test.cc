#include "workflow/workspace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "schema/builder.h"

namespace harmony::workflow {
namespace {

struct Fixture {
  schema::Schema sa;
  schema::Schema sb;
  MatchWorkspace ws;

  Fixture() : sa(Make("SA")), sb(Make("SB")), ws(sa, sb) {
    ws.ImportCandidates({{1, 1, 0.9}, {2, 2, 0.55}, {3, 3, 0.3}});
    EXPECT_TRUE(
        ws.Accept(0, "alice", SemanticAnnotation::kEquivalent, "clean match").ok());
    EXPECT_TRUE(ws.Reject(1, "bob", "different, concepts").ok());
    // Record 2 stays a candidate.
  }

  static schema::Schema Make(const std::string& name) {
    schema::RelationalBuilder b(name);
    auto t = b.Table("T");
    b.Column(t, "A");
    b.Column(t, "B");
    return std::move(b).Build();
  }
};

TEST(WorkspaceIoTest, RoundTripPreservesEverything) {
  Fixture f;
  size_t dropped = 99;
  auto restored = DeserializeWorkspace(f.sa, f.sb, SerializeWorkspace(f.ws),
                                       &dropped);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(restored->record_count(), 3u);
  const MatchRecord& r0 = restored->record(0);
  EXPECT_EQ(r0.status, ValidationStatus::kAccepted);
  EXPECT_EQ(r0.annotation, SemanticAnnotation::kEquivalent);
  EXPECT_EQ(r0.reviewer, "alice");
  EXPECT_EQ(r0.note, "clean match");
  EXPECT_NEAR(r0.link.score, 0.9, 1e-9);
  const MatchRecord& r1 = restored->record(1);
  EXPECT_EQ(r1.status, ValidationStatus::kRejected);
  EXPECT_EQ(r1.note, "different, concepts");  // Comma survives CSV quoting.
  EXPECT_EQ(restored->record(2).status, ValidationStatus::kCandidate);
}

TEST(WorkspaceIoTest, FileRoundTrip) {
  Fixture f;
  std::string path = ::testing::TempDir() + "/harmony_ws.csv";
  ASSERT_TRUE(SaveWorkspace(f.ws, path).ok());
  auto restored = LoadWorkspace(f.sa, f.sb, path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->record_count(), 3u);
  std::remove(path.c_str());
}

TEST(WorkspaceIoTest, SchemaDriftDropsRowsInsteadOfFailing) {
  Fixture f;
  std::string text = SerializeWorkspace(f.ws);
  // Load against a schema missing element B (paths T.B resolve no more).
  schema::RelationalBuilder b("SA");
  auto t = b.Table("T");
  b.Column(t, "A");
  schema::Schema shrunken = std::move(b).Build();
  size_t dropped = 0;
  auto restored = DeserializeWorkspace(shrunken, f.sb, text, &dropped);
  ASSERT_TRUE(restored.ok());
  // Records referencing SA ids 2,3 (T.A exists = id 2? paths: records used
  // ids 1..3 = T, T.A, T.B) — exactly the rows whose path vanished drop.
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(restored->record_count() + dropped, 3u);
}

TEST(WorkspaceIoTest, MalformedInputIsParseError) {
  Fixture f;
  EXPECT_TRUE(
      DeserializeWorkspace(f.sa, f.sb, "not,a,workspace\n").status().IsParseError());
  EXPECT_TRUE(DeserializeWorkspace(
                  f.sa, f.sb,
                  "source_path,target_path,score,status,annotation,reviewer,note\n"
                  "only,three,fields\n")
                  .status()
                  .IsParseError());
}

TEST(WorkspaceIoTest, DuplicateRowsFirstOneWins) {
  Fixture f;
  std::string text =
      "source_path,target_path,score,status,annotation,reviewer,note\n"
      "T.A,T.A,0.8,accepted,equivalent,alice,\n"
      "T.A,T.A,0.2,rejected,,bob,\n";
  size_t dropped = 0;
  auto restored = DeserializeWorkspace(f.sa, f.sb, text, &dropped);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->record_count(), 1u);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(restored->record(0).status, ValidationStatus::kAccepted);
}

TEST(WorkspaceIoTest, LoadMissingFileIsIOError) {
  Fixture f;
  EXPECT_TRUE(LoadWorkspace(f.sa, f.sb, "/no/such/file.csv").status().IsIOError());
}

}  // namespace
}  // namespace harmony::workflow
