#include "workflow/team.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "schema/builder.h"
#include "summarize/summary.h"

namespace harmony::workflow {
namespace {

struct Fixture {
  schema::Schema source;
  schema::Schema target;
  summarize::Summary summary;

  Fixture() : source(MakeSource()), target(MakeTarget()), summary(source) {
    EXPECT_TRUE(summary.AnchorNew("Event", *source.FindByPath("EVENT")).ok());
    EXPECT_TRUE(summary.AnchorNew("Person", *source.FindByPath("PERSON")).ok());
    EXPECT_TRUE(summary.AnchorNew("Medical", *source.FindByPath("MEDICAL")).ok());
    EXPECT_TRUE(summary.AnchorNew("Vehicle", *source.FindByPath("VEHICLE")).ok());
  }

  static schema::Schema MakeSource() {
    schema::RelationalBuilder b("SA");
    auto e = b.Table("EVENT");
    for (int i = 0; i < 12; ++i) b.Column(e, StringFormat("E%d", i));
    auto p = b.Table("PERSON");
    for (int i = 0; i < 6; ++i) b.Column(p, StringFormat("P%d", i));
    auto m = b.Table("MEDICAL");
    for (int i = 0; i < 4; ++i) b.Column(m, StringFormat("M%d", i));
    auto v = b.Table("VEHICLE");
    for (int i = 0; i < 2; ++i) b.Column(v, StringFormat("V%d", i));
    return std::move(b).Build();
  }

  static schema::Schema MakeTarget() {
    schema::RelationalBuilder b("SB");
    auto t = b.Table("T");
    for (int i = 0; i < 10; ++i) b.Column(t, StringFormat("C%d", i));
    return std::move(b).Build();
  }
};

TEST(TeamPlannerTest, EveryConceptAssigned) {
  Fixture f;
  std::vector<TeamMember> team{{"alice", ""}, {"bob", ""}};
  TeamPlan plan = PlanTeamTasks(f.summary, f.target, team);
  EXPECT_EQ(plan.tasks.size(), 4u);
  for (const auto& t : plan.tasks) {
    EXPECT_TRUE(t.assignee == "alice" || t.assignee == "bob");
    EXPECT_GT(t.estimated_pairs, 0u);
    EXPECT_FALSE(t.completed);
  }
}

TEST(TeamPlannerTest, WorkloadEstimateIsMembersTimesTarget) {
  Fixture f;
  std::vector<TeamMember> team{{"alice", ""}};
  TeamPlan plan = PlanTeamTasks(f.summary, f.target, team);
  for (const auto& t : plan.tasks) {
    size_t members = f.summary.Members(t.concept_id).size();
    EXPECT_EQ(t.estimated_pairs, members * f.target.element_count());
  }
}

TEST(TeamPlannerTest, LoadRoughlyBalanced) {
  Fixture f;
  std::vector<TeamMember> team{{"alice", ""}, {"bob", ""}};
  TeamPlan plan = PlanTeamTasks(f.summary, f.target, team);
  // LPT on {13,7,5,3}×10 over two members: max load / mean <= 1.5.
  EXPECT_LE(plan.LoadImbalance(team), 1.5);
  EXPECT_GT(plan.LoadOf("alice"), 0u);
  EXPECT_GT(plan.LoadOf("bob"), 0u);
}

TEST(TeamPlannerTest, ExpertiseRoutesMatchingConcepts) {
  Fixture f;
  std::vector<TeamMember> team{{"doc", "medical health"}, {"generalist", ""}};
  TeamPlan plan = PlanTeamTasks(f.summary, f.target, team, /*tolerance=*/5.0);
  // With a huge tolerance, the medical concept must land on the expert.
  bool found = false;
  for (const auto& t : plan.tasks) {
    if (t.concept_label == "Medical") {
      EXPECT_EQ(t.assignee, "doc");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TeamPlannerTest, QueueForSortsHeaviestFirst) {
  Fixture f;
  std::vector<TeamMember> team{{"solo", ""}};
  TeamPlan plan = PlanTeamTasks(f.summary, f.target, team);
  auto queue = plan.QueueFor("solo");
  ASSERT_EQ(queue.size(), 4u);
  for (size_t i = 1; i < queue.size(); ++i) {
    EXPECT_GE(queue[i - 1]->estimated_pairs, queue[i]->estimated_pairs);
  }
  EXPECT_TRUE(plan.QueueFor("nobody").empty());
}

TEST(TeamPlannerTest, SingleMemberTakesEverything) {
  Fixture f;
  std::vector<TeamMember> team{{"solo", ""}};
  TeamPlan plan = PlanTeamTasks(f.summary, f.target, team);
  EXPECT_DOUBLE_EQ(plan.LoadImbalance(team), 1.0);
}

}  // namespace
}  // namespace harmony::workflow
