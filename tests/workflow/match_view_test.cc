#include "workflow/match_view.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::workflow {
namespace {

struct Fixture {
  schema::Schema sa;
  schema::Schema sb;
  MatchWorkspace ws;

  Fixture() : sa(Make("SA")), sb(Make("SB")), ws(sa, sb) {
    ws.ImportCandidates({{1, 1, 0.9}, {2, 2, 0.6}, {3, 3, 0.4}, {4, 4, 0.2}});
    EXPECT_TRUE(ws.Accept(0, "alice").ok());
    EXPECT_TRUE(ws.Accept(1, "bob", SemanticAnnotation::kIsA).ok());
    EXPECT_TRUE(ws.Reject(2, "alice").ok());
  }

  static schema::Schema Make(const std::string& name) {
    schema::RelationalBuilder b(name);
    auto t = b.Table("T");
    b.Column(t, "C1");
    b.Column(t, "C2");
    b.Column(t, "C3");
    return std::move(b).Build();
  }
};

TEST(MatchViewTest, RendersAllRowsWithHeader) {
  Fixture f;
  std::string view = RenderMatchView(f.ws);
  EXPECT_NE(view.find("score"), std::string::npos);
  EXPECT_NE(view.find("T.C1"), std::string::npos);
  EXPECT_NE(view.find("0.900"), std::string::npos);
  EXPECT_NE(view.find("4 matches shown"), std::string::npos);
}

TEST(MatchViewTest, SortedByScoreDescByDefault) {
  Fixture f;
  std::string view = RenderMatchView(f.ws);
  EXPECT_LT(view.find("0.900"), view.find("0.600"));
  EXPECT_LT(view.find("0.600"), view.find("0.400"));
}

TEST(MatchViewTest, StatusFilter) {
  Fixture f;
  MatchViewOptions opts;
  opts.filter.status = ValidationStatus::kAccepted;
  std::string view = RenderMatchView(f.ws, opts);
  EXPECT_NE(view.find("2 matches shown"), std::string::npos);
  EXPECT_EQ(view.find("rejected"), std::string::npos);
}

TEST(MatchViewTest, ReviewerFilterAndMinScore) {
  Fixture f;
  MatchViewOptions opts;
  opts.filter.reviewer = "alice";
  std::string view = RenderMatchView(f.ws, opts);
  EXPECT_NE(view.find("2 matches shown"), std::string::npos);
  EXPECT_EQ(view.find("bob"), std::string::npos);

  MatchViewOptions score_opts;
  score_opts.filter.min_score = 0.5;
  std::string high = RenderMatchView(f.ws, score_opts);
  EXPECT_NE(high.find("2 matches shown"), std::string::npos);
}

TEST(MatchViewTest, GroupByStatusSectionsWithCounts) {
  Fixture f;
  MatchViewOptions opts;
  opts.group_by = MatchViewGroupBy::kStatus;
  std::string view = RenderMatchView(f.ws, opts);
  EXPECT_NE(view.find("== accepted (2) =="), std::string::npos);
  EXPECT_NE(view.find("== rejected (1) =="), std::string::npos);
  EXPECT_NE(view.find("== candidate (1) =="), std::string::npos);
}

TEST(MatchViewTest, GroupByReviewerHandlesUnreviewed) {
  Fixture f;
  MatchViewOptions opts;
  opts.group_by = MatchViewGroupBy::kReviewer;
  std::string view = RenderMatchView(f.ws, opts);
  EXPECT_NE(view.find("== alice (2) =="), std::string::npos);
  EXPECT_NE(view.find("== (unreviewed) (1) =="), std::string::npos);
}

TEST(MatchViewTest, MaxRowsTruncatesWithEllipsis) {
  Fixture f;
  MatchViewOptions opts;
  opts.max_rows = 2;
  std::string view = RenderMatchView(f.ws, opts);
  EXPECT_NE(view.find("... 2 more rows"), std::string::npos);
}

TEST(MatchViewTest, EmptyWorkspace) {
  Fixture f;
  MatchWorkspace empty(f.sa, f.sb);
  std::string view = RenderMatchView(empty);
  EXPECT_NE(view.find("0 matches shown"), std::string::npos);
}

TEST(StatusSummaryTest, CountsAllStatuses) {
  Fixture f;
  std::string summary = RenderStatusSummary(f.ws);
  EXPECT_EQ(summary,
            "candidate 1 | accepted 2 | rejected 1 | deferred 0");
}

}  // namespace
}  // namespace harmony::workflow
