#include "workflow/spreadsheet_export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/csv.h"
#include "schema/builder.h"

namespace harmony::workflow {
namespace {

struct Fixture {
  schema::Schema sa;
  schema::Schema sb;
  summarize::Summary sum_a;
  summarize::Summary sum_b;
  MatchWorkspace ws;
  std::vector<summarize::ConceptMatch> concept_matches;

  Fixture() : sa(MakeA()), sb(MakeB()), sum_a(sa), sum_b(sb), ws(sa, sb) {
    EXPECT_TRUE(sum_a.AnchorNew("Event", *sa.FindByPath("EVENT")).ok());
    EXPECT_TRUE(sum_a.AnchorNew("Person", *sa.FindByPath("PERSON")).ok());
    EXPECT_TRUE(sum_b.AnchorNew("Event", *sb.FindByPath("Incident")).ok());
    EXPECT_TRUE(sum_b.AnchorNew("Weather", *sb.FindByPath("Weather")).ok());

    ws.ImportCandidates({{*sa.FindByPath("EVENT.E1"), *sb.FindByPath("Incident.I1"),
                          0.8},
                         {*sa.FindByPath("EVENT.E2"), *sb.FindByPath("Incident.I2"),
                          0.6},
                         {*sa.FindByPath("PERSON.P1"), *sb.FindByPath("Weather.W1"),
                          0.4}});
    EXPECT_TRUE(ws.Accept(0, "alice").ok());
    EXPECT_TRUE(ws.Accept(1, "bob", SemanticAnnotation::kIsA).ok());
    EXPECT_TRUE(ws.Reject(2, "alice").ok());

    // One concept-level match: Event ↔ Event.
    concept_matches.push_back(
        {*sum_a.FindConcept("Event"), *sum_b.FindConcept("Event"), 2, 0.5});
  }

  static schema::Schema MakeA() {
    schema::RelationalBuilder b("SA");
    auto e = b.Table("EVENT");
    b.Column(e, "E1");
    b.Column(e, "E2");
    auto p = b.Table("PERSON");
    b.Column(p, "P1");
    return std::move(b).Build();
  }

  static schema::Schema MakeB() {
    schema::XmlBuilder b("SB");
    auto e = b.ComplexType("Incident");
    b.Element(e, "I1");
    b.Element(e, "I2");
    auto w = b.ComplexType("Weather");
    b.Element(w, "W1");
    return std::move(b).Build();
  }
};

TEST(ConceptSheetTest, OuterJoinRowCount) {
  Fixture f;
  std::string csv = ConceptSheetCsv(f.sum_a, f.sum_b, f.concept_matches);
  auto rows = harmony::ParseCsv(csv);
  ASSERT_TRUE(rows.ok());
  // Header + (2 + 2 − 1) rows: the paper's |A| + |B| − |matches| formula.
  EXPECT_EQ(rows->size(), 1u + 3u);
}

TEST(ConceptSheetTest, RowTypesAndContent) {
  Fixture f;
  std::string csv = ConceptSheetCsv(f.sum_a, f.sum_b, f.concept_matches);
  auto rows = *harmony::ParseCsv(csv);
  EXPECT_EQ(rows[1][0], "matched");
  EXPECT_EQ(rows[1][1], "Event");
  EXPECT_EQ(rows[1][2], "Event");
  EXPECT_EQ(rows[1][3], "2");
  // One source_only (Person) and one target_only (Weather).
  int source_only = 0, target_only = 0;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i][0] == "source_only") ++source_only;
    if (rows[i][0] == "target_only") ++target_only;
  }
  EXPECT_EQ(source_only, 1);
  EXPECT_EQ(target_only, 1);
}

TEST(ElementSheetTest, ThreeRowTypesPartitionElements) {
  Fixture f;
  std::string csv = ElementSheetCsv(f.sum_a, f.sum_b, f.ws);
  auto rows = *harmony::ParseCsv(csv);
  size_t matched = 0, source_only = 0, target_only = 0;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i][0] == "matched") ++matched;
    if (rows[i][0] == "source_only") ++source_only;
    if (rows[i][0] == "target_only") ++target_only;
  }
  EXPECT_EQ(matched, 2u);  // Two accepted records (the rejected one is not).
  // SA: 5 elements, 2 matched → 3 source_only. SB: 5 elements, 2 matched → 3.
  EXPECT_EQ(source_only, 3u);
  EXPECT_EQ(target_only, 3u);
  EXPECT_EQ(rows.size(), 1u + 2u + 3u + 3u);
}

TEST(ElementSheetTest, MatchedRowsCarryConceptsAndAnnotations) {
  Fixture f;
  std::string csv = ElementSheetCsv(f.sum_a, f.sum_b, f.ws);
  auto rows = *harmony::ParseCsv(csv);
  bool saw_isa = false;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i][0] != "matched") continue;
    EXPECT_EQ(rows[i][1], "Event");
    EXPECT_EQ(rows[i][3], "Event");
    if (rows[i][7] == "is-a") saw_isa = true;
  }
  EXPECT_TRUE(saw_isa);
}

TEST(ExportSpreadsheetTest, WritesBothSheets) {
  Fixture f;
  std::string dir = ::testing::TempDir() + "/harmony_export_test";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(
      ExportSpreadsheet(f.sum_a, f.sum_b, f.concept_matches, f.ws, dir).ok());
  EXPECT_TRUE(std::filesystem::exists(dir + "/concepts.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/elements.csv"));
  std::ifstream in(dir + "/concepts.csv");
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("row_type"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace harmony::workflow
