#include "workflow/match_record.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::workflow {
namespace {

struct Fixture {
  schema::Schema sa;
  schema::Schema sb;
  MatchWorkspace ws;

  Fixture() : sa(Make("SA")), sb(Make("SB")), ws(sa, sb) {}

  static schema::Schema Make(const std::string& name) {
    schema::RelationalBuilder b(name);
    auto t = b.Table("T");
    b.Column(t, "A");
    b.Column(t, "B");
    return std::move(b).Build();
  }
};

TEST(MatchWorkspaceTest, ImportDedupsAndKeepsMaxScore) {
  Fixture f;
  EXPECT_EQ(f.ws.ImportCandidates({{1, 1, 0.5}, {2, 2, 0.6}}), 2u);
  EXPECT_EQ(f.ws.ImportCandidates({{1, 1, 0.7}, {3, 3, 0.4}}), 1u);
  EXPECT_EQ(f.ws.record_count(), 3u);
  EXPECT_DOUBLE_EQ(f.ws.record(0).link.score, 0.7);  // Raised to the max.
}

TEST(MatchWorkspaceTest, ImportKeepsHigherExistingScore) {
  Fixture f;
  f.ws.ImportCandidates({{1, 1, 0.9}});
  f.ws.ImportCandidates({{1, 1, 0.2}});
  EXPECT_DOUBLE_EQ(f.ws.record(0).link.score, 0.9);
}

TEST(MatchWorkspaceTest, ReviewLifecycle) {
  Fixture f;
  f.ws.ImportCandidates({{1, 1, 0.8}, {2, 2, 0.5}, {3, 3, 0.3}});
  ASSERT_TRUE(f.ws.Accept(0, "alice", SemanticAnnotation::kEquivalent).ok());
  ASSERT_TRUE(f.ws.Reject(1, "bob", "different concepts").ok());
  ASSERT_TRUE(f.ws.Defer(2, "alice").ok());

  EXPECT_EQ(f.ws.CountWithStatus(ValidationStatus::kAccepted), 1u);
  EXPECT_EQ(f.ws.CountWithStatus(ValidationStatus::kRejected), 1u);
  EXPECT_EQ(f.ws.CountWithStatus(ValidationStatus::kDeferred), 1u);
  EXPECT_EQ(f.ws.CountWithStatus(ValidationStatus::kCandidate), 0u);

  EXPECT_EQ(f.ws.record(0).reviewer, "alice");
  EXPECT_EQ(f.ws.record(1).note, "different concepts");
}

TEST(MatchWorkspaceTest, ReReviewAllowed) {
  Fixture f;
  f.ws.ImportCandidates({{1, 1, 0.8}});
  ASSERT_TRUE(f.ws.Accept(0, "alice").ok());
  ASSERT_TRUE(f.ws.Reject(0, "bob", "on second thought").ok());
  EXPECT_EQ(f.ws.record(0).status, ValidationStatus::kRejected);
}

TEST(MatchWorkspaceTest, OutOfRangeIndexRejected) {
  Fixture f;
  EXPECT_TRUE(f.ws.Accept(0, "alice").IsOutOfRange());
  f.ws.ImportCandidates({{1, 1, 0.8}});
  EXPECT_TRUE(f.ws.Reject(5, "alice").IsOutOfRange());
}

TEST(MatchWorkspaceTest, AcceptedLinksExtracted) {
  Fixture f;
  f.ws.ImportCandidates({{1, 1, 0.8}, {2, 2, 0.6}});
  ASSERT_TRUE(f.ws.Accept(1, "alice", SemanticAnnotation::kIsA).ok());
  auto accepted = f.ws.AcceptedLinks();
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].source, 2u);
}

TEST(MatchWorkspaceTest, MatchCentricSorting) {
  Fixture f;
  f.ws.ImportCandidates({{1, 1, 0.3}, {2, 2, 0.9}, {3, 3, 0.6}});
  ASSERT_TRUE(f.ws.Accept(0, "zed").ok());
  ASSERT_TRUE(f.ws.Defer(2, "amy").ok());

  auto by_score = f.ws.Sorted(RecordOrder::kByScoreDesc);
  EXPECT_DOUBLE_EQ(by_score[0].link.score, 0.9);
  EXPECT_DOUBLE_EQ(by_score[2].link.score, 0.3);

  auto by_status = f.ws.Sorted(RecordOrder::kByStatus);
  EXPECT_EQ(by_status[0].status, ValidationStatus::kCandidate);

  auto by_reviewer = f.ws.Sorted(RecordOrder::kByReviewer);
  EXPECT_EQ(by_reviewer[0].reviewer, "");  // Unreviewed first.
  EXPECT_EQ(by_reviewer[1].reviewer, "amy");
  EXPECT_EQ(by_reviewer[2].reviewer, "zed");

  auto by_path = f.ws.Sorted(RecordOrder::kBySourcePath);
  EXPECT_EQ(f.sa.Path(by_path[0].link.source), "T");
}

TEST(StatusStringsTest, Coverage) {
  EXPECT_STREQ(ValidationStatusToString(ValidationStatus::kAccepted), "accepted");
  EXPECT_STREQ(ValidationStatusToString(ValidationStatus::kCandidate), "candidate");
  EXPECT_STREQ(SemanticAnnotationToString(SemanticAnnotation::kIsA), "is-a");
  EXPECT_STREQ(SemanticAnnotationToString(SemanticAnnotation::kPartOf), "part-of");
  EXPECT_STREQ(SemanticAnnotationToString(SemanticAnnotation::kUnspecified), "");
}

}  // namespace
}  // namespace harmony::workflow
