#include "workflow/concept_workflow.h"

#include <gtest/gtest.h>

#include <set>

#include "summarize/auto_summarizer.h"
#include "synth/generator.h"

namespace harmony::workflow {
namespace {

struct Fixture {
  synth::GeneratedPair pair;
  core::MatchEngine engine;
  summarize::Summary sum_a;
  summarize::Summary sum_b;

  static synth::GeneratedPair Gen() {
    synth::PairSpec spec;
    spec.source_concepts = 12;
    spec.target_concepts = 8;
    spec.shared_concepts = 5;
    return synth::GeneratePair(spec);
  }

  Fixture()
      : pair(Gen()),
        engine(pair.source, pair.target),
        sum_a(MakeSummary(pair.source, pair.truth.source_concept_labels)),
        sum_b(MakeSummary(pair.target, pair.truth.target_concept_labels)) {}

  // "Manual" summarization from the generator's truth labels.
  static summarize::Summary MakeSummary(
      const schema::Schema& s,
      const std::map<std::string, std::string>& labels) {
    summarize::Summary summary(s);
    for (const auto& [path, label] : labels) {
      EXPECT_TRUE(summary.AnchorNew(label + "@" + path, *s.FindByPath(path)).ok());
    }
    return summary;
  }
};

TEST(ConceptWorkflowTest, RunsOneIncrementPerConcept) {
  Fixture f;
  MatchWorkspace ws(f.pair.source, f.pair.target);
  auto report = RunConceptWorkflow(f.engine, f.sum_a, f.sum_b,
                                   ConceptWorkflowOptions{}, &ws);
  EXPECT_EQ(report.increments.size(), f.sum_a.concept_count());
  EXPECT_GT(report.total_pairs_considered, 0u);
}

TEST(ConceptWorkflowTest, IncrementSizesAreMembersTimesTarget) {
  Fixture f;
  MatchWorkspace ws(f.pair.source, f.pair.target);
  auto report = RunConceptWorkflow(f.engine, f.sum_a, f.sum_b,
                                   ConceptWorkflowOptions{}, &ws);
  size_t total = 0;
  for (const auto& inc : report.increments) {
    size_t members = f.sum_a.Members(inc.concept_id).size();
    EXPECT_EQ(inc.pairs_considered, members * f.pair.target.element_count());
    total += inc.pairs_considered;
  }
  EXPECT_EQ(total, report.total_pairs_considered);
}

TEST(ConceptWorkflowTest, AcceptedRecordsLandInWorkspace) {
  Fixture f;
  MatchWorkspace ws(f.pair.source, f.pair.target);
  auto report = RunConceptWorkflow(f.engine, f.sum_a, f.sum_b,
                                   ConceptWorkflowOptions{}, &ws);
  EXPECT_EQ(ws.CountWithStatus(ValidationStatus::kAccepted), report.total_accepted);
  EXPECT_EQ(ws.CountWithStatus(ValidationStatus::kDeferred), report.total_deferred);
  EXPECT_GT(report.total_accepted, 0u);
}

TEST(ConceptWorkflowTest, ConceptMatchesAreOneToOne) {
  Fixture f;
  MatchWorkspace ws(f.pair.source, f.pair.target);
  auto report = RunConceptWorkflow(f.engine, f.sum_a, f.sum_b,
                                   ConceptWorkflowOptions{}, &ws);
  std::set<summarize::ConceptId> src, tgt;
  for (const auto& m : report.concept_matches) {
    EXPECT_TRUE(src.insert(m.source_concept).second);
    EXPECT_TRUE(tgt.insert(m.target_concept).second);
  }
  EXPECT_LE(report.concept_matches.size(),
            std::min(f.sum_a.concept_count(), f.sum_b.concept_count()));
}

TEST(ConceptWorkflowTest, RecoversMostPlantedConceptMatches) {
  Fixture f;
  MatchWorkspace ws(f.pair.source, f.pair.target);
  auto report = RunConceptWorkflow(f.engine, f.sum_a, f.sum_b,
                                   ConceptWorkflowOptions{}, &ws);
  // 5 concepts are planted as shared; the workflow should lift at least 3.
  EXPECT_GE(report.concept_matches.size(), 3u);
}

TEST(ConceptWorkflowTest, HigherAcceptThresholdAcceptsFewer) {
  Fixture f;
  ConceptWorkflowOptions loose;
  loose.auto_accept_threshold = 0.35;
  ConceptWorkflowOptions strict;
  strict.auto_accept_threshold = 0.65;
  MatchWorkspace ws1(f.pair.source, f.pair.target);
  MatchWorkspace ws2(f.pair.source, f.pair.target);
  auto r1 = RunConceptWorkflow(f.engine, f.sum_a, f.sum_b, loose, &ws1);
  auto r2 = RunConceptWorkflow(f.engine, f.sum_a, f.sum_b, strict, &ws2);
  EXPECT_GE(r1.total_accepted, r2.total_accepted);
}

TEST(ConceptWorkflowTest, OracleReviewerAcceptsExactlyWhatItApproves) {
  Fixture f;
  ConceptWorkflowOptions opts;
  // An oracle built from the generator's ground truth — the scripted human.
  std::set<std::pair<std::string, std::string>> truth(
      f.pair.truth.element_matches.begin(), f.pair.truth.element_matches.end());
  opts.oracle = [&](const core::Correspondence& link) {
    return truth.count({f.pair.source.Path(link.source),
                        f.pair.target.Path(link.target)}) > 0;
  };
  MatchWorkspace ws(f.pair.source, f.pair.target);
  auto report = RunConceptWorkflow(f.engine, f.sum_a, f.sum_b, opts, &ws);
  EXPECT_EQ(report.total_deferred, 0u);  // The oracle always decides.
  EXPECT_GT(report.total_accepted, 0u);
  EXPECT_GT(ws.CountWithStatus(ValidationStatus::kRejected), 0u);
  for (const auto& r : ws.records()) {
    bool is_true = truth.count({f.pair.source.Path(r.link.source),
                                f.pair.target.Path(r.link.target)}) > 0;
    EXPECT_EQ(r.status == ValidationStatus::kAccepted, is_true);
  }
}

TEST(ConceptWorkflowTest, ReviewerNameRecorded) {
  Fixture f;
  ConceptWorkflowOptions opts;
  opts.reviewer = "sgt-data";
  MatchWorkspace ws(f.pair.source, f.pair.target);
  RunConceptWorkflow(f.engine, f.sum_a, f.sum_b, opts, &ws);
  bool saw_review = false;
  for (const auto& r : ws.records()) {
    if (r.status != ValidationStatus::kCandidate) {
      EXPECT_EQ(r.reviewer, "sgt-data");
      saw_review = true;
    }
  }
  EXPECT_TRUE(saw_review);
}

}  // namespace
}  // namespace harmony::workflow
