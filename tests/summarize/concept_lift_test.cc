#include "summarize/concept_lift.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::summarize {
namespace {

struct Fixture {
  schema::Schema sa;
  schema::Schema sb;
  Summary sum_a;
  Summary sum_b;

  Fixture() : sa(MakeA()), sb(MakeB()), sum_a(sa), sum_b(sb) {
    EXPECT_TRUE(sum_a.AnchorNew("Event", *sa.FindByPath("EVENT")).ok());
    EXPECT_TRUE(sum_a.AnchorNew("Person", *sa.FindByPath("PERSON")).ok());
    EXPECT_TRUE(sum_b.AnchorNew("Event", *sb.FindByPath("Incident")).ok());
    EXPECT_TRUE(sum_b.AnchorNew("Person", *sb.FindByPath("Individual")).ok());
  }

  static schema::Schema MakeA() {
    schema::RelationalBuilder b("SA");
    auto e = b.Table("EVENT");
    b.Column(e, "E1");
    b.Column(e, "E2");
    b.Column(e, "E3");
    auto p = b.Table("PERSON");
    b.Column(p, "P1");
    b.Column(p, "P2");
    return std::move(b).Build();
  }

  static schema::Schema MakeB() {
    schema::XmlBuilder b("SB");
    auto e = b.ComplexType("Incident");
    b.Element(e, "I1");
    b.Element(e, "I2");
    auto p = b.ComplexType("Individual");
    b.Element(p, "J1");
    return std::move(b).Build();
  }

  core::Correspondence Link(const std::string& a, const std::string& b,
                            double score = 0.8) {
    return {*sa.FindByPath(a), *sb.FindByPath(b), score};
  }
};

TEST(ConceptLiftTest, LiftsWellSupportedPairs) {
  Fixture f;
  std::vector<core::Correspondence> links = {
      f.Link("EVENT.E1", "Incident.I1"),
      f.Link("EVENT.E2", "Incident.I2"),
      f.Link("PERSON.P1", "Individual.J1"),
  };
  ConceptLiftOptions opts;
  opts.min_supporting_links = 2;
  auto matches = LiftToConcepts(f.sum_a, f.sum_b, links, opts);
  ASSERT_EQ(matches.size(), 1u);  // Person pair has only 1 supporting link.
  EXPECT_EQ(f.sum_a.concept_at(matches[0].source_concept).label, "Event");
  EXPECT_EQ(matches[0].supporting_links, 2u);
  EXPECT_GT(matches[0].coverage, 0.5);
}

TEST(ConceptLiftTest, MinSupportingLinksOfOneLiftsEverything) {
  Fixture f;
  std::vector<core::Correspondence> links = {
      f.Link("EVENT.E1", "Incident.I1"),
      f.Link("PERSON.P1", "Individual.J1"),
  };
  ConceptLiftOptions opts;
  opts.min_supporting_links = 1;
  opts.min_coverage = 0.0;
  auto matches = LiftToConcepts(f.sum_a, f.sum_b, links, opts);
  EXPECT_EQ(matches.size(), 2u);
}

TEST(ConceptLiftTest, CoverageThresholdFilters) {
  Fixture f;
  std::vector<core::Correspondence> links = {
      f.Link("EVENT.E1", "Incident.I1"),
      f.Link("EVENT.E2", "Incident.I2"),
  };
  ConceptLiftOptions opts;
  opts.min_supporting_links = 1;
  opts.min_coverage = 0.95;  // 2 links / 3 members of smaller concept < 0.95.
  auto matches = LiftToConcepts(f.sum_a, f.sum_b, links, opts);
  EXPECT_TRUE(matches.empty());
}

TEST(ConceptLiftTest, LinksOutsideConceptsIgnored) {
  Fixture f;
  // A link from an unanchored element (none here — all anchored), so instead
  // check cross-concept links accumulate separately.
  std::vector<core::Correspondence> links = {
      f.Link("EVENT.E1", "Individual.J1"),
      f.Link("EVENT.E2", "Individual.J1"),
  };
  ConceptLiftOptions opts;
  opts.min_supporting_links = 2;
  opts.min_coverage = 0.0;
  auto matches = LiftToConcepts(f.sum_a, f.sum_b, links, opts);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(f.sum_a.concept_at(matches[0].source_concept).label, "Event");
  EXPECT_EQ(f.sum_b.concept_at(matches[0].target_concept).label, "Person");
}

TEST(ReduceToOneToOneTest, KeepsStrongestPerConcept) {
  std::vector<ConceptMatch> matches = {
      {0, 0, 5, 0.8},
      {0, 1, 3, 0.5},  // Same source concept — dropped.
      {1, 0, 2, 0.4},  // Same target concept — dropped.
      {1, 1, 2, 0.4},
  };
  auto reduced = ReduceToOneToOne(matches);
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_EQ(reduced[0].source_concept, 0u);
  EXPECT_EQ(reduced[0].target_concept, 0u);
  EXPECT_EQ(reduced[1].source_concept, 1u);
  EXPECT_EQ(reduced[1].target_concept, 1u);
}

TEST(ReduceToOneToOneTest, EmptyInput) {
  EXPECT_TRUE(ReduceToOneToOne({}).empty());
}

}  // namespace
}  // namespace harmony::summarize
