#include "summarize/auto_summarizer.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "schema/builder.h"
#include "synth/generator.h"

namespace harmony::summarize {
namespace {

schema::Schema MakeSchema() {
  schema::RelationalBuilder b("S");
  auto big = b.Table("EVENT", "Everything about events, richly documented here");
  for (int i = 0; i < 10; ++i) {
    b.Column(big, StringFormat("E%d", i));
  }
  auto small = b.Table("LOOKUP");
  b.Column(small, "CODE");
  auto mid = b.Table("PERSON", "People");
  for (int i = 0; i < 5; ++i) {
    b.Column(mid, StringFormat("P%d", i));
  }
  return std::move(b).Build();
}

TEST(ElementImportanceTest, BiggerSubtreesScoreHigher) {
  schema::Schema s = MakeSchema();
  AutoSummarizeOptions opts;
  double big = ElementImportance(s, *s.FindByPath("EVENT"), opts);
  double mid = ElementImportance(s, *s.FindByPath("PERSON"), opts);
  double small = ElementImportance(s, *s.FindByPath("LOOKUP"), opts);
  EXPECT_GT(big, mid);
  EXPECT_GT(mid, small);
}

TEST(ElementImportanceTest, DocumentationAddsImportance) {
  schema::RelationalBuilder b("S");
  auto documented = b.Table("A", "A long and meaningful description of this table");
  b.Column(documented, "X");
  auto bare = b.Table("B");
  b.Column(bare, "X");
  schema::Schema s = std::move(b).Build();
  AutoSummarizeOptions opts;
  EXPECT_GT(ElementImportance(s, *s.FindByPath("A"), opts),
            ElementImportance(s, *s.FindByPath("B"), opts));
}

TEST(AutoSummarizeTest, PicksTopContainers) {
  schema::Schema s = MakeSchema();
  AutoSummarizeOptions opts;
  opts.max_concepts = 2;
  Summary summary = AutoSummarize(s, opts);
  EXPECT_EQ(summary.concept_count(), 2u);
  // EVENT and PERSON outrank LOOKUP.
  EXPECT_TRUE(summary.FindConcept("EVENT").has_value());
  EXPECT_TRUE(summary.FindConcept("PERSON").has_value());
  EXPECT_FALSE(summary.FindConcept("LOOKUP").has_value());
}

TEST(AutoSummarizeTest, MembersInheritConcepts) {
  schema::Schema s = MakeSchema();
  Summary summary = AutoSummarize(s, AutoSummarizeOptions{});
  auto c = summary.ConceptOf(*s.FindByPath("EVENT.E3"));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(summary.concept_at(*c).label, "EVENT");
}

TEST(AutoSummarizeTest, RespectsDepthLimit) {
  schema::Schema s("DEEP");
  auto l1 = s.AddElement(schema::Schema::kRootId, "L1", schema::ElementKind::kGroup);
  auto l2 = s.AddElement(l1, "L2", schema::ElementKind::kGroup);
  auto l3 = s.AddElement(l2, "L3", schema::ElementKind::kGroup);
  s.AddElement(l3, "LEAF", schema::ElementKind::kColumn);
  AutoSummarizeOptions opts;
  opts.max_anchor_depth = 2;
  opts.max_concepts = 10;
  Summary summary = AutoSummarize(s, opts);
  EXPECT_FALSE(summary.FindConcept("L3").has_value());
  EXPECT_TRUE(summary.FindConcept("L1").has_value());
}

TEST(AutoSummarizeTest, LeavesAreNeverConcepts) {
  schema::Schema s = MakeSchema();
  AutoSummarizeOptions opts;
  opts.max_concepts = 100;
  Summary summary = AutoSummarize(s, opts);
  EXPECT_EQ(summary.concept_count(), 3u);  // Only the three tables.
}

TEST(AutoSummarizeTest, RecoverPlantedConceptsOnSyntheticSchema) {
  synth::PairSpec spec;
  spec.source_concepts = 30;
  spec.target_concepts = 10;
  spec.shared_concepts = 5;
  auto pair = synth::GeneratePair(spec);
  AutoSummarizeOptions opts;
  opts.max_concepts = 30;
  Summary summary = AutoSummarize(pair.source, opts);
  // The generator's concepts are the depth-1 containers, which the
  // summarizer should recover nearly perfectly.
  double agreement = SummaryAgreement(summary, pair.truth.source_concept_labels);
  EXPECT_GT(agreement, 0.95);
}

TEST(SummaryAgreementTest, EmptyReferenceYieldsZero) {
  schema::Schema s = MakeSchema();
  Summary summary = AutoSummarize(s, AutoSummarizeOptions{});
  EXPECT_DOUBLE_EQ(SummaryAgreement(summary, {}), 0.0);
}

}  // namespace
}  // namespace harmony::summarize
