#include "summarize/summary.h"

#include <gtest/gtest.h>

#include "schema/builder.h"

namespace harmony::summarize {
namespace {

schema::Schema MakeSchema() {
  schema::RelationalBuilder b("S");
  auto event = b.Table("ALL_EVENT_VITALS");
  b.Column(event, "BEGIN_DATE");
  b.Column(event, "SEVERITY");
  auto person = b.Table("PERSON");
  b.Column(person, "NAME");
  auto orphan = b.Table("MISC");
  b.Column(orphan, "X");
  return std::move(b).Build();
}

TEST(SummaryTest, AddConceptIsIdempotentByLabel) {
  schema::Schema s = MakeSchema();
  Summary summary(s);
  ConceptId a = summary.AddConcept("Event");
  ConceptId b = summary.AddConcept("Event");
  EXPECT_EQ(a, b);
  EXPECT_EQ(summary.concept_count(), 1u);
  EXPECT_EQ(summary.concept_at(a).label, "Event");
}

TEST(SummaryTest, AnchorCoversSubtree) {
  schema::Schema s = MakeSchema();
  Summary summary(s);
  ASSERT_TRUE(summary.AnchorNew("Event", *s.FindByPath("ALL_EVENT_VITALS")).ok());
  auto concept_id = summary.ConceptOf(*s.FindByPath("ALL_EVENT_VITALS.BEGIN_DATE"));
  ASSERT_TRUE(concept_id.has_value());
  EXPECT_EQ(summary.concept_at(*concept_id).label, "Event");
  EXPECT_FALSE(summary.ConceptOf(*s.FindByPath("PERSON.NAME")).has_value());
}

TEST(SummaryTest, DoubleAnchorToDifferentConceptFails) {
  schema::Schema s = MakeSchema();
  Summary summary(s);
  auto table = *s.FindByPath("ALL_EVENT_VITALS");
  ASSERT_TRUE(summary.AnchorNew("Event", table).ok());
  Status again = summary.AnchorNew("Occurrence", table);
  EXPECT_TRUE(again.IsAlreadyExists());
  // Same concept is idempotent.
  EXPECT_TRUE(summary.AnchorNew("Event", table).ok());
}

TEST(SummaryTest, AnchorRejectsBadInputs) {
  schema::Schema s = MakeSchema();
  Summary summary(s);
  EXPECT_TRUE(summary.Anchor(42, *s.FindByPath("PERSON")).IsNotFound());
  ConceptId c = summary.AddConcept("X");
  EXPECT_TRUE(summary.Anchor(c, schema::Schema::kRootId).IsInvalidArgument());
  EXPECT_TRUE(summary.Anchor(c, 100000).IsInvalidArgument());
}

TEST(SummaryTest, NestedAnchorShadowsOuter) {
  schema::Schema s = MakeSchema();
  Summary summary(s);
  auto event = *s.FindByPath("ALL_EVENT_VITALS");
  auto severity = *s.FindByPath("ALL_EVENT_VITALS.SEVERITY");
  ASSERT_TRUE(summary.AnchorNew("Event", event).ok());
  ASSERT_TRUE(summary.AnchorNew("Severity", severity).ok());
  EXPECT_EQ(summary.concept_at(*summary.ConceptOf(severity)).label, "Severity");
  EXPECT_EQ(
      summary.concept_at(*summary.ConceptOf(*s.FindByPath("ALL_EVENT_VITALS.BEGIN_DATE")))
          .label,
      "Event");
  // Members of Event exclude the shadowed SEVERITY.
  auto members = summary.Members(*summary.FindConcept("Event"));
  EXPECT_EQ(members.size(), 2u);  // Table + BEGIN_DATE.
}

TEST(SummaryTest, CoverageAndUnassigned) {
  schema::Schema s = MakeSchema();
  Summary summary(s);
  ASSERT_TRUE(summary.AnchorNew("Event", *s.FindByPath("ALL_EVENT_VITALS")).ok());
  ASSERT_TRUE(summary.AnchorNew("Person", *s.FindByPath("PERSON")).ok());
  // 5 of 7 elements covered (MISC and X are not).
  EXPECT_NEAR(summary.Coverage(), 5.0 / 7.0, 1e-9);
  auto unassigned = summary.Unassigned();
  EXPECT_EQ(unassigned.size(), 2u);
}

TEST(SummaryTest, FindConcept) {
  schema::Schema s = MakeSchema();
  Summary summary(s);
  summary.AddConcept("Event");
  EXPECT_TRUE(summary.FindConcept("Event").has_value());
  EXPECT_FALSE(summary.FindConcept("Nope").has_value());
}

TEST(SummaryTest, EmptySummaryHasZeroCoverage) {
  schema::Schema s = MakeSchema();
  Summary summary(s);
  EXPECT_DOUBLE_EQ(summary.Coverage(), 0.0);
  EXPECT_EQ(summary.Unassigned().size(), s.element_count());
}

}  // namespace
}  // namespace harmony::summarize
